"""The multi-client load harness: full SFS stacks under the scheduler.

Builds one :class:`~repro.kernel.world.World` with a queued server and N
client sessions, then drives them as cooperative tasks:

* **closed loop** — each of N clients runs think-time → one call →
  repeat, for a fixed number of operations.  Offered load scales with N
  against the server's fixed capacity (workers × 1/service_time), which
  is what makes tail latency degrade super-linearly once the queue is
  the bottleneck.
* **open loop** — operations arrive by a Poisson process at a target
  rate and each runs as its own task over a shared session pool, so one
  transport carries many concurrent in-flight calls (the RPC layer's
  ``call_task`` multiplexing).

Latencies are *simulated* seconds (clock deltas around each call), so a
report is a pure function of the configuration and seed.  Each latency
also lands in the world registry's ``load.op_seconds`` histogram, whose
snapshot now carries interpolated p50/p95/p99 — the exact percentiles
reported here double as a cross-check of that estimator.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core import proto
from ..core.client import ServerSession
from ..core.keyneg import EphemeralKeyCache
from ..fs.memfs import Cred
from ..kernel.world import World
from ..nfs3 import const as nfs_const
from ..rpc.peer import RetryPolicy, RpcError, RpcTransportDown
from ..sim.sched import Sleep
from .workload import DEFAULT_MIX, FILE_SIZE, OpMix, OpStream

#: Unbounded-enough queue depth standing in for "admission control off".
NO_ADMISSION_LIMIT = 1 << 30


@dataclass
class LoadConfig:
    """Everything a load run depends on; hashable into a seed story."""

    clients: int = 4
    ops_per_client: int = 25
    seed: int = 2026
    think_time: float = 0.010
    io_size: int = 4096
    mix: OpMix = DEFAULT_MIX
    file_count: int = 8
    encrypt: bool = True
    #: Admission control: None = unbounded queue (backpressure off).
    max_depth: int | None = 32
    workers: int = 2
    queue_policy: str = "fifo"
    service_time: float = 0.001
    contention: bool = True
    #: Per-attempt RPC retransmission timer.  The single-client default
    #: (2 ms) assumes an idle server; under deliberate queueing delay it
    #: would fire constantly and every retransmit would be re-admitted
    #: as new work — a retransmission storm.  Load runs wait out the
    #: queue instead and let SERVER_BUSY carry the backpressure.
    rpc_timeout: float = 1.0
    #: Arm each session's reconnect engine (crash-failover runs).
    failover: bool = False
    #: Task-native async core (PROTOCOLS.md §17): None = classic
    #: synchronous delivery; N > 1 = pipelined links with a send window
    #: of N in-flight RPCs per session.  Scale runs use this to overlap
    #: wire time across the fleet instead of serializing every record.
    pipeline_depth: int | None = None
    #: Open loop only: mean arrivals per simulated second and how long
    #: to keep them coming.
    arrival_rate: float = 200.0
    duration: float = 1.0


@dataclass
class LoadReport:
    """One run's outcome, all figures in simulated seconds."""

    clients: int
    ops_completed: int = 0
    op_errors: int = 0
    busy_retries: int = 0
    admission_rejects: int = 0
    max_queue_depth: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    unfinished_tasks: int = 0
    latencies: list[float] = field(default_factory=list, repr=False)

    def finish(self, duration: float) -> None:
        self.duration = duration
        self.ops_completed = len(self.latencies)
        if duration > 0:
            self.throughput = self.ops_completed / duration
        if self.latencies:
            ordered = sorted(self.latencies)
            self.mean = sum(ordered) / len(ordered)
            self.p50 = _percentile(ordered, 0.50)
            self.p95 = _percentile(ordered, 0.95)
            self.p99 = _percentile(ordered, 0.99)


def _percentile(ordered: list[float], q: float) -> float:
    """Exact nearest-rank percentile of pre-sorted values."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class WorkloadPhase:
    """One segment of a phased closed-loop run.

    Fields left ``None`` inherit the harness config, so a phase list
    like ``[warm-up, storm]`` only states what changes — e.g. a
    write-heavy mix with zero think time for a lease-invalidation
    storm.  Each phase accumulates into its own :class:`LoadReport`.
    """

    name: str
    ops_per_client: int
    think_time: float | None = None
    io_size: int | None = None
    mix: OpMix | None = None


class LoadHarness:
    """Owns the world, the sessions, and the client task generators."""

    def __init__(self, config: LoadConfig, location: str = "load.sfs.test",
                 world: World | None = None, server=None) -> None:
        self.config = config
        #: Scenario composition: pass an existing *world* (and
        #: optionally a *server* in it) to drive load against machinery
        #: someone else built — shared clock, scheduler, control plane
        #: and all.  Default: a self-contained world, as always.
        self.world = world if world is not None else World(seed=config.seed)
        if config.pipeline_depth and config.pipeline_depth > 1:
            self.scheduler = self.world.enable_pipelining(
                depth=config.pipeline_depth, seed=config.seed)
        else:
            self.scheduler = self.world.enable_concurrency(seed=config.seed)
        if config.contention:
            self.world.enable_contention()
        if server is not None:
            self.server = server
            self.location = server.location
        else:
            self.server = self.world.add_server(location)
            self.location = location
        self.path = (self.server.path if "default" in self.server.exports
                     else self.server.export_fs())
        self._seed_files()
        depth = (config.max_depth if config.max_depth is not None
                 else NO_ADMISSION_LIMIT)
        if self.server.master.request_queue is not None:
            self.queue = self.server.master.request_queue
        else:
            self.queue = self.server.enable_queueing(
                max_depth=depth, workers=config.workers,
                policy=config.queue_policy,
                service_time=config.service_time,
            )
        self.sessions: list[ServerSession] = []
        self.handles: list[bytes] = []
        #: Load-shedding hook (control plane): closed-loop clients
        #: multiply every think-time draw by this factor, so raising it
        #: lowers the offered rate without disturbing the rng sequence.
        self.think_scale = 1.0
        self._m_op_seconds = self.world.metrics.histogram("load.op_seconds")
        self._m_shed = self.world.metrics.gauge("load.think_scale")
        self._m_shed.set(1.0)
        self._connect_sessions()
        self._resolve_handles()

    # -- setup -------------------------------------------------------------

    def _seed_files(self) -> None:
        """World-accessible files so anonymous (authno 0) clients can
        GETATTR/READ/WRITE without running the login protocol — the load
        engine measures the data path, not authentication."""
        fs = self.server.fs
        owner = Cred(uid=0, gid=0)
        content = bytes(range(256)) * (FILE_SIZE // 256)
        for index in range(self.config.file_count):
            inode = fs.create(fs.root_ino, f"load{index}", owner,
                              mode=0o666)
            fs.write(inode.ino, 0, content, owner)
            fs.commit(inode.ino)

    def _connect_sessions(self) -> None:
        """Establish one session per client, sequentially and
        synchronously (each handshake pumps the scheduler while it waits
        on the queued server).  One shared ephemeral-key cache plays the
        role of N identically configured client machines without paying
        N key generations."""
        shared_keys = EphemeralKeyCache(self.world.rng)
        for index in range(self.config.clients):
            link = self.world.connector(self.location,
                                        proto.SERVICE_FILESERVER)
            outcome = ServerSession.connect(
                link, self.path, shared_keys, self.world.rng,
                encrypt=self.config.encrypt,
            )
            assert isinstance(outcome, ServerSession)
            outcome.peer.retry_policy = RetryPolicy(
                base_delay=self.config.rpc_timeout, multiplier=2.0,
                max_delay=4.0 * self.config.rpc_timeout,
            )
            if self.config.failover:
                outcome.enable_reconnect(self.world.connector,
                                         self.world.clock)
            self.sessions.append(outcome)

    def _resolve_handles(self) -> None:
        """Look the seeded files up once; the export's handle map is a
        pure function of its durable key, so the handles are valid on
        every session (and across a crash/restart)."""
        from ..nfs3 import types as nfs_types

        session = self.sessions[0]

        def lookup(dir_handle: bytes, name: str):
            status, body = session.call_nfs(
                nfs_const.NFSPROC3_LOOKUP,
                nfs_types.LookupArgs.make(
                    what=nfs_types.DirOpArgs.make(dir=dir_handle, name=name)
                ),
                authno=0,
            )
            assert status == nfs_const.NFS3_OK, f"lookup({name}): {status}"
            return body.object

        root = lookup(bytes(24), ".")  # the RW dialect's mount convention
        for index in range(self.config.file_count):
            self.handles.append(lookup(root, f"load{index}"))

    # -- one operation, as task steps --------------------------------------

    def _run_op(self, session: ServerSession, stream: OpStream,
                report: LoadReport):
        """Issue one operation; yields while it is in flight.

        A transport failure (server crash) triggers the session's
        synchronous reconnect engine — which redials, re-verifies the
        HostID, renegotiates keys, all while pumping the scheduler — and
        then replays the operation once on the fresh connection.
        """
        config = self.config
        proc, args = stream.next_op()
        clock = self.world.clock
        start = clock.now
        try:
            status, _body = yield from session.call_nfs_task(proc, args, 0)
        except RpcTransportDown:
            # The reconnect engine is deliberately synchronous (redial,
            # HostID re-verification, key renegotiation); under
            # strict_pump this is the one sanctioned in-task pump scope.
            with self.scheduler.allow_legacy_pump():
                recovered = config.failover and session.reconnect()
            if not recovered:
                report.op_errors += 1
                return False
            try:
                status, _body = yield from session.call_nfs_task(
                    proc, args, 0)
            except RpcError:
                report.op_errors += 1
                return False
        except RpcError:
            # Backoff exhausted against a persistently full queue, or a
            # rejection: the op failed, the client moves on.
            report.op_errors += 1
            return False
        if status != nfs_const.NFS3_OK:
            report.op_errors += 1
            return False
        latency = clock.now - start
        report.latencies.append(latency)
        self._m_op_seconds.observe(latency)
        return True

    def set_think_scale(self, scale: float) -> float:
        """Shed (scale > 1) or restore (1.0) closed-loop offered load.

        The control plane's load-shedding actuator calls this when a
        fleet SLO breaches; clients pick the new factor up on their next
        think-time draw.  Never drops below 1.0 — shedding can only
        slow clients down, not speed them past the configured load.
        """
        self.think_scale = max(1.0, float(scale))
        self._m_shed.set(self.think_scale)
        return self.think_scale

    def _closed_loop_client(self, index: int, report: LoadReport):
        config = self.config
        session = self.sessions[index]
        stream = OpStream(self.handles, config.mix, config.io_size,
                          seed=(config.seed << 8) ^ index)
        think_rng = random.Random((config.seed << 16) ^ index)
        for _op in range(config.ops_per_client):
            if config.think_time > 0:
                yield Sleep(think_rng.expovariate(1.0 / config.think_time)
                            * self.think_scale)
            yield from self._run_op(session, stream, report)

    def _phased_client(self, index: int, phases: "list[WorkloadPhase]",
                       reports: "dict[str, LoadReport]"):
        """One client running every phase in order, no barrier between
        clients: a fast client may be two phases ahead of a slow one,
        like real traffic shifting shape rather than stopping."""
        config = self.config
        session = self.sessions[index]
        think_rng = random.Random((config.seed << 16) ^ index)
        for number, phase in enumerate(phases):
            stream = OpStream(
                self.handles,
                phase.mix if phase.mix is not None else config.mix,
                phase.io_size if phase.io_size is not None
                else config.io_size,
                seed=((config.seed << 8) ^ index) + 0x51C0 * number,
            )
            report = reports[phase.name]
            think = (config.think_time if phase.think_time is None
                     else phase.think_time)
            for _op in range(phase.ops_per_client):
                if think > 0:
                    yield Sleep(think_rng.expovariate(1.0 / think)
                                * self.think_scale)
                yield from self._run_op(session, stream, report)

    def spawn_phased_clients(self, phases: "list[WorkloadPhase]",
                             reports: "dict[str, LoadReport] | None" = None
                             ) -> "dict[str, LoadReport]":
        """Spawn (without running) one phased task per configured client.

        The caller owns the scheduler run — that is the point: a
        scenario engine runs these tasks alongside its own event
        timeline and other harnesses, then reads the per-phase reports
        back.  Pass *reports* to share accumulators across harnesses.
        """
        if reports is None:
            reports = {}
        for phase in phases:
            if phase.name not in reports:
                reports[phase.name] = LoadReport(clients=self.config.clients)
        for index in range(self.config.clients):
            self.scheduler.spawn(
                self._phased_client(index, phases, reports),
                name=f"{self.location}-client-{index}",
            )
        return reports

    # -- run loops ---------------------------------------------------------

    def run_closed_loop(self) -> LoadReport:
        """N clients, each issuing ops_per_client operations."""
        config = self.config
        report = LoadReport(clients=config.clients)
        start = self.world.clock.now
        for index in range(config.clients):
            self.scheduler.spawn(
                self._closed_loop_client(index, report),
                name=f"client-{index}",
            )
        blocked = self.scheduler.run()
        self._finish(report, start, blocked)
        return report

    def run_open_loop(self) -> LoadReport:
        """Poisson arrivals at ``arrival_rate`` for ``duration`` seconds.

        Each arrival is its own task on a round-robin session — many
        operations in flight per transport, not one."""
        config = self.config
        report = LoadReport(clients=config.clients)
        clock = self.world.clock
        start = clock.now

        def arrivals():
            rng = random.Random(config.seed ^ 0x9E3779B9)
            deadline = clock.now + config.duration
            index = 0
            while clock.now < deadline:
                yield Sleep(rng.expovariate(config.arrival_rate))
                session = self.sessions[index % len(self.sessions)]
                stream = OpStream(
                    self.handles, config.mix, config.io_size,
                    seed=(config.seed << 8) ^ (0xA5A5 + index),
                )
                self.scheduler.spawn(
                    self._run_op(session, stream, report),
                    name=f"op-{index}",
                )
                index += 1

        self.scheduler.spawn(arrivals(), name="arrivals")
        blocked = self.scheduler.run()
        self._finish(report, start, blocked)
        return report

    def _finish(self, report: LoadReport, start: float,
                blocked: list) -> None:
        report.unfinished_tasks = len(blocked)
        report.op_errors += sum(
            1 for task in self.scheduler.tasks
            if task.failed and not task.daemon
        )
        report.busy_retries = sum(s.busy_retries for s in self.sessions)
        report.admission_rejects = self.world.metrics.counter(
            "server.queue.rejected"
        ).value
        report.max_queue_depth = self.queue.peak_depth
        report.finish(self.world.clock.now - start)
