"""Benchmark harness regenerating every figure in the paper's section 4."""

from . import compile as compile_bench
from . import mab, micro, setups, sprite, timing
from .setups import (
    ALL_CONFIGS,
    LOCAL,
    NFS_TCP,
    NFS_UDP,
    PAPER_CONFIGS,
    SFS,
    SFS_NOENC,
    BenchSetup,
    make_setup,
)
from .timing import Measurement, Timer, format_table

__all__ = [
    "ALL_CONFIGS",
    "BenchSetup",
    "LOCAL",
    "Measurement",
    "NFS_TCP",
    "NFS_UDP",
    "PAPER_CONFIGS",
    "SFS",
    "SFS_NOENC",
    "Timer",
    "compile_bench",
    "format_table",
    "mab",
    "make_setup",
    "micro",
    "setups",
    "sprite",
    "timing",
]
