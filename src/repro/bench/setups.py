"""The five file system configurations measured in the paper's section 4.

* **Local** — FreeBSD's local FFS: our kernel on a local MemFs+disk.
* **NFS 3 (UDP)** — the kernel's NFS client straight over a UDP-profile
  link to the server's NFS server.  No user-level daemons, no crypto.
* **NFS 3 (TCP)** — same over a TCP-profile link.
* **SFS** — the full stack: kernel -> sfscd (loopback NFS) -> secure
  channel over the LAN -> sfssd -> local NFS -> disk.
* **SFS w/o encryption** — identical, with the channel's ARC4+MAC
  disabled, isolating the cost of the user-level relay from the cost of
  cryptography.

Every setup exposes the same interface: a :class:`BenchSetup` with a
Process, a working directory on the measured file system, and the shared
virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..fs.memfs import Cred
from ..fs import pathops
from ..kernel.vfs import Process
from ..kernel.world import World
from ..sim.network import NetworkParameters

LOCAL = "Local"
NFS_UDP = "NFS 3 (UDP)"
NFS_TCP = "NFS 3 (TCP)"
SFS = "SFS"
SFS_NOENC = "SFS w/o encryption"

ALL_CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
PAPER_CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS]

_BENCH_UID = 1000


@dataclass
class BenchSetup:
    """Everything a workload needs to run against one configuration."""

    name: str
    world: World
    process: Process
    workdir: str

    @property
    def clock(self):
        return self.world.clock

    @property
    def metrics(self):
        return self.world.metrics


def _prepare_export(server, uid: int) -> None:
    """Give the benchmark user a writable directory on the export."""
    work = pathops.mkdirs(server.fs, "/bench")
    server.fs.setattr(work.ino, Cred(0, 0), uid=uid, gid=100)


def make_setup(name: str, seed: int = 7, caching: bool = True,
               pipeline_depth: int = 0,
               params: NetworkParameters | None = None) -> BenchSetup:
    """Build one of the five configurations by display name.

    ``pipeline_depth > 0`` flips the world to the task-native async
    core (PROTOCOLS.md §17) before any machine exists: pipelined
    links, a send window of that many in-flight RPCs, and client-side
    readahead / write-gathering.  ``params`` overrides the default LAN
    profile for every link (e.g. :meth:`NetworkParameters.wan`).
    """
    world = World(seed=seed)
    if params is not None:
        world.lan_params = params
    if pipeline_depth:
        world.enable_pipelining(depth=pipeline_depth, seed=seed)
    if name == LOCAL:
        client = world.add_client("bench-client")
        proc = client.process(uid=_BENCH_UID)
        client.root_process().makedirs("/bench")
        client.root_process().chown("/bench", _BENCH_UID, 100)
        return BenchSetup(name, world, proc, "/bench")
    server = world.add_server("server.lcs.mit.edu")
    path = server.export_fs()
    _prepare_export(server, _BENCH_UID)
    if name in (NFS_UDP, NFS_TCP):
        client = world.add_client("bench-client")
        params = (NetworkParameters.nfs_udp() if name == NFS_UDP
                  else NetworkParameters.nfs_tcp())
        client.mount_nfs("/remote", server, params=params)
        proc = client.process(uid=_BENCH_UID)
        return BenchSetup(name, world, proc, "/remote/bench")
    if name in (SFS, SFS_NOENC):
        user = server.add_user("bench", uid=_BENCH_UID)
        client = world.add_client(
            "bench-client", encrypt=(name == SFS), caching=caching
        )
        proc = client.login_user("bench", user.key, uid=_BENCH_UID)
        return BenchSetup(name, world, proc, f"{path}/bench")
    raise ValueError(f"unknown configuration {name!r}")
