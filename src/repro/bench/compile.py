"""Figure 7: compiling the GENERIC FreeBSD 3.3 kernel.

A synthetic kernel build: a few hundred source files plus shared headers
live on the measured file system; "compiling" a file reads it and every
header it includes, performs CPU work proportional to the bytes read,
and writes an object file; the final link reads all objects and writes
one large binary synchronously.

The op mix is what matters: many reads of shared headers (attribute- and
data-cache friendly), per-file writes, and a sync at the end — the same
profile that let SFS land between NFS/UDP and NFS/TCP in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.sha1 import sha1
from .setups import BenchSetup
from .timing import Timer

_N_SOURCES = 120
_N_HEADERS = 30
_HEADERS_PER_SOURCE = 6
_WORK_ROUNDS = 10


@dataclass
class CompileResult:
    """One row of figure 7."""

    name: str
    seconds: float


def _populate(proc, work: str, rng: random.Random) -> None:
    proc.makedirs(f"{work}/kernel/sys")
    proc.makedirs(f"{work}/kernel/obj")
    for index in range(_N_HEADERS):
        size = rng.randrange(2048, 8192)
        body = bytes(rng.getrandbits(8) for _ in range(128)) * (size // 128)
        proc.write_file(f"{work}/kernel/sys/header{index}.h", body)
    for index in range(_N_SOURCES):
        size = rng.randrange(2048, 10240)
        body = bytes(rng.getrandbits(8) for _ in range(128)) * (size // 128)
        proc.write_file(f"{work}/kernel/src{index}.c", body)


def run_compile(setup: BenchSetup, seed: int = 13) -> CompileResult:
    rng = random.Random(seed)
    proc = setup.process
    work = setup.workdir
    _populate(proc, work, rng)
    timer = Timer(setup.clock)

    def build() -> None:
        header_names = [
            f"{work}/kernel/sys/header{i}.h" for i in range(_N_HEADERS)
        ]
        for index in range(_N_SOURCES):
            source = proc.read_file(f"{work}/kernel/src{index}.c")
            includes = b""
            for step in range(_HEADERS_PER_SOURCE):
                header = header_names[(index * 7 + step * 5) % _N_HEADERS]
                includes += proc.read_file(header)
            unit = source + includes
            digest = unit
            for _ in range(_WORK_ROUNDS):
                digest = sha1(digest + unit[:1024])
            proc.write_file(f"{work}/kernel/obj/src{index}.o", digest * 16)
        linked = b"".join(
            proc.read_file(f"{work}/kernel/obj/src{i}.o")
            for i in range(_N_SOURCES)
        )
        proc.write_file(f"{work}/kernel/kernel.bin", linked, sync=True)

    measurement = timer.measure("compile", build)
    return CompileResult(setup.name, measurement.total)
