"""Figure 6: the Modified Andrew Benchmark (MAB).

"The first phase of MAB creates a few directories.  The second stresses
data movement and metadata updates as a number of small files are
copied.  The third phase collects the file attributes for a large set of
files.  The fourth phase searches the files for a string which does not
appear, and the final phase runs a compile."

The source tree is synthesized deterministically (~70 files totalling a
couple hundred KB, like the original benchmark's tree).  The compile
phase reads each source, performs CPU work proportional to its size
(hashing stands in for compilation), and writes an object file, then
links everything into one output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..crypto.sha1 import sha1
from .setups import BenchSetup
from .timing import Measurement, Timer

PHASES = ["directories", "copy", "attributes", "search", "compile"]

_N_DIRS = 15
_N_FILES = 70
_SEARCH_NEEDLE = b"string-which-does-not-appear"
_COMPILE_WORK_ROUNDS = 12


@dataclass
class MabResult:
    """One bar group of figure 6."""

    name: str
    phases: dict[str, Measurement] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(m.total for m in self.phases.values())


def make_source_tree(rng: random.Random) -> dict[str, bytes]:
    """The deterministic tree the copy phase replicates."""
    tree: dict[str, bytes] = {}
    for index in range(_N_FILES):
        subdir = f"src{index % 5}"
        size = rng.randrange(1024, 6144)
        body = bytes(rng.getrandbits(8) for _ in range(64)) * (size // 64)
        tree[f"{subdir}/file{index}.c"] = body
    return tree


def run_mab(setup: BenchSetup, seed: int = 11) -> MabResult:
    """Run all five phases; returns per-phase measurements."""
    rng = random.Random(seed)
    proc = setup.process
    work = setup.workdir
    tree = make_source_tree(rng)
    # Stage the source tree *outside* the measured directory so the copy
    # phase reads from a warm local area, like MAB copying its sources.
    staging: dict[str, bytes] = dict(tree)

    timer = Timer(setup.clock)
    result = MabResult(setup.name)

    def phase_directories() -> None:
        proc.makedirs(f"{work}/mab")
        for index in range(_N_DIRS):
            proc.mkdir(f"{work}/mab/dir{index}")
        for index in range(5):
            proc.mkdir(f"{work}/mab/src{index}")

    def phase_copy() -> None:
        for name, body in staging.items():
            proc.write_file(f"{work}/mab/{name}", body)

    def phase_attributes() -> None:
        # "collects the file attributes for a large set of files" — the
        # original runs ls -lR twice over the tree.
        for _ in range(4):
            for name in sorted(staging):
                proc.stat(f"{work}/mab/{name}")
            for index in range(_N_DIRS):
                proc.stat(f"{work}/mab/dir{index}")

    def phase_search() -> None:
        for name in sorted(staging):
            body = proc.read_file(f"{work}/mab/{name}")
            assert _SEARCH_NEEDLE not in body

    def phase_compile() -> None:
        objects = []
        for name in sorted(staging):
            body = proc.read_file(f"{work}/mab/{name}")
            digest = body
            for _ in range(_COMPILE_WORK_ROUNDS):  # the "compiler"
                digest = sha1(digest + body)
            object_name = f"{work}/mab/{name}.o"
            proc.write_file(object_name, digest * 8)
            objects.append(object_name)
        linked = b"".join(proc.read_file(o) for o in objects)
        proc.write_file(f"{work}/mab/a.out", linked, sync=True)

    phases = {
        "directories": phase_directories,
        "copy": phase_copy,
        "attributes": phase_attributes,
        "search": phase_search,
        "compile": phase_compile,
    }
    for name in PHASES:
        result.phases[name] = timer.measure(name, phases[name])
    return result
