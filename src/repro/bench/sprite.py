"""Figures 8 and 9: the Sprite LFS microbenchmarks.

Small-file test (figure 8): "creates, reads, and unlinks 1,000 1 Kbyte
files", flushing to disk at the end of the write phase.

Large-file test (figure 9): "writes a large (40,000 Kbyte) file
sequentially, reads from it sequentially, then writes it randomly, reads
it randomly, and finally reads it sequentially.  Data is flushed to disk
at the end of each write phase."  The file size is a parameter (scaled
down by default — the phase *ratios* are what the figure shows).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .setups import BenchSetup
from .timing import Measurement, Timer

SMALL_PHASES = ["create", "read", "unlink"]
LARGE_PHASES = ["seq write", "seq read", "rand write", "rand read", "seq read2"]

DEFAULT_SMALL_COUNT = 1000
DEFAULT_LARGE_BYTES = 4 << 20   # scaled stand-in for 40,000 KB
_CHUNK = 8192


@dataclass
class SpriteResult:
    name: str
    phases: dict[str, Measurement] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(m.total for m in self.phases.values())


def run_small_file(setup: BenchSetup,
                   count: int = DEFAULT_SMALL_COUNT) -> SpriteResult:
    proc = setup.process
    work = setup.workdir
    proc.makedirs(f"{work}/small")
    body = bytes(range(256)) * 4  # 1 KB
    timer = Timer(setup.clock)
    result = SpriteResult(setup.name)

    def create() -> None:
        for index in range(count):
            proc.write_file(f"{work}/small/f{index}", body)
        # flush at the end of the write phase
        fd = proc.open(f"{work}/small/f0", "r")
        proc.fsync(fd)
        proc.close(fd)

    def read() -> None:
        for index in range(count):
            data = proc.read_file(f"{work}/small/f{index}")
            assert len(data) == 1024

    def unlink() -> None:
        for index in range(count):
            proc.unlink(f"{work}/small/f{index}")

    result.phases["create"] = timer.measure("create", create)
    result.phases["read"] = timer.measure("read", read)
    result.phases["unlink"] = timer.measure("unlink", unlink)
    return result


def run_large_file(setup: BenchSetup,
                   size: int = DEFAULT_LARGE_BYTES,
                   seed: int = 17) -> SpriteResult:
    rng = random.Random(seed)
    proc = setup.process
    work = setup.workdir
    path = f"{work}/large"
    nchunks = size // _CHUNK
    chunk = bytes(range(256)) * (_CHUNK // 256)
    order = list(range(nchunks))
    rng.shuffle(order)
    timer = Timer(setup.clock)
    result = SpriteResult(setup.name)

    def seq_write() -> None:
        fd = proc.open(path, "w")
        for _ in range(nchunks):
            proc.write(fd, chunk)
        proc.fsync(fd)
        proc.close(fd)

    def seq_read() -> None:
        fd = proc.open(path, "r")
        for _ in range(nchunks):
            proc.read(fd, _CHUNK)
        proc.close(fd)

    def rand_write() -> None:
        fd = proc.open(path, "a")
        for index in order:
            proc.lseek(fd, index * _CHUNK)
            proc.write(fd, chunk)
        proc.fsync(fd)
        proc.close(fd)

    def rand_read() -> None:
        fd = proc.open(path, "r")
        for index in order:
            proc.lseek(fd, index * _CHUNK)
            proc.read(fd, _CHUNK)
        proc.close(fd)

    result.phases["seq write"] = timer.measure("seq write", seq_write)
    result.phases["seq read"] = timer.measure("seq read", seq_read)
    result.phases["rand write"] = timer.measure("rand write", rand_write)
    result.phases["rand read"] = timer.measure("rand read", rand_read)
    result.phases["seq read2"] = timer.measure("seq read2", seq_read)
    return result
