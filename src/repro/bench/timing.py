"""Benchmark time accounting.

Reported time = real CPU seconds spent executing the workload (protocol
marshaling, cryptography, cache logic — the costs the paper attributes to
SFS's user-level implementation and software encryption) + simulated
device seconds accumulated on the virtual clock (network latency and
bandwidth, disk seeks and transfers).

This hybrid keeps runs fast while preserving the paper's benchmark
*shape*: latency-bound phases are dominated by simulated network round
trips, sync-write phases by simulated disk time, and SFS's relay/crypto
overhead by genuine CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.trace import Tracer
from ..sim.clock import Clock


@dataclass
class Measurement:
    """One timed span."""

    name: str
    cpu_seconds: float
    sim_seconds: float

    @property
    def total(self) -> float:
        return self.cpu_seconds + self.sim_seconds

    def __str__(self) -> str:
        return (f"{self.name}: {self.total:.4f}s "
                f"(cpu {self.cpu_seconds:.4f} + sim {self.sim_seconds:.4f})")


class Timer:
    """Measures named spans against a wall timer and a virtual clock.

    A thin facade over :class:`repro.obs.trace.Tracer` that keeps the
    flat :class:`Measurement` records benchmarks report on.
    """

    def __init__(self, clock: Clock) -> None:
        self._tracer = Tracer(clock)
        self.measurements: list[Measurement] = []

    def measure(self, name: str, fn) -> Measurement:
        """Run *fn* and record its cpu + simulated time."""
        span = self._tracer.measure(name, fn)
        measurement = Measurement(name, span.cpu_seconds, span.sim_seconds)
        self.measurements.append(measurement)
        return measurement

    def total(self) -> float:
        return sum(m.total for m in self.measurements)

    def by_name(self) -> dict[str, Measurement]:
        return {m.name: m for m in self.measurements}


def format_table(title: str, columns: list[str],
                 rows: list[tuple]) -> str:
    """Render a paper-style results table as text."""
    widths = [len(c) for c in columns]
    rendered_rows = []
    for row in rows:
        rendered = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
        rendered_rows.append(rendered)
    lines = [title]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)
