"""Command-line runner: regenerate every figure from the paper.

    python -m repro.bench            # all figures, default scales
    python -m repro.bench fig5 fig8  # a subset
    python -m repro.bench --quick    # reduced workload sizes
    python -m repro.bench fig5 --metrics-out metrics.json

Prints the same rows/series the paper's section 4 reports, each followed
by a per-layer latency attribution table (where did the time go: crypto,
RPC/marshaling, the NFS server, the simulated network and disk).
Absolute numbers reflect the Python simulator; the *shape* (who wins, by
roughly what factor) is the reproduction target — see EXPERIMENTS.md.

With ``--metrics-out PATH``, the full metrics snapshot of every
(figure, configuration) run is written as JSON; render it later with
``python -m repro.obs PATH``.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs.export import SnapshotCollector
from . import compile_bench, mab, micro, sprite
from .setups import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from .timing import format_table

MICRO_CONFIGS = [NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
APP_CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS]

_LAYERS = ["crypto", "rpc", "nfs3", "network", "disk", "other"]


def _measured(name: str, figure: str, collector, workload):
    """Run *workload*(setup) bracketed by layer attribution.

    The layer tracker is reset after setup (key generation and the
    session handshake are not part of any figure's headline), so the
    exclusive per-layer times sum to the workload's elapsed time.
    """
    setup = make_setup(name)
    setup.metrics.layers.reset()
    sim_start = setup.clock.now
    cpu_start = time.perf_counter()
    result = workload(setup)
    headline = ((time.perf_counter() - cpu_start)
                + (setup.clock.now - sim_start))
    breakdown = setup.metrics.layers.breakdown()
    attribution = {n: cpu + sim for n, (cpu, sim) in breakdown.items()}
    if collector is not None:
        collector.add(f"{figure}/{name}", setup.metrics,
                      meta={"figure": figure, "config": name})
    return result, (name, attribution, headline)


def _attribution_table(figure: str, attributions) -> str:
    """Render per-layer time for each configuration of one figure."""
    rows = []
    for name, attribution, headline in attributions:
        folded = {layer: attribution.get(layer, 0.0) for layer in _LAYERS}
        folded["other"] += sum(seconds for layer, seconds
                               in attribution.items() if layer not in _LAYERS)
        total = sum(folded.values())
        rows.append(tuple([name] + [folded[layer] for layer in _LAYERS]
                          + [total, headline]))
    return format_table(
        f"{figure} latency attribution (seconds)",
        ["File system"] + _LAYERS + ["sum", "headline"], rows,
    )


def run_fig5(quick: bool, collector=None) -> str:
    ops = 100 if quick else 200
    size = (1 << 20) if quick else (2 << 20)
    rows, attributions = [], []
    for name in MICRO_CONFIGS:
        result, attribution = _measured(
            name, "fig5", collector,
            lambda setup: micro.run_micro(setup, ops=ops, size=size),
        )
        rows.append((name, result.latency_usec, result.throughput_mbs))
        attributions.append(attribution)
    table = format_table(
        "Figure 5: micro-benchmarks for basic operations",
        ["File system", "Latency (usec)", "Throughput (MB/s)"], rows,
    )
    return table + "\n\n" + _attribution_table("Figure 5", attributions)


def run_fig6(quick: bool, collector=None) -> str:
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(name, "fig6", collector, mab.run_mab)
        rows.append(tuple(
            [name] + [result.phases[p].total for p in mab.PHASES]
            + [result.total]
        ))
        attributions.append(attribution)
    table = format_table(
        "Figure 6: Modified Andrew Benchmark (seconds per phase)",
        ["File system"] + mab.PHASES + ["total"], rows,
    )
    return table + "\n\n" + _attribution_table("Figure 6", attributions)


def run_fig7(quick: bool, collector=None) -> str:
    rows, attributions = [], []
    for name in APP_CONFIGS + [SFS_NOENC]:
        result, attribution = _measured(
            name, "fig7", collector, compile_bench.run_compile
        )
        rows.append((name, result.seconds))
        attributions.append(attribution)
    table = format_table(
        "Figure 7: compiling the GENERIC kernel (synthetic)",
        ["System", "Time (seconds)"], rows,
    )
    return table + "\n\n" + _attribution_table("Figure 7", attributions)


def run_fig8(quick: bool, collector=None) -> str:
    count = 150 if quick else 500
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(
            name, "fig8", collector,
            lambda setup: sprite.run_small_file(setup, count=count),
        )
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.SMALL_PHASES]
        ))
        attributions.append(attribution)
    table = format_table(
        f"Figure 8: Sprite LFS small-file benchmark ({count} x 1 KB files)",
        ["File system"] + sprite.SMALL_PHASES, rows,
    )
    return table + "\n\n" + _attribution_table("Figure 8", attributions)


def run_fig9(quick: bool, collector=None) -> str:
    size = (1 << 20) if quick else (4 << 20)
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(
            name, "fig9", collector,
            lambda setup: sprite.run_large_file(setup, size=size),
        )
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.LARGE_PHASES]
        ))
        attributions.append(attribution)
    table = format_table(
        f"Figure 9: Sprite LFS large-file benchmark ({size >> 20} MB file)",
        ["File system"] + sprite.LARGE_PHASES, rows,
    )
    return table + "\n\n" + _attribution_table("Figure 9", attributions)


def run_scale(quick: bool, collector=None) -> str:
    """Not a paper figure: N closed-loop clients vs one queued server.

    Deterministic per seed — throughput and the latency percentiles are
    pure functions of the configuration.  Past the worker pool's
    service capacity, queueing delay dominates the tail.
    """
    from ..load import LoadConfig, LoadHarness

    levels = [1, 4, 16] if quick else [1, 4, 16, 64]
    ops = 10 if quick else 20
    rows = []
    for clients in levels:
        config = LoadConfig(clients=clients, ops_per_client=ops,
                            seed=2026, workers=2, service_time=0.001,
                            think_time=0.010, max_depth=None)
        harness = LoadHarness(config)
        report = harness.run_closed_loop()
        assert report.op_errors == 0 and report.unfinished_tasks == 0
        rows.append((str(clients), report.throughput,
                     report.p50 * 1000, report.p95 * 1000,
                     report.p99 * 1000, str(report.max_queue_depth)))
        if collector is not None:
            collector.add(f"scale/{clients}-clients", harness.world.metrics,
                          meta={"figure": "scale", "clients": clients})
    return format_table(
        f"Scale: closed-loop clients vs one queued SFS server "
        f"(2 workers x 1 ms service, {ops} ops/client)",
        ["Clients", "ops/s", "p50 ms", "p95 ms", "p99 ms", "peak queue"],
        rows,
    )


FIGURES = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "scale": run_scale,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SFS paper's evaluation figures.",
    )
    parser.add_argument("figures", nargs="*", choices=[*FIGURES, []],
                        help="subset of figures (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write every run's metrics snapshot as JSON")
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    collector = SnapshotCollector() if args.metrics_out else None
    for index, figure in enumerate(selected):
        if index:
            print()
        print(FIGURES[figure](args.quick, collector))
    if collector is not None:
        collector.write(args.metrics_out)
        print(f"\nmetrics snapshots written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
