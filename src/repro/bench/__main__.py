"""Command-line runner: regenerate every figure from the paper.

    python -m repro.bench            # all figures, default scales
    python -m repro.bench fig5 fig8  # a subset
    python -m repro.bench --quick    # reduced workload sizes

Prints the same rows/series the paper's section 4 reports.  Absolute
numbers reflect the Python simulator; the *shape* (who wins, by roughly
what factor) is the reproduction target — see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from . import compile_bench, mab, micro, sprite
from .setups import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from .timing import format_table

MICRO_CONFIGS = [NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
APP_CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS]


def run_fig5(quick: bool) -> str:
    ops = 100 if quick else 200
    size = (1 << 20) if quick else (2 << 20)
    rows = []
    for name in MICRO_CONFIGS:
        result = micro.run_micro(make_setup(name), ops=ops, size=size)
        rows.append((name, result.latency_usec, result.throughput_mbs))
    return format_table(
        "Figure 5: micro-benchmarks for basic operations",
        ["File system", "Latency (usec)", "Throughput (MB/s)"], rows,
    )


def run_fig6(quick: bool) -> str:
    rows = []
    for name in APP_CONFIGS:
        result = mab.run_mab(make_setup(name))
        rows.append(tuple(
            [name] + [result.phases[p].total for p in mab.PHASES]
            + [result.total]
        ))
    return format_table(
        "Figure 6: Modified Andrew Benchmark (seconds per phase)",
        ["File system"] + mab.PHASES + ["total"], rows,
    )


def run_fig7(quick: bool) -> str:
    rows = []
    for name in APP_CONFIGS + [SFS_NOENC]:
        result = compile_bench.run_compile(make_setup(name))
        rows.append((name, result.seconds))
    return format_table(
        "Figure 7: compiling the GENERIC kernel (synthetic)",
        ["System", "Time (seconds)"], rows,
    )


def run_fig8(quick: bool) -> str:
    count = 150 if quick else 500
    rows = []
    for name in APP_CONFIGS:
        result = sprite.run_small_file(make_setup(name), count=count)
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.SMALL_PHASES]
        ))
    return format_table(
        f"Figure 8: Sprite LFS small-file benchmark ({count} x 1 KB files)",
        ["File system"] + sprite.SMALL_PHASES, rows,
    )


def run_fig9(quick: bool) -> str:
    size = (1 << 20) if quick else (4 << 20)
    rows = []
    for name in APP_CONFIGS:
        result = sprite.run_large_file(make_setup(name), size=size)
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.LARGE_PHASES]
        ))
    return format_table(
        f"Figure 9: Sprite LFS large-file benchmark ({size >> 20} MB file)",
        ["File system"] + sprite.LARGE_PHASES, rows,
    )


FIGURES = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SFS paper's evaluation figures.",
    )
    parser.add_argument("figures", nargs="*", choices=[*FIGURES, []],
                        help="subset of figures (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes")
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    for index, figure in enumerate(selected):
        if index:
            print()
        print(FIGURES[figure](args.quick))
    return 0


if __name__ == "__main__":
    sys.exit(main())
