"""Command-line runner: regenerate every figure from the paper.

    python -m repro.bench            # all figures, default scales
    python -m repro.bench fig5 fig8  # a subset
    python -m repro.bench --quick    # reduced workload sizes
    python -m repro.bench fig5 --metrics-out metrics.json
    python -m repro.bench fig5 --json BENCH_fig5.json
    python -m repro.bench fig5 --profile

Prints the same rows/series the paper's section 4 reports, each followed
by a per-layer latency attribution table (where did the time go: crypto,
RPC/marshaling, the NFS server, the simulated network and disk).
Absolute numbers reflect the Python simulator; the *shape* (who wins, by
roughly what factor) is the reproduction target — see EXPERIMENTS.md.

With ``--metrics-out PATH``, the full metrics snapshot of every
(figure, configuration) run is written as JSON; render it later with
``python -m repro.obs PATH``.

With ``--json PATH``, a machine-readable summary of the selected
figures — rows, per-layer attribution, and the wire-path fast-lane
counters (which ARC4 kernel generated how many keystream bytes, fast vs
slow marshals, Packer buffer-pool hits) — is written as JSON.  The
committed ``BENCH_fig5.json``/``BENCH_scale.json`` at the repo root are
snapshots of this output; CI's perf-smoke job compares fresh runs
against them (see docs/PERFORMANCE.md).

With ``--profile``, the selected figures run under :mod:`cProfile` and
the top-20 cumulative-time entries are printed after the tables, so
perf work starts from evidence rather than guesses.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..crypto import arc4kernel, backend
from ..obs.export import SnapshotCollector
from ..rpc import xdr
from . import compile_bench, mab, micro, sprite
from .setups import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from .timing import format_table

MICRO_CONFIGS = [NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
APP_CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS]

_LAYERS = ["crypto", "rpc", "nfs3", "network", "disk", "other"]


def perf_stats() -> dict:
    """Process-wide fast-lane counters (see docs/PERFORMANCE.md).

    The ARC4 kernel and marshal counters are module-level because the
    cipher streams and codec singletons are shared across every World in
    the process; figure runners snapshot-and-diff around each figure.
    """
    return {
        "fast_kernel": arc4kernel.FAST_KERNEL,
        "flags": {
            "use_fast_sha1": backend.use_fast_sha1,
            "use_fast_arc4": backend.use_fast_arc4,
            "use_fast_marshal": backend.use_fast_marshal,
        },
        "arc4": arc4kernel.STATS.snapshot(),
        "marshal": xdr.STATS.snapshot(),
    }


def _perf_delta(before: dict, after: dict) -> dict:
    delta = dict(after)
    delta["arc4"] = {k: after["arc4"][k] - before["arc4"][k]
                     for k in after["arc4"]}
    delta["marshal"] = {k: after["marshal"][k] - before["marshal"][k]
                        for k in after["marshal"]}
    return delta


def _measured(name: str, figure: str, collector, workload):
    """Run *workload*(setup) bracketed by layer attribution.

    The layer tracker is reset after setup (key generation and the
    session handshake are not part of any figure's headline), so the
    exclusive per-layer times sum to the workload's elapsed time.
    """
    setup = make_setup(name)
    setup.metrics.layers.reset()
    arc4_before = arc4kernel.STATS.snapshot()
    marshal_before = xdr.STATS.snapshot()
    sim_start = setup.clock.now
    cpu_start = time.perf_counter()
    result = workload(setup)
    headline = ((time.perf_counter() - cpu_start)
                + (setup.clock.now - sim_start))
    # Fold this run's fast-lane counter deltas into the World's own
    # registry so the exported snapshot carries them alongside the
    # layer attribution (the kernel/marshal counters are process-wide;
    # runs are sequential, so the delta is this workload's).
    for key, value in arc4kernel.STATS.snapshot().items():
        setup.metrics.counter(f"fastlane.arc4.{key}").inc(
            value - arc4_before[key])
    for key, value in xdr.STATS.snapshot().items():
        setup.metrics.counter(f"fastlane.marshal.{key}").inc(
            value - marshal_before[key])
    breakdown = setup.metrics.layers.breakdown()
    attribution = {n: cpu + sim for n, (cpu, sim) in breakdown.items()}
    if collector is not None:
        collector.add(f"{figure}/{name}", setup.metrics,
                      meta={"figure": figure, "config": name})
    return result, (name, attribution, headline)


def _attribution_table(figure: str, attributions) -> str:
    """Render per-layer time for each configuration of one figure."""
    rows = []
    for name, attribution, headline in attributions:
        folded = {layer: attribution.get(layer, 0.0) for layer in _LAYERS}
        folded["other"] += sum(seconds for layer, seconds
                               in attribution.items() if layer not in _LAYERS)
        total = sum(folded.values())
        rows.append(tuple([name] + [folded[layer] for layer in _LAYERS]
                          + [total, headline]))
    return format_table(
        f"{figure} latency attribution (seconds)",
        ["File system"] + _LAYERS + ["sum", "headline"], rows,
    )


def _attribution_data(attributions) -> dict:
    return {name: {"headline_seconds": headline, "layers": attribution}
            for name, attribution, headline in attributions}


def run_fig5(quick: bool, collector=None) -> tuple[str, dict]:
    ops = 100 if quick else 200
    size = (1 << 20) if quick else (2 << 20)
    rows, attributions = [], []
    for name in MICRO_CONFIGS:
        result, attribution = _measured(
            name, "fig5", collector,
            lambda setup: micro.run_micro(setup, ops=ops, size=size),
        )
        rows.append((name, result.latency_usec, result.throughput_mbs))
        attributions.append(attribution)
    table = format_table(
        "Figure 5: micro-benchmarks for basic operations",
        ["File system", "Latency (usec)", "Throughput (MB/s)"], rows,
    )
    data = {
        "rows": [{"config": name, "latency_usec": latency,
                  "throughput_mbs": throughput}
                 for name, latency, throughput in rows],
        "attribution": _attribution_data(attributions),
    }
    return table + "\n\n" + _attribution_table("Figure 5", attributions), data


def run_fig6(quick: bool, collector=None) -> tuple[str, dict]:
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(name, "fig6", collector, mab.run_mab)
        rows.append(tuple(
            [name] + [result.phases[p].total for p in mab.PHASES]
            + [result.total]
        ))
        attributions.append(attribution)
    table = format_table(
        "Figure 6: Modified Andrew Benchmark (seconds per phase)",
        ["File system"] + mab.PHASES + ["total"], rows,
    )
    data = {
        "rows": [dict(zip(["config"] + mab.PHASES + ["total"], row))
                 for row in rows],
        "attribution": _attribution_data(attributions),
    }
    return table + "\n\n" + _attribution_table("Figure 6", attributions), data


def run_fig7(quick: bool, collector=None) -> tuple[str, dict]:
    rows, attributions = [], []
    for name in APP_CONFIGS + [SFS_NOENC]:
        result, attribution = _measured(
            name, "fig7", collector, compile_bench.run_compile
        )
        rows.append((name, result.seconds))
        attributions.append(attribution)
    table = format_table(
        "Figure 7: compiling the GENERIC kernel (synthetic)",
        ["System", "Time (seconds)"], rows,
    )
    data = {
        "rows": [{"config": name, "seconds": seconds}
                 for name, seconds in rows],
        "attribution": _attribution_data(attributions),
    }
    return table + "\n\n" + _attribution_table("Figure 7", attributions), data


def run_fig8(quick: bool, collector=None) -> tuple[str, dict]:
    count = 150 if quick else 500
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(
            name, "fig8", collector,
            lambda setup: sprite.run_small_file(setup, count=count),
        )
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.SMALL_PHASES]
        ))
        attributions.append(attribution)
    table = format_table(
        f"Figure 8: Sprite LFS small-file benchmark ({count} x 1 KB files)",
        ["File system"] + sprite.SMALL_PHASES, rows,
    )
    data = {
        "rows": [dict(zip(["config"] + sprite.SMALL_PHASES, row))
                 for row in rows],
        "attribution": _attribution_data(attributions),
    }
    return table + "\n\n" + _attribution_table("Figure 8", attributions), data


def run_fig9(quick: bool, collector=None) -> tuple[str, dict]:
    size = (1 << 20) if quick else (4 << 20)
    rows, attributions = [], []
    for name in APP_CONFIGS:
        result, attribution = _measured(
            name, "fig9", collector,
            lambda setup: sprite.run_large_file(setup, size=size),
        )
        rows.append(tuple(
            [name] + [result.phases[p].total for p in sprite.LARGE_PHASES]
        ))
        attributions.append(attribution)
    table = format_table(
        f"Figure 9: Sprite LFS large-file benchmark ({size >> 20} MB file)",
        ["File system"] + sprite.LARGE_PHASES, rows,
    )
    data = {
        "rows": [dict(zip(["config"] + sprite.LARGE_PHASES, row))
                 for row in rows],
        "attribution": _attribution_data(attributions),
    }
    return table + "\n\n" + _attribution_table("Figure 9", attributions), data


def run_scale(quick: bool, collector=None) -> tuple[str, dict]:
    """Not a paper figure: N closed-loop clients vs one queued server.

    Deterministic per seed — throughput and the latency percentiles are
    pure functions of the configuration.  Past the worker pool's
    service capacity, queueing delay dominates the tail.
    """
    from ..load import LoadConfig, LoadHarness

    # The last point runs on the task-native pipelined core (window
    # depth 8) — the population a synchronous pump cannot reach: 256
    # clients quick, 1024 in the full run.
    levels = [(1, 0), (4, 0), (16, 0)] if quick else [(1, 0), (4, 0),
                                                      (16, 0), (64, 0)]
    levels.append((256 if quick else 1024, 8))
    ops = 10 if quick else 20
    rows, data_rows = [], []
    for clients, depth in levels:
        config = LoadConfig(clients=clients,
                            ops_per_client=6 if depth else ops,
                            seed=2026, workers=2, service_time=0.001,
                            think_time=0.010, max_depth=None,
                            pipeline_depth=depth or None)
        harness = LoadHarness(config)
        report = harness.run_closed_loop()
        assert report.op_errors == 0 and report.unfinished_tasks == 0
        label = f"{clients} (d=8)" if depth else str(clients)
        rows.append((label, report.throughput,
                     report.p50 * 1000, report.p95 * 1000,
                     report.p99 * 1000, str(report.max_queue_depth)))
        data_rows.append({
            "clients": clients, "pipeline_depth": depth,
            "ops_per_second": report.throughput,
            "p50_ms": report.p50 * 1000, "p95_ms": report.p95 * 1000,
            "p99_ms": report.p99 * 1000,
            "max_queue_depth": report.max_queue_depth,
        })
        if collector is not None:
            collector.add(f"scale/{clients}-clients", harness.world.metrics,
                          meta={"figure": "scale", "clients": clients,
                                "pipeline_depth": depth})
    table = format_table(
        f"Scale: closed-loop clients vs one queued SFS server "
        f"(2 workers x 1 ms service, {ops} ops/client)",
        ["Clients", "ops/s", "p50 ms", "p95 ms", "p99 ms", "peak queue"],
        rows,
    )
    return table, {"rows": data_rows}


def run_fleet(quick: bool, collector=None) -> tuple[str, dict]:
    """Not a paper figure: fixed clients vs a growing server fleet.

    The namespace composes out of symlinks (section 2.4), so capacity
    scales by adding servers: the sweep holds the client population
    fixed and grows the fleet, expecting aggregate ops/s to rise until
    the clients are the bottleneck.  A tamper demonstration rides along:
    the fastest namespace mirror serves bit-flipped blobs and is banned
    on the first digest mismatch with zero wrong links resolved.
    """
    from ..fleet.bench import FleetHarness, FleetLoadConfig, run_tamper_demo

    levels = [1, 4, 16]
    ops = 8 if quick else 20
    names = 16 if quick else 32
    rows, data_rows = [], []
    previous_throughput = 0.0
    for servers in levels:
        config = FleetLoadConfig(servers=servers, clients=16,
                                 ops_per_client=ops, names=names, seed=2026)
        harness = FleetHarness(config)
        report = harness.run()
        assert report.op_errors == 0 and report.unfinished_tasks == 0
        assert report.names_resolved == names
        assert report.throughput > previous_throughput, \
            f"{servers} servers did not beat {previous_throughput:.0f} ops/s"
        previous_throughput = report.throughput
        rows.append((str(servers), report.throughput,
                     report.p50 * 1000, report.p99 * 1000,
                     report.worst_shard_p99() * 1000,
                     str(max(s.peak_queue_depth for s in report.shards))))
        data_rows.append({
            "servers": servers, "clients": report.clients,
            "ops_per_second": report.throughput,
            "p50_ms": report.p50 * 1000, "p95_ms": report.p95 * 1000,
            "p99_ms": report.p99 * 1000,
            "names_resolved": report.names_resolved,
            "namespace": report.namespace,
            "shards": [{
                "location": shard.location, "names": shard.names,
                "clients": shard.clients, "ops": shard.ops_completed,
                "p50_ms": shard.p50 * 1000, "p99_ms": shard.p99 * 1000,
                "peak_queue_depth": shard.peak_queue_depth,
            } for shard in report.shards],
        })
        if collector is not None:
            collector.add(f"fleet/{servers}-servers", harness.world.metrics,
                          meta={"figure": "fleet", "servers": servers})
    tamper = run_tamper_demo(seed=2026)
    assert tamper.wrong_links == 0 and tamper.bans >= 1
    table = format_table(
        "Fleet: 16 closed-loop clients vs server count "
        f"(2 workers x 5 ms service per shard, {names} names, "
        f"{ops} ops/client)",
        ["Servers", "ops/s", "p50 ms", "p99 ms", "worst shard p99 ms",
         "peak queue"],
        rows,
    )
    table += (
        f"\n\ntamper demotion: {tamper.names_resolved} links resolved, "
        f"{tamper.wrong_links} wrong, {tamper.corrupt_blobs} corrupt "
        f"blob(s) rejected, banned: {', '.join(tamper.banned_replicas)}"
    )
    data = {
        "rows": data_rows,
        "tamper": {
            "names_resolved": tamper.names_resolved,
            "wrong_links": tamper.wrong_links,
            "corrupt_blobs": tamper.corrupt_blobs,
            "bans": tamper.bans,
            "failovers": tamper.failovers,
            "banned_replicas": tamper.banned_replicas,
            "replicas": tamper.replicas,
        },
    }
    return table, data


def run_control(quick: bool, collector=None) -> tuple[str, dict]:
    """Not a paper figure: the fleet control plane, loop open vs closed.

    One 4-shard fleet with a deliberately hot shard (6x service time,
    most clients pinned to its names), run twice from the same seed:
    once unmanaged, once with the control plane's actuators attached
    (load shedding on fleet p99 breach, AIMD admission depth per
    shard).  The managed run must beat the unmanaged one on *both*
    fleet p99 and busy-rejects — the closed loop has to pay for
    itself, not just emit actions.
    """
    from ..control.bench import ControlBenchConfig, run_control_comparison

    ops = 12 if quick else 30
    config = ControlBenchConfig(ops_per_client=ops, max_depth=4,
                                hot_clients=12, hot_factor=6.0, seed=2026)
    baseline, managed, artifact = run_control_comparison(config)
    assert managed.op_errors == 0 and managed.unfinished_tasks == 0
    assert managed.p99 < baseline.p99, \
        f"managed p99 {managed.p99:.4f}s >= baseline {baseline.p99:.4f}s"
    assert managed.busy_rejects < baseline.busy_rejects, \
        (f"managed rejects {managed.busy_rejects} >= "
         f"baseline {baseline.busy_rejects}")
    assert managed.policy_actions > 0
    rows = [
        (label, report.throughput, report.p50 * 1000, report.p99 * 1000,
         str(report.busy_rejects), str(report.op_errors),
         f"{report.final_think_scale:g}", str(report.policy_actions))
        for label, report in (("open loop", baseline),
                              ("closed loop", managed))
    ]
    table = format_table(
        f"Control plane: {config.clients} clients vs {config.servers} "
        f"shards, hot shard {managed.hot_shard} at "
        f"{config.hot_factor:g}x service time ({ops} ops/client)",
        ["Policy", "ops/s", "p50 ms", "p99 ms", "busy-rejects", "errors",
         "shed", "actions"],
        rows,
    )
    events = artifact["slo"]["events"]
    table += (
        f"\n\ncontrol loop: {managed.policy_actions} actions, "
        f"{len(events)} SLO transitions, hot shard final depth "
        f"{next(s.final_max_depth for s in managed.shards if s.hot)}"
    )
    if collector is not None:
        # The control plane already built the fleet-level snapshot
        # (merged across per-source registries); ship it as-is.
        collector.snapshots["control/fleet-merged"] = \
            artifact["collector"]["merged"]
    data = {
        "artifact": artifact,
        "baseline": artifact["summary"]["baseline"],
        "managed": artifact["summary"]["managed"],
    }
    return table, data


def run_auth(quick: bool, collector=None) -> tuple[str, dict]:
    """Not a paper figure: the scaled auth plane under login storms.

    Four panels: (a) Poisson login storms against 1 vs 4 authserver
    shards at the same arrival rate — sharding the user database must
    raise aggregate login throughput; (b) a user-table size sweep at a
    gentle rate — login latency must not grow with table size; (c) the
    fileserver decision cache — steady-state hit rate above 90% and
    *zero* successful logins after a revocation; (d) the eksblowfish
    cost sweep of section 2.5.2 — per-layer login-latency attribution
    as the password-hardening cost parameter climbs.
    """
    from ..auth.bench import (
        AuthHarness,
        AuthLoadConfig,
        run_cache_phase,
        run_cost_sweep,
    )

    users = 10_000 if quick else 100_000
    duration = 0.25 if quick else 0.5
    rows, data_rows = [], []
    previous_throughput = 0.0
    for shards in (1, 4):
        config = AuthLoadConfig(shards=shards, users=users,
                                duration=duration, seed=2026)
        harness = AuthHarness(config)
        report = harness.run_storm()
        assert report.errors == 0 and report.unfinished_tasks == 0
        assert report.logins_ok > 0 and report.denied == 0
        assert report.throughput > previous_throughput, \
            (f"{shards} auth shards did not beat "
             f"{previous_throughput:.0f} logins/s")
        previous_throughput = report.throughput
        rows.append((str(shards), report.throughput,
                     report.p50 * 1000, report.p95 * 1000,
                     str(report.logins_ok), str(report.shed),
                     str(report.queue_rejected)))
        data_rows.append(report.row())
        if collector is not None:
            collector.add(f"auth/{shards}-shards", harness.world.metrics,
                          meta={"figure": "auth", "shards": shards,
                                "users": users})
    # Panel (b): table size must not show up in login latency (hash
    # ring + dict lookups, not scans).  The issue asks for 10^3..10^6;
    # the in-memory table is capped at 10^5 users to keep the bench
    # resident set modest — the cap is recorded in the artifact.
    sizes = [1_000, 10_000] if quick else [1_000, 10_000, 100_000]
    sweep_rows, sweep_data = [], []
    for size in sizes:
        config = AuthLoadConfig(shards=2, users=size, login_users=8,
                                arrival_rate=400.0, duration=duration,
                                seed=2026)
        harness = AuthHarness(config)
        report = harness.run_storm()
        assert report.errors == 0 and report.denied == 0
        sweep_rows.append((f"{size:,}", report.throughput,
                           report.p50 * 1000, report.p95 * 1000,
                           str(report.logins_ok)))
        sweep_data.append(report.row())
    # Panel (c): the decision cache, then a revocation mid-stream.
    cache = run_cache_phase(users=500 if quick else 2000,
                            logins_per_session=20 if quick else 40,
                            seed=2026)
    assert cache.hit_rate > 0.9, f"cache hit rate {cache.hit_rate:.2%}"
    assert cache.post_revocation_ok == 0, \
        f"{cache.post_revocation_ok} logins succeeded after revocation"
    assert cache.other_user_ok
    # Panel (d): eksblowfish cost vs login latency, attributed by layer.
    costs = (2, 4, 6)
    cost_rows = run_cost_sweep(costs, seed=2026)
    assert len(cost_rows) >= 3
    totals = [row["total_ms"] for row in cost_rows]
    assert all(a < b for a, b in zip(totals, totals[1:])), \
        f"login latency not monotone in eksblowfish cost: {totals}"
    table = format_table(
        f"Auth storms: Poisson logins at 1,600/s vs authserver shards "
        f"({users:,} users, 2 workers x 4 ms service, depth 16)",
        ["Shards", "logins/s", "p50 ms", "p95 ms", "ok", "shed",
         "rejected"],
        rows,
    )
    table += "\n\n" + format_table(
        "Auth table-size sweep (2 shards, 400 logins/s offered)",
        ["Users", "logins/s", "p50 ms", "p95 ms", "ok"],
        sweep_rows,
    )
    table += (
        f"\n\ndecision cache: {cache.hit_rate:.1%} hit rate over "
        f"{cache.logins_ok} logins; {cache.revoked_user} revoked -> "
        f"{cache.post_revocation_ok}/{cache.post_revocation_attempts} "
        f"post-revocation logins succeeded"
    )
    table += "\n\n" + format_table(
        "eksblowfish cost vs login latency (per-layer attribution)",
        ["Cost", "harden ms", "service ms", "network ms", "total ms"],
        [(str(row["cost"]), row["harden_ms"], row["service_ms"],
          row["network_ms"], row["total_ms"]) for row in cost_rows],
    )
    data = {
        "storm": {"users": users, "arrival_rate": 1600.0,
                  "duration_s": duration, "rows": data_rows},
        "table_sweep": {"sizes": sizes, "size_cap": 100_000,
                        "rows": sweep_data},
        "cache": cache.data(),
        "cost_sweep": {"harden_unit_seconds": 0.0008, "rows": cost_rows},
    }
    return table, data


def run_pipeline(quick: bool, collector=None) -> tuple[str, dict]:
    """Not a paper figure: the task-native async core's depth sweep.

    Sequential large-file write + read through the full kernel -> sfscd
    -> secure channel -> sfssd stack, at RPC window depths 1/4/8/16 on
    a switched LAN and a 20 ms WAN.  Depth 1 is the classic synchronous
    core, bit-for-bit (``pipeline_depth`` stays 0, so readahead and
    write-gathering are off too) — the honest baseline.

    The attribution columns prove *overlap*, not just speedup: at depth
    1 elapsed time is the serialized sum of wire time, while at depth N
    the summed per-record wire seconds (``net.pipelined.wire_seconds``)
    exceed the elapsed clock — multiple records were on the wire, and
    crypto under way, during the same simulated instant.

    A scale panel rides along: 256 (quick) / 1024 (full) closed-loop
    pipelined clients against one queued server, asserting zero op
    errors and zero hung tasks — the determinism + no-pump-re-entrancy
    acceptance for the async core.
    """
    from ..load import LoadConfig, LoadHarness
    from ..sim.network import NetworkParameters

    chunk = b"\xa5" * 8192
    nchunks = 64 if quick else 128
    depths = [1, 4, 8, 16]
    networks = [("LAN", None), ("WAN", NetworkParameters.wan())]
    rows, data_rows = [], []
    baselines: dict = {}
    speedups: dict = {}
    for net_name, params in networks:
        for depth in depths:
            setup = make_setup(SFS, pipeline_depth=0 if depth == 1 else depth,
                               params=params)
            proc, clock = setup.process, setup.clock

            def wire_now():
                snap = setup.metrics.snapshot()["metrics"]
                return snap.get("net.pipelined.wire_seconds", 0.0)

            path = setup.workdir + "/large"
            write_start = clock.now
            fd = proc.open(path, "w")
            for _ in range(nchunks):
                proc.write(fd, chunk)
            proc.fsync(fd)
            proc.close(fd)
            write_s = clock.now - write_start
            read_start, read_wire_start = clock.now, wire_now()
            fd = proc.open(path, "r")
            total = 0
            while True:
                piece = proc.read(fd, 8192)
                if not piece:
                    break
                total += len(piece)
            proc.close(fd)
            read_s = clock.now - read_start
            read_wire_s = wire_now() - read_wire_start
            assert total == nchunks * len(chunk)
            snapshot = setup.metrics.snapshot()["metrics"]

            def count(name: str):
                value = snapshot.get(name, 0)
                return (value if not isinstance(value, dict)
                        else value.get("count", 0))

            if depth == 1:
                baselines[net_name] = (write_s, read_s)
            base_w, base_r = baselines[net_name]
            speedups[(net_name, depth)] = base_r / read_s
            wire_s = count("net.pipelined.wire_seconds")
            rows.append((
                f"{net_name} d={depth}", write_s, read_s,
                f"{base_w / write_s:.2f}x", f"{base_r / read_s:.2f}x",
                f"{read_wire_s:.3f}",
                str(count("client.readahead.hits")),
                str(count("client.gather.flushes")),
                str(count("rpc.retransmissions")),
            ))
            data_rows.append({
                "network": net_name, "depth": depth,
                "write_s": write_s, "read_s": read_s,
                "write_speedup": base_w / write_s,
                "read_speedup": base_r / read_s,
                "pipelined_wire_s": wire_s,
                "read_wire_s": read_wire_s,
                "elapsed_s": write_s + read_s,
                "readahead_hits": count("client.readahead.hits"),
                "readahead_batches": count("client.readahead.batches"),
                "gather_writes": count("client.gather.writes"),
                "gather_flushes": count("client.gather.flushes"),
                "window_waits": count("rpc.window.waits"),
                "retransmissions": count("rpc.retransmissions"),
                "mac_rejects": count("channel.mac_reject"),
            })
            if collector is not None:
                collector.add(f"pipeline/{net_name}-d{depth}", setup.metrics,
                              meta={"figure": "pipeline",
                                    "network": net_name, "depth": depth})
    # The acceptance gate: batching + pipelining must at least double
    # sequential reads where latency dominates.
    assert speedups[("WAN", 8)] >= 2.0, (
        f"WAN depth-8 sequential read speedup "
        f"{speedups[('WAN', 8)]:.2f}x < 2x")
    # Overlap proof: at depth 16 the WAN read phase is network-
    # saturated — summed in-flight wire time covers (nearly) the whole
    # elapsed read phase, so crypto and client CPU ran entirely under
    # in-flight records.  The depth-1 baseline spends the same transfer
    # stalling on serialized round trips instead (its link delivers
    # inline, so its pipelined wire counter is zero by construction).
    wan16 = next(r for r in data_rows
                 if r["network"] == "WAN" and r["depth"] == 16)
    assert wan16["read_wire_s"] >= 0.9 * wan16["read_s"], (
        f"depth-16 WAN read not network-saturated: "
        f"{wan16['read_wire_s']:.3f}s wire vs "
        f"{wan16['read_s']:.3f}s elapsed")

    clients = 256 if quick else 1024
    config = LoadConfig(clients=clients, ops_per_client=6 if quick else 10,
                        seed=2026, pipeline_depth=8, workers=2,
                        service_time=0.001, think_time=0.010,
                        max_depth=None)
    harness = LoadHarness(config)
    report = harness.run_closed_loop()
    assert report.op_errors == 0 and report.unfinished_tasks == 0
    if collector is not None:
        collector.add(f"pipeline/scale-{clients}", harness.world.metrics,
                      meta={"figure": "pipeline", "clients": clients})

    table = format_table(
        f"Pipeline: SFS sequential {nchunks * 8} KB file vs RPC window "
        "depth (d=1 = classic synchronous core)",
        ["Config", "write s", "read s", "write x", "read x",
         "rd wire s", "ra hits", "gw flushes", "retrans"],
        rows,
    )
    table += (
        f"\n\nscale panel: {clients} pipelined clients (depth 8): "
        f"{report.ops_completed} ops, {report.op_errors} errors, "
        f"{report.unfinished_tasks} hung tasks, "
        f"{report.throughput:.0f} ops/s"
    )
    data = {
        "rows": data_rows,
        "scale_panel": {
            "clients": clients, "pipeline_depth": 8,
            "ops_completed": report.ops_completed,
            "op_errors": report.op_errors,
            "unfinished_tasks": report.unfinished_tasks,
            "ops_per_second": report.throughput,
            "p50_ms": report.p50 * 1000, "p99_ms": report.p99 * 1000,
        },
    }
    return table, data


FIGURES = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "scale": run_scale,
    "pipeline": run_pipeline,
    "fleet": run_fleet,
    "control": run_control,
    "auth": run_auth,
}


def run_figures(selected: list[str], quick: bool, collector=None,
                echo=print) -> dict:
    """Run *selected* figures; print tables via *echo*; return JSON data."""
    report: dict = {"quick": quick, "figures": {}}
    for index, figure in enumerate(selected):
        if index:
            echo()
        before = perf_stats()
        text, data = FIGURES[figure](quick, collector)
        data["perf"] = _perf_delta(before, perf_stats())
        report["figures"][figure] = data
        echo(text)
    report["perf_totals"] = perf_stats()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the SFS paper's evaluation figures.",
    )
    parser.add_argument("figures", nargs="*", choices=[*FIGURES, []],
                        help="subset of figures (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced workload sizes")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write every run's metrics snapshot as JSON")
    parser.add_argument("--json", metavar="PATH", default=None, dest="json_out",
                        help="write machine-readable results (rows, "
                             "attribution, fast-lane counters) as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; print top-20 cumulative")
    args = parser.parse_args(argv)
    selected = args.figures or list(FIGURES)
    collector = SnapshotCollector() if args.metrics_out else None
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        report = profiler.runcall(run_figures, selected, args.quick, collector)
        print("\nprofile: top 20 by cumulative time")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
    else:
        report = run_figures(selected, args.quick, collector)
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nbench results written to {args.json_out}")
    if collector is not None:
        collector.write(args.metrics_out)
        print(f"\nmetrics snapshots written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
