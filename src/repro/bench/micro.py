"""Figure 5: micro-benchmarks for basic operations.

Latency: "we measured the cost of a file system operation that always
requires a remote RPC but never requires a disk access — an unauthorized
fchown system call."

Throughput: "we measured the speed of streaming data from the server
without going to disk.  We sequentially read a sparse, 1,000 Mbyte
file."  We default to a scaled-down sparse file (the ratio between
configurations is what the figure shows); the size is a parameter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..kernel.vfs import KernelError
from .setups import BenchSetup

DEFAULT_LATENCY_OPS = 200
DEFAULT_THROUGHPUT_BYTES = 2 << 20  # scaled stand-in for 1,000 MB
_CHUNK = 8192


@dataclass
class MicroResult:
    """One row of figure 5."""

    name: str
    latency_usec: float
    throughput_mbs: float
    attribution: dict[str, float] | None = None
    headline_seconds: float = 0.0


def measure_latency(setup: BenchSetup, ops: int = DEFAULT_LATENCY_OPS) -> float:
    """Mean microseconds for an unauthorized fchown round trip.

    The file is opened once; each iteration is exactly one SETATTR RPC
    that fails with EPERM — a remote round trip with no disk access,
    matching the paper's methodology.
    """
    proc = setup.process
    target = f"{setup.workdir}/chown-target"
    proc.write_file(target, b"x")
    fd = proc.open(target, "r")
    for _ in range(3):  # warm every cache on the path
        _unauthorized_fchown(proc, fd)
    sim_start = setup.clock.now
    cpu_start = time.perf_counter()
    for _ in range(ops):
        _unauthorized_fchown(proc, fd)
    cpu = time.perf_counter() - cpu_start
    sim = setup.clock.now - sim_start
    proc.close(fd)
    return (cpu + sim) / ops * 1e6


def _unauthorized_fchown(proc, fd: int) -> None:
    try:
        proc.fchown(fd, 0)  # non-owner chown to root: always EPERM
    except KernelError:
        pass
    else:
        raise AssertionError("unauthorized fchown unexpectedly succeeded")


def measure_throughput(setup: BenchSetup,
                       size: int = DEFAULT_THROUGHPUT_BYTES) -> float:
    """Sequential sparse-file read rate in MB/s."""
    proc = setup.process
    path = f"{setup.workdir}/sparse"
    fd = proc.open(path, "w")
    proc.close(fd, sync_on_close=False)
    proc.truncate(path, size)  # sparse: no blocks allocated
    fd = proc.open(path, "r")
    sim_start = setup.clock.now
    cpu_start = time.perf_counter()
    remaining = size
    while remaining > 0:
        data = proc.read(fd, min(_CHUNK, remaining))
        if not data:
            break
        remaining -= len(data)
    cpu = time.perf_counter() - cpu_start
    sim = setup.clock.now - sim_start
    proc.close(fd)
    total = cpu + sim
    return (size / (1 << 20)) / total


def run_micro(setup: BenchSetup, ops: int = DEFAULT_LATENCY_OPS,
              size: int = DEFAULT_THROUGHPUT_BYTES) -> MicroResult:
    """Run both micro-benchmarks, attributing time to protocol layers.

    The layer tracker is reset right as the headline timers start, so
    the exclusive per-layer times it accumulates sum to the headline by
    construction (gaps land in "other").
    """
    layers = setup.metrics.layers
    layers.reset()
    sim_start = setup.clock.now
    cpu_start = time.perf_counter()
    latency_usec = measure_latency(setup, ops)
    throughput_mbs = measure_throughput(setup, size)
    headline = ((time.perf_counter() - cpu_start)
                + (setup.clock.now - sim_start))
    breakdown = layers.breakdown()
    attribution = ({name: cpu + sim for name, (cpu, sim) in breakdown.items()}
                   if setup.metrics.enabled else None)
    return MicroResult(
        name=setup.name,
        latency_usec=latency_usec,
        throughput_mbs=throughput_mbs,
        attribution=attribution,
        headline_seconds=headline,
    )
