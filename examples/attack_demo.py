#!/usr/bin/env python3
"""The threat model, demonstrated (paper section 2.1.2).

"SFS assumes that malicious parties entirely control the network.
Attackers can intercept packets, tamper with them, and inject new
packets onto the network.  Under these assumptions, SFS ensures that
attackers can do no worse than delay the file system's operation."

We put adversaries directly on the wire and watch SFS reduce each attack
to denial of service, then show the two classic failures SFS prevents:
impersonating a server (the HostID catches it) and the multi-user cache
attack that AFS suffers from (section 5.1).
"""

from repro import World
from repro.core import proto
from repro.core.client import SecurityError, ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.core.pathnames import SelfCertifyingPath, make_path
from repro.crypto.rabin import generate_key
from repro.fs import Cred, pathops
from repro.rpc.peer import RpcTimeout
from repro.sim.network import RecordingAdversary, TamperAdversary


def main() -> None:
    # --- tampering on the wire --------------------------------------------
    world = World()
    server = world.add_server("target.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/file", b"integrity matters")
    client = world.add_client("victim")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    print("clean read:", proc.read_file(f"{path}/file"))

    # Now every record after connection setup gets a flipped bit.
    world.adversary_factory = lambda: TamperAdversary(target_index=6)
    client2 = world.add_client("victim2")
    client2.new_agent("user", 1000)
    proc2 = client2.process(uid=1000)
    try:
        proc2.read_file(f"{path}/file")
        print("BUG: tampered read returned data")
    except OSError as exc:
        print(f"tampered record -> MAC failure -> dropped -> {exc.strerror}")
        print("(attack degraded to denial of service, never bad data)")
    world.adversary_factory = None

    # --- eavesdropping learns nothing -------------------------------------
    recorder = RecordingAdversary()
    world.adversary_factory = lambda: recorder
    client3 = world.add_client("victim3")
    client3.new_agent("user", 1000)
    proc3 = client3.process(uid=1000)
    secret = b"the secret contents of my file"
    pathops.write_file(server.fs, "/secret", secret)
    proc3.read_file(f"{path}/secret")
    wire = b"".join(record for _dir, record in recorder.transcript)
    assert secret not in wire, "plaintext leaked onto the wire!"
    print(f"eavesdropper captured {len(wire)} bytes; plaintext absent")
    world.adversary_factory = None

    # --- impersonation: the HostID catches a wrong key ----------------------
    # Mallory hijacks target.example.com's address and answers every
    # CONNECT (whatever HostID it asks for) with her own key.
    mallory_world = World(seed=321)
    mallory = mallory_world.add_server("target.example.com")
    mallory.export_fs()  # a different key -> different HostID
    mallory.master.config.prepend_rule(
        "hijack-everything", "default", lambda service, hostid, ext: True
    )
    link = mallory_world.connector("target.example.com",
                                   proto.SERVICE_FILESERVER)
    try:
        ServerSession.connect(
            link, path,  # the REAL server's self-certifying pathname
            EphemeralKeyCache(mallory_world.rng), mallory_world.rng,
        )
        print("BUG: impersonation succeeded")
    except SecurityError as exc:
        print(f"impersonation rejected: {exc}")

    # --- the AFS conundrum (paper section 5.1) ------------------------------
    # Two users who disagree about a server's key end up at *different*
    # file names, so they can never poison each other's caches.
    real_key = generate_key(768, mallory_world.rng)
    fake_key = generate_key(768, mallory_world.rng)
    path_real = make_path("shared.example.com", real_key.public_key)
    path_fake = make_path("shared.example.com", fake_key.public_key)
    assert str(path_real) != str(path_fake)
    print("two keys for one hostname give two distinct pathnames:")
    print(f"  {path_real}")
    print(f"  {path_fake}")
    print("-> users sharing a client cache can never collide")


if __name__ == "__main__":
    main()
