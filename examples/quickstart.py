#!/usr/bin/env python3
"""Quickstart: a secure global file system in twenty lines.

Builds a world with one SFS server and one client, and shows the core
idea of the paper: the *name* of the file system authenticates the
server.  No certificates, no realms, no client configuration — the
HostID inside /sfs/Location:HostID commits to the server's public key.
"""

from repro import World
from repro.fs import pathops, Cred


def main() -> None:
    world = World()

    # Anyone with a domain name can run a server: generate a key,
    # export a file system, and the self-certifying pathname exists on
    # every client in the world.
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    print(f"server exported:  {path}")
    print(f"  Location = {path.location}")
    print(f"  HostID   = {path.hostid_text}  (SHA-1 of the public key)")

    # Server-side account setup: alice gets a uid and a key pair, plus
    # a home directory.
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)

    # A client machine anywhere on the Internet.  Alice's agent holds
    # her private key; the kernel + sfscd handle everything else.
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)

    # First access automounts: connect, verify HostID, negotiate session
    # keys, authenticate alice through her agent -- all transparent.
    proc.write_file(f"{path}/home/alice/notes.txt",
                    b"my first self-certifying file\n")
    data = proc.read_file(f"{path}/home/alice/notes.txt")
    print(f"read back:        {data!r}")

    # The /sfs directory shows (only) what this user has referenced.
    print(f"/sfs for alice:   {proc.readdir('/sfs')}")

    # pwd inside SFS prints the full self-certifying pathname.
    proc.chdir(f"{path}/home/alice")
    print(f"pwd:              {proc.getcwd()}")

    # Another local user without credentials gets anonymous access only.
    mallory = client.process(uid=6666)
    try:
        mallory.write_file(f"{path}/home/alice/evil.txt", b"hax")
        raise SystemExit("BUG: anonymous write succeeded")
    except OSError as exc:
        print(f"anonymous write:  denied ({exc.strerror})")


if __name__ == "__main__":
    main()
