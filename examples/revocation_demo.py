#!/usr/bin/env python3
"""Key revocation and HostID blocking (paper section 2.6).

Demonstrates all three mechanisms:

1. a *revocation certificate* served by the (compromised) server itself,
2. a revocation directory checked by the user's agent (the Verisign
   "all of the above" pattern), and
3. per-user *HostID blocking*, which needs no certificate at all.

Plus the recovery path: a *forwarding pointer* redirecting an old
pathname to a new one, and the rule that a revocation always overrules
a forwarding pointer.
"""

from repro import World
from repro.core import revocation
from repro.fs import pathops
from repro.keymgmt import CertificationAuthority, set_revocation_directories
from repro.keymgmt.manual import install_link


def main() -> None:
    world = World()

    # --- 1. server-announced revocation ---------------------------------
    server = world.add_server("compromised.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"old contents")
    key = server.master.rw_export(path.hostid).key

    cert = revocation.make_revocation_certificate(
        key, "compromised.example.com"
    )
    server.master.set_revocation(path.hostid, cert)
    print(f"owner revoked {path.mount_name[:40]}...")

    client = world.add_client("c1")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    try:
        proc.read_file(f"{path}/data")
        raise SystemExit("BUG: revoked path readable")
    except OSError:
        link = proc.readlink(f"/sfs/{path.mount_name}")
        print(f"revoked path is now a symlink to {link!r}")

    # --- 2. revocation directories via a CA ------------------------------
    world2 = World(seed=99)
    victim = world2.add_server("victim.example.org")
    victim_path = victim.export_fs()
    victim_key = victim.master.rw_export(victim_path.hostid).key

    ca = CertificationAuthority("revoker.net", world2.rng)
    cert2 = revocation.make_revocation_certificate(
        victim_key, "victim.example.org"
    )
    # Anyone may submit: the certificate authenticates itself.
    where = ca.publish_revocation(cert2)
    print(f"revocation filed at {where} (submitter identity irrelevant)")

    mirror = world2.add_server("ca-mirror.net")
    ca_path = mirror.master.add_ro_export(ca.publish_image())
    world2.route("revoker.net", mirror)
    c2 = world2.add_client("c2")
    install_link(c2.root_process(), "/revoker", ca_path)
    agent = c2.new_agent("user", 1000)
    set_revocation_directories(agent, ["/revoker/revocations"])
    proc2 = c2.process(uid=1000)
    try:
        proc2.readdir(str(victim_path))
        raise SystemExit("BUG: agent ignored the revocation directory")
    except OSError:
        print("agent found the certificate and refused the mount")

    # --- 3. per-user HostID blocking ---------------------------------------
    innocent = world2.add_server("fine.example.org")
    fine_path = innocent.export_fs()
    pathops.write_file(innocent.fs, "/hello", b"hi")
    paranoid = c2.new_agent("paranoid", 2000)
    paranoid.block_hostid(fine_path.hostid)
    blocked_proc = c2.process(uid=2000)
    try:
        blocked_proc.read_file(f"{fine_path}/hello")
        raise SystemExit("BUG: blocked HostID accessible")
    except OSError:
        print("paranoid user blocked the HostID for themselves...")
    other = c2.new_agent("other", 3000)
    other_proc = c2.process(uid=3000)
    print(f"...but another user still reads: "
          f"{other_proc.read_file(f'{fine_path}/hello')!r}")

    # --- 4. forwarding pointers -------------------------------------------
    world3 = World(seed=123)
    old = world3.add_server("old-name.com")
    old_path = old.export_fs()
    new = world3.add_server("new-name.com")
    new_path = new.export_fs()
    pathops.write_file(new.fs, "/moved", b"we moved!")
    old_key = old.master.rw_export(old_path.hostid).key
    pointer = revocation.make_forwarding_pointer(
        old_key, "old-name.com", str(new_path)
    )
    old.master.set_forwarding_pointer(old_path.hostid, pointer)
    c3 = world3.add_client("c3")
    c3.new_agent("user", 1000)
    proc3 = c3.process(uid=1000)
    print(f"old name follows pointer: "
          f"{proc3.read_file(f'{old_path}/moved')!r}")


if __name__ == "__main__":
    main()
