#!/usr/bin/env python3
"""The read-only dialect: signed file systems on untrusted mirrors.

A software vendor publishes a release tree, signing it offline.  Mirrors
— including ones the vendor has never heard of — serve the image.  A
tampering mirror is caught by the client on the first corrupted byte,
because every block is verified against the signed Merkle root.
"""

from repro import World
from repro.core.readonly import publish
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs


def main() -> None:
    world = World()

    # --- the vendor, offline ---------------------------------------------
    vendor_key = generate_key(768, world.rng)
    release = MemFs()
    pathops.write_file(release, "/v1.0/sfs.tar", b"\x1f\x8b" + b"S" * 20000)
    pathops.write_file(release, "/v1.0/CHECKSUMS", b"(self-verifying!)\n")
    pathops.symlink(release, "/latest", "v1.0")
    image = publish(release, vendor_key, "releases.example.org")
    print(f"published {len(image.store)} signed blobs; "
          f"root serial {image.serial}")
    print("the private key now goes back in the safe - servers never see it")

    # --- honest mirror: DNS points the release name at a volunteer box --
    mirror = world.add_server("mirror-7.volunteer.net")
    ro_path = mirror.master.add_ro_export(image.replicate())
    world.route("releases.example.org", mirror)
    client = world.add_client("downloader")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    tar = proc.read_file(f"{ro_path}/latest/sfs.tar")
    print(f"downloaded {len(tar)} bytes through /latest symlink, verified")

    # --- malicious mirror: an attacker hijacks the DNS name ----------------
    evil_image = image.replicate()
    # Corrupt the largest blob (the tarball) in the mirror's store.
    biggest = max(evil_image.store, key=lambda d: len(evil_image.store[d]))
    blob = bytearray(evil_image.store[biggest])
    blob[100] ^= 0xFF
    evil_image.store[biggest] = bytes(blob)
    evil = world.add_server("evil-mirror.net")
    evil.master.add_ro_export(evil_image)
    world.route("releases.example.org", evil)

    client2 = world.add_client("downloader2")
    client2.new_agent("user", 1000)
    proc2 = client2.process(uid=1000)
    try:
        proc2.read_file(f"{ro_path}/latest/sfs.tar")
        raise SystemExit("BUG: tampered download accepted")
    except OSError:
        print("tampered mirror detected: blob failed its digest check")
        print("(controlling DNS gains the attacker nothing)")


if __name__ == "__main__":
    main()
