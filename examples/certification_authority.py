#!/usr/bin/env python3
"""Certification authorities as file systems (paper section 2.4).

A CA in SFS is "nothing more than an ordinary file system serving
symbolic links" — served with the read-only dialect so its contents are
proven by signatures precomputed offline, it keeps no online private
key, and untrusted mirrors can serve it.

This example builds "Verisign" as an SFS CA, certifies two companies,
installs the CA on a client, and resolves human-readable names through
it — including via the agent's certification path, so users can type
``/sfs/acme`` and land on the right HostID.
"""

from repro import World
from repro.fs import pathops
from repro.keymgmt import (
    CertificationAuthority,
    install_link,
    set_certification_path,
)


def main() -> None:
    world = World()

    # Two companies run SFS servers.
    acme = world.add_server("acme.com")
    acme_path = acme.export_fs()
    pathops.write_file(acme.fs, "/catalog", b"ACME: anvils, rockets\n")

    initech = world.add_server("initech.com")
    initech_path = initech.export_fs()
    pathops.write_file(initech.fs, "/catalog", b"Initech: TPS reports\n")

    # Verisign certifies them: just symlinks in a file system.
    verisign = CertificationAuthority("verisign.com", world.rng)
    verisign.certify("acme", acme_path)
    verisign.certify("initech", initech_path)

    # Publication signs the tree ONCE, offline.  The image can then be
    # served by anyone -- including machines Verisign does not trust:
    # verisign.com's DNS simply points at the mirror box.
    image = verisign.publish_image()
    mirror_host = world.add_server("mirror.example.net")
    ca_path = mirror_host.master.add_ro_export(image.replicate())
    world.route("verisign.com", mirror_host)
    print(f"CA published:   {ca_path}")
    print(f"  (served from an untrusted mirror; contents are signed)")

    # Client administrators install one link to the CA...
    client = world.add_client("desktop")
    install_link(client.root_process(), "/verisign", ca_path)
    agent = client.new_agent("bob", uid=1000)
    proc = client.process(uid=1000)

    # ...and users browse by human-readable name.
    print(f"/verisign ->    {proc.readdir('/verisign')}")
    print(f"acme catalog:   {proc.read_file('/verisign/acme/catalog')!r}")

    # With /verisign on bob's certification path, even bare names under
    # /sfs resolve through the CA: the agent manufactures the symlink.
    set_certification_path(agent, ["/verisign"])
    print(f"via /sfs/acme:  {proc.read_file('/sfs/acme/catalog')!r}")
    print(f"/sfs for bob:   {proc.readdir('/sfs')}")

    # The CA's "interactive queries" property: decertify + republish and
    # new lookups stop resolving (no certificate lifetime to wait out).
    verisign.decertify("initech")
    image2 = verisign.publish_image()
    print(f"initech decertified; republished serial {image2.serial}")


if __name__ == "__main__":
    main()
