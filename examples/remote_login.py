#!/usr/bin/env python3
"""Remote login with proxy agents (paper section 2.5.1).

"Proxy agents could forward authentication requests to other SFS agents.
We hope to build a remote login utility similar to ssh that acts as a
proxy SFS agent.  That way, users can automatically access their files
when logging in to a remote machine."

Alice ssh-es from her laptop to a lab workstation.  Her private keys
never leave the laptop: the workstation's client master forwards signing
requests back over the (simulated) ssh channel, and her home agent keeps
a full audit trail of every key operation, including the machine path
each request travelled.

We also show the split-key variant: the agent itself holds only half the
key, with an online key-half server holding the other half — stealing
either machine alone reveals nothing.
"""

from repro import World
from repro.core.agentproxy import AgentServer, RemoteAgent
from repro.core.splitkey import KeyHalfServer, SplitKeyAgent, SplitKeyPair
from repro.fs import Cred, pathops
from repro.rpc.peer import RpcPeer
from repro.sim.network import link_pair


def main() -> None:
    world = World()

    # Alice's files live on the department server.
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)

    # Her laptop runs her agent, which holds the private key.
    laptop = world.add_client("laptop")
    home_agent = laptop.new_agent("alice", 1000)
    home_agent.add_key(alice.key)

    # "ssh workstation": an RPC channel from the workstation back to the
    # laptop's agent — the ssh agent-forwarding channel.
    agent_end, workstation_end = link_pair(world.clock)
    AgentServer(home_agent, RpcPeer(agent_end, "laptop-agentd"))
    proxy = RemoteAgent(RpcPeer(workstation_end, "sshd"),
                        "alice", hop="workstation.lab.example.org")

    workstation = world.add_client("workstation")
    workstation.sfscd.attach_agent(1000, proxy)
    shell = workstation.process(uid=1000)

    # Alice's files appear on the workstation with no keys copied there.
    shell.write_file(f"{path}/home/alice/lab-notes", b"from the lab\n")
    print("wrote from the workstation:",
          shell.read_file(f"{path}/home/alice/lab-notes"))
    print("file owner uid:", shell.stat(f"{path}/home/alice/lab-notes").uid)

    # The laptop's audit trail recorded the proxied signature + its path.
    for entry in home_agent.audit_log:
        print(f"audit: {entry.operation}: {entry.detail}")

    # --- split keys: the agent does not even hold a whole key ----------
    bob = server.add_user("bob", uid=2000)
    bob_home = pathops.mkdirs(server.fs, "/home/bob")
    server.fs.setattr(bob_home.ino, Cred(0, 0), uid=2000, gid=100)

    pair = SplitKeyPair.split(bob.key, world.rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    split_agent = SplitKeyAgent("bob", pair.agent_share, half_server)
    laptop.sfscd.attach_agent(2000, split_agent)
    bob_shell = laptop.process(uid=2000)
    bob_shell.write_file(f"{path}/home/bob/secure", b"signed by half a key")
    print("split-key write ok; half-server requests:", half_server.requests)

    # Revoking the server half instantly disables the agent share.
    half_server.drop(pair.agent_share)
    laptop.sfscd.detach_agent(2000)
    laptop.sfscd.attach_agent(2000, split_agent)
    try:
        c2 = world.add_client("second-machine")
        c2.sfscd.attach_agent(2000, split_agent)
        c2.process(uid=2000).write_file(f"{path}/home/bob/more", b"x")
        print("NOTE: anonymous fallback prevented the write:")
    except OSError as exc:
        print(f"after key-half revocation: {exc.strerror}")


if __name__ == "__main__":
    main()
