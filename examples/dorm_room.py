#!/usr/bin/env python3
"""The egalitarian namespace: a file server in a dorm room.

"Though SFS gives every file the same name on every client, no one
controls the global namespace; everyone has the right to add a new
server to this namespace. ... anyone with an Internet address or domain
name should be able to create a new file server without consulting or
registering with any authority."  (paper sections 2.1.3, 2.2)

Bob sets up an SFS server on his dorm machine in three steps — generate
a key, export a directory, done — and mails the resulting pathname to a
friend at another university.  The friend pastes the path; cryptography
does the rest.  No admin at either school was involved, and Verisign
never heard about any of it.
"""

from repro import World
from repro.fs import Cred, pathops
from repro.keymgmt import bookmark, cd_bookmark


def main() -> None:
    world = World()

    # --- Bob's dorm machine --------------------------------------------
    # Step 1-3: key pair, export, (the daemon would now be running).
    dorm = world.add_server("bobs-pc.dorm.university.edu")
    path = dorm.export_fs()
    bob = dorm.add_user("bob", uid=1000)
    pub = pathops.mkdirs(dorm.fs, "/pub")
    dorm.fs.setattr(pub.ino, Cred(0, 0), uid=1000, gid=100)
    pathops.write_file(dorm.fs, "/pub/mixtape.txt",
                       b"01. self-certifying pathnames (extended mix)\n")
    dorm.fs.setattr(
        pathops.resolve(dorm.fs, "/pub/mixtape.txt").ino,
        Cred(0, 0), uid=1000,
    )
    print("bob's server is up; nobody was asked for permission")
    print(f"the e-mail he sends:  'check out {path}/pub'")

    # --- a friend at another school --------------------------------------
    friend_machine = world.add_client("friend-laptop.other.edu")
    friend_machine.new_agent("pat", uid=5000)  # no account on bob's box
    pat = friend_machine.process(uid=5000)

    # Paste the pathname from the e-mail.  Anonymous access suffices for
    # bob's world-readable /pub.
    mixtape = pat.read_file(f"{path}/pub/mixtape.txt")
    print(f"pat reads: {mixtape!r}")

    # pwd shows the full self-certifying pathname; bookmark it.
    root = friend_machine.root_process()
    root.makedirs("/home/u5000")
    root.chown("/home/u5000", 5000, 100)
    pat.chdir(f"{path}/pub")
    print("pat's pwd:", pat.getcwd())
    link = bookmark(pat)
    print("bookmarked as:", link)

    # Days later: "cd bobs-pc.dorm.university.edu" goes straight back,
    # still authenticated by the HostID inside the bookmark.
    pat.chdir("/")
    cwd = cd_bookmark(pat, "bobs-pc.dorm.university.edu")
    print("cd via bookmark ->", cwd)

    # Bob, meanwhile, can use his OWN account remotely with full rights,
    # because servers authenticate users, not machines.
    bob_at_library = world.add_client("library-kiosk")
    bob_proc = bob_at_library.login_user("bob", bob.key, uid=1000)
    bob_proc.write_file(f"{path}/pub/news.txt", b"track 2 coming soon\n")
    print("bob updates his server from the library:",
          pat.read_file(f"{path}/pub/news.txt"))


if __name__ == "__main__":
    main()
