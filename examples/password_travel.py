#!/usr/bin/env python3
"""The travelling-user scenario from the paper (section 2.4).

"Suppose a user from MIT travels to a research laboratory and wishes to
access files back at MIT.  The user runs the command
`sfskey add alice@sfs.lcs.mit.edu`.  The command prompts him for a
single password.  He types it, and the command completes successfully.
... The process involves no system administrators, no certification
authorities, and no need for this user to have to think about anything
like public keys or self-certifying pathnames."

Under the hood: SRP negotiates a strong session key from the weak
password without exposing it to off-line guessing; the server's
self-certifying pathname and alice's eksblowfish-encrypted private key
come back over that channel; the agent loads the key and drops a
``sfs.lcs.mit.edu`` symlink into /sfs.
"""

from repro import World
from repro.core import sfskey
from repro.fs import Cred, pathops


def main() -> None:
    world = World()

    # --- at MIT: the server and alice's enrolment -----------------------
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    home = pathops.mkdirs(server.fs, "/home/alice")
    pathops.write_file(server.fs, "/home/alice/thesis.tex",
                       b"\\chapter{Self-certifying pathnames}")
    server.authserver._unix_passwords["alice"] = "alices-unix-pw"

    enrolment = sfskey.prepare_enrolment(
        "alice", b"correct horse battery staple", world.rng
    )
    sfskey.register(world.connector, "sfs.lcs.mit.edu", enrolment,
                    "alices-unix-pw", world.rng)
    record = server.authserver.local_db.lookup_user("alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=record.uid, gid=100)
    print(f"alice enrolled at MIT with uid {record.uid}")
    print("the server stores only: SRP verifier + encrypted private key")

    # --- at the research lab: one password, nothing else ----------------
    lab_machine = world.add_client("lab-machine")
    agent = lab_machine.new_agent("alice", record.uid)
    result = sfskey.add(
        world.connector, agent, "alice", "sfs.lcs.mit.edu",
        b"correct horse battery staple", world.rng,
    )
    print(f"sfskey add -> {result.pathname}")
    print(f"agent now holds {agent.key_count} private key(s)")

    # Alice types the friendly name; the agent's symlink redirects to
    # the self-certifying pathname, and her downloaded key logs her in.
    proc = lab_machine.process(uid=record.uid)
    thesis = proc.read_file("/sfs/sfs.lcs.mit.edu/home/alice/thesis.tex")
    print(f"read via friendly name: {thesis!r}")

    # The wrong password gets nothing -- and learns nothing usable for
    # an off-line guessing attack.
    eve_agent = lab_machine.new_agent("eve", 6000)
    try:
        sfskey.add(world.connector, eve_agent, "alice", "sfs.lcs.mit.edu",
                   b"12345", world.rng)
        raise SystemExit("BUG: wrong password accepted")
    except sfskey.SfsKeyError as exc:
        print(f"wrong password: {exc}")


if __name__ == "__main__":
    main()
