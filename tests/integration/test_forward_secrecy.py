"""Forward secrecy (paper sections 2.1.2 and 2.4).

"SFS never relies on long-lived encryption keys for secrecy, only for
authentication.  In particular, an attacker who compromises a file
server and obtains its private key can begin impersonating the server,
but he cannot decrypt previously recorded network transmissions."

This test plays the attacker with full hindsight: a complete wire
transcript AND the server's long-lived private key.  The attacker can
open the client's key-half ciphertext (it was encrypted to the server
key) — but the server's halves went to the client's *ephemeral* key,
which no longer exists, so the session keys, and with them the recorded
file data, stay out of reach.
"""

import pytest

from repro.core import proto
from repro.core.keyneg import KEY_HALF_LEN
from repro.crypto.rabin import RabinError
from repro.fs import pathops
from repro.kernel.world import World
from repro.rpc.rpcmsg import parse_message
from repro.rpc.xdr import XdrError
from repro.sim.network import RecordingAdversary

SECRET = b"the forward-secret file contents nobody should ever recover"


@pytest.fixture
def compromise():
    """Run a session under a recorder, then 'steal' the server key."""
    world = World(seed=171)
    server = world.add_server("fsec.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/secret", SECRET)
    recorder = RecordingAdversary()
    world.adversary_factory = lambda: recorder
    client = world.add_client("victim")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/secret") == SECRET
    stolen_key = server.master.rw_export(path.hostid).key  # the breach
    return recorder.transcript, stolen_key


def _parse_calls(transcript):
    """Yield (direction, parsed-or-None, raw) for each record."""
    for direction, raw in transcript:
        try:
            yield direction, parse_message(raw), raw
        except (XdrError, Exception):
            yield direction, None, raw


def test_stolen_server_key_opens_client_halves_only(compromise):
    transcript, stolen_key = compromise
    client_halves = None
    server_half_ciphertext = None
    for direction, message, _raw in _parse_calls(transcript):
        if message is None or message.call is None:
            # Replies: find the ENCRYPT reply body by brute scan below.
            continue
        if (message.call.prog == proto.SFS_CONNECT_PROGRAM
                and message.call.proc == proto.PROC_ENCRYPT):
            args = proto.EncryptArgs.unpack(message.body)
            # The attacker CAN decrypt this: it was sealed to the stolen
            # long-lived key.
            plain = stolen_key.decrypt(args.encrypted_keyhalves)
            assert len(plain) == 2 * KEY_HALF_LEN
            client_halves = plain
            ephemeral_pub_bytes = args.client_pubkey
    assert client_halves is not None, "transcript must contain ENCRYPT"
    # The server's halves, by contrast, were encrypted to the client's
    # ephemeral key — the stolen key opens nothing in the reply.
    for direction, message, _raw in _parse_calls(transcript):
        if message is None or message.reply is None or not message.body:
            continue
        try:
            reply = proto.EncryptRes.unpack(message.body)
        except XdrError:
            continue
        with pytest.raises(RabinError):
            stolen_key.decrypt(reply.encrypted_keyhalves)


def test_recorded_payloads_stay_opaque(compromise):
    """Even knowing kc1/kc2, the session keys need ks1/ks2: the secret
    never appears in any decryption the attacker can perform."""
    transcript, stolen_key = compromise
    # Exhaustive check: the secret is in no record, and no record
    # decrypts under any key material derivable from the stolen key.
    wire = b"".join(raw for _d, raw in transcript)
    assert SECRET not in wire
    # The attacker's best effort: decrypt everything decryptable with
    # the stolen key and look for the secret there too.
    recovered = []
    for _direction, message, _raw in _parse_calls(transcript):
        if message is None:
            continue
        body = message.body
        if not body:
            continue
        try:
            recovered.append(stolen_key.decrypt(body[: stolen_key.public_key.size]))
        except (RabinError, Exception):
            pass
    assert all(SECRET not in blob for blob in recovered)


def test_impersonation_is_possible_secrecy_is_not(compromise):
    """The flip side the paper states: the thief CAN impersonate the
    server going forward (authentication relies on the long-lived key),
    which is what revocation certificates exist to stop."""
    from repro.core.authserv import AuthServer
    from repro.fs.memfs import MemFs

    transcript, stolen_key = compromise
    world = World(seed=172)
    evil = world.add_server("fsec.example.com")
    evil_auth = AuthServer(world.rng)

    fake_fs = MemFs()
    pathops.write_file(fake_fs, "/secret", b"attacker-controlled data")
    evil_path = evil.master.add_rw_export(stolen_key, fake_fs, evil_auth)
    client = world.add_client("new-victim")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    # The HostID matches (same key, same location): the mount succeeds.
    assert proc.read_file(f"{evil_path}/secret") == b"attacker-controlled data"
