"""Integration tests for libsfs, ssu, and proxy agents (paper sections
2.3, 2.5.1, 3.3)."""

import pytest

from repro.core.agentproxy import AgentServer, RemoteAgent
from repro.core.libsfs import LibSfs, LocalAccounts
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.world import World
from repro.rpc.peer import RpcPeer
from repro.sim.network import link_pair


@pytest.fixture
def world():
    return World(seed=71)


def make_standard(world):
    server = world.add_server("srv.example.com")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    return server, path, alice, client, proc


# --- libsfs -------------------------------------------------------------------

def test_libsfs_same_name_omits_percent(world):
    server, path, alice, client, proc = make_standard(world)
    proc.write_file(f"{path}/home/alice/f", b"x")
    mount = client.sfscd._mounts[path.hostid]
    local = LocalAccounts(users={1000: "alice"})
    libsfs = LibSfs(mount, local)
    st = proc.stat(f"{path}/home/alice/f")
    # Same name both sides: plain "alice".
    assert libsfs.display_user(st.uid) == "alice"
    assert libsfs.display_group(st.gid) == "users"


def test_libsfs_differing_name_gets_percent(world):
    server, path, alice, client, proc = make_standard(world)
    proc.write_file(f"{path}/home/alice/f", b"x")
    mount = client.sfscd._mounts[path.hostid]
    # Locally uid 1000 is "al" — remotely it is "alice".
    libsfs = LibSfs(mount, LocalAccounts(users={1000: "al"}))
    assert libsfs.display_user(1000) == "%alice"


def test_libsfs_unknown_id_shows_number(world):
    server, path, alice, client, proc = make_standard(world)
    proc.readdir(str(path))
    mount = client.sfscd._mounts[path.hostid]
    libsfs = LibSfs(mount, LocalAccounts())
    assert libsfs.display_user(54321) == "54321"


def test_libsfs_name_to_id(world):
    server, path, alice, client, proc = make_standard(world)
    proc.readdir(str(path))
    mount = client.sfscd._mounts[path.hostid]
    libsfs = LibSfs(mount, LocalAccounts())
    assert libsfs.remote_name_to_id("alice") == 1000
    assert libsfs.remote_name_to_id("users", is_group=True) == 100
    assert libsfs.remote_name_to_id("nobody-here") is None


def test_libsfs_caches_queries(world):
    server, path, alice, client, proc = make_standard(world)
    proc.readdir(str(path))
    mount = client.sfscd._mounts[path.hostid]
    libsfs = LibSfs(mount, LocalAccounts())
    before = mount.session.peer.calls_sent
    libsfs.display_user(1000)
    after_first = mount.session.peer.calls_sent
    libsfs.display_user(1000)
    assert mount.session.peer.calls_sent == after_first > before


# --- ssu -----------------------------------------------------------------------

def test_ssu_maps_root_to_user_agent(world):
    server, path, alice, client, proc = make_standard(world)
    root = client.ssu(1000)
    # Operations as local root authenticate as alice remotely.
    root.write_file(f"{path}/home/alice/by-root", b"x")
    assert proc.stat(f"{path}/home/alice/by-root").uid == 1000


def test_ssu_requires_existing_agent(world):
    make_standard(world)
    client = world.clients["laptop"]
    with pytest.raises(KeyError):
        client.ssu(4242)


# --- proxy agents ------------------------------------------------------------------

def test_agent_over_rpc(world):
    """An agent served over RPC behaves exactly like a local one."""
    server, path, alice, client, proc = make_standard(world)
    home_agent = client.sfscd.agents[1000]
    # Run the agent behind an RPC boundary.
    agent_side, client_side = link_pair(world.clock)
    AgentServer(home_agent, RpcPeer(agent_side, "agent-proc"))
    remote = RemoteAgent(RpcPeer(client_side, "sfscd-side"),
                         "alice", hop="laptop")
    blob = remote.sign_request(b"authinfo", 1)
    from repro.core import proto
    msg = proto.AuthMsg.unpack(blob)
    assert msg.public_key == alice.key.public_key.to_bytes()
    home_agent.add_link("mit", "/sfs/somewhere")
    assert remote.resolve("mit") == "/sfs/somewhere"
    assert remote.resolve("nothing") is None
    disc, _cert = remote.check_revoked("srv.example.com", path.hostid)
    assert disc == proto.REVCHECK_CLEAR


def test_proxy_agent_remote_login(world):
    """The ssh scenario: alice logs into a remote workstation; the
    workstation's client master forwards authentication requests to her
    home agent, so her files are available there with no keys copied."""
    server, path, alice, home_client, _proc = make_standard(world)
    home_agent = home_client.sfscd.agents[1000]

    # The "ssh connection": an RPC link from the workstation back to
    # alice's home agent.
    agent_side, workstation_side = link_pair(world.clock)
    AgentServer(home_agent, RpcPeer(agent_side, "home-agent"))
    proxy = RemoteAgent(RpcPeer(workstation_side, "ssh-fwd"),
                        "alice", hop="workstation.lab.org")

    workstation = world.add_client("workstation")
    workstation.sfscd.attach_agent(1000, proxy)
    proc = workstation.process(uid=1000)
    proc.write_file(f"{path}/home/alice/from-the-lab", b"remote login!")
    assert proc.stat(f"{path}/home/alice/from-the-lab").uid == 1000
    # The home agent audited the proxied request with its hop path.
    proxied = [e for e in home_agent.audit_log if e.operation == "proxy"]
    assert proxied and "workstation.lab.org" in proxied[-1].detail


def test_chained_proxy_agents(world):
    """Two hops: laptop -> gateway -> workstation; the audit trail
    records the full path."""
    server, path, alice, home_client, _proc = make_standard(world)
    home_agent = home_client.sfscd.agents[1000]
    hop1_a, hop1_b = link_pair(world.clock)
    AgentServer(home_agent, RpcPeer(hop1_a, "home"))
    gateway_proxy = RemoteAgent(RpcPeer(hop1_b, "gw"), "alice",
                                hop="gateway.example.org")
    # The gateway re-serves the proxy it holds.
    hop2_a, hop2_b = link_pair(world.clock)
    gateway_server_peer = RpcPeer(hop2_a, "gateway-agentd")
    # Re-serve: wrap the proxy in an AgentServer-compatible shim by
    # serving a local Agent whose sign_request delegates.
    from repro.core import proto as _proto
    from repro.rpc.peer import Program

    program = Program("sfs-agent", _proto.SFS_AGENT_PROGRAM,
                      _proto.SFS_VERSION)

    def forward_sign(args, ctx):
        try:
            blob = gateway_proxy.sign_request(
                args.authinfo_bytes, args.seqno, args.key_index
            )
        except Exception:
            return _proto.SIGN_REFUSED, None
        return _proto.SIGN_OK, blob

    program.add_proc(_proto.PROC_SIGNREQ, "SIGNREQ",
                     _proto.SignReqArgs, _proto.SignReqRes, forward_sign)
    gateway_server_peer.register(program)
    final_proxy = RemoteAgent(RpcPeer(hop2_b, "ws"), "alice",
                              hop="workstation.far.org",
                              via=["gateway.example.org"])
    blob = final_proxy.sign_request(b"info", 1)
    assert blob  # signature produced by the home agent two hops away
