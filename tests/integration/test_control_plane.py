"""Integration: the fleet control plane inside a real World.

These tests exercise the whole adoption path — per-machine tee
registries, heartbeat liveness through crash/restart, the daemon loop
on the virtual clock — and the headline closed-loop claim: with the
control plane steering admission and offered load, the same overloaded
fleet run finishes with both a lower fleet p99 and fewer busy-rejects
than the open-loop baseline.
"""

import pytest

from repro.control.bench import ControlBenchConfig, run_control_comparison
from repro.kernel.world import World
from repro.sim.sched import Sleep


def make_world():
    return World(seed=7)


# -- adoption and tee registries --------------------------------------------


def test_machines_added_after_enable_control_get_per_source_registries():
    world = make_world()
    world.enable_control(start=False)
    s1 = world.add_server("alpha.example.com")
    s2 = world.add_server("beta.example.com")
    # Writes through the machine's metrics handle land in BOTH views.
    s1.metrics.counter("demo.ops").inc(3)
    s2.metrics.counter("demo.ops").inc(4)
    assert world.metrics.counter("demo.ops").value == 7   # fleet total
    assert s1.registry.counter("demo.ops").value == 3     # per-source
    assert s2.registry.counter("demo.ops").value == 4
    world.clock.advance(0.01)
    merged = world.control.collector.tick()
    sources = world.control.collector.sources
    assert sources["alpha.example.com"].latest["metrics"]["demo.ops"] == 3
    assert sources["beta.example.com"].latest["metrics"]["demo.ops"] == 4
    assert merged["metrics"]["demo.ops"] == 7


def test_machines_created_before_enable_control_are_still_adopted():
    world = make_world()
    world.add_server("early.example.com")
    world.enable_control(start=False)
    assert "early.example.com" in world.control.collector.sources
    world.clock.advance(0.01)
    world.control.collector.tick()
    # Pre-existing machines heartbeat (liveness) even though their
    # instruments were already bound to the world registry.
    assert world.control.collector.states()["early.example.com"] == "live"


def test_server_instruments_tee_through_to_the_collector():
    world = make_world()
    world.enable_control(start=False)
    server = world.add_server("files.example.com")
    server.export_fs()
    queue = server.enable_queueing(max_depth=2, workers=1,
                                   service_time=0.001)
    conn = object()
    for _ in range(4):                        # 2 admitted + 2 rejected
        queue.submit(conn, lambda: None)
    world.clock.advance(0.01)
    world.control.collector.tick()
    per_source = world.control.collector.sources[
        "files.example.com"].latest["metrics"]
    assert per_source["server.queue.rejected"] == 2
    assert world.metrics.counter("server.queue.rejected").value == 2


# -- heartbeat liveness -----------------------------------------------------


def test_crash_marks_source_stale_then_dead_and_restart_revives():
    world = make_world()
    world.enable_control(start=False, stale_after=1, dead_after=3)
    server = world.add_server("flaky.example.com")
    collector = world.control.collector

    def tick():
        world.clock.advance(0.01)
        collector.tick()
        return collector.states()["flaky.example.com"]

    assert tick() == "live"
    server.crash()
    assert tick() == "stale"                  # down master misses beats
    assert tick() == "stale"
    assert tick() == "dead"
    server.restart()
    assert tick() == "live"                   # one good beat revives it


def test_clients_heartbeat_too():
    world = make_world()
    world.enable_control(start=False)
    world.add_server("srv.example.com").export_fs()
    world.add_client("laptop")
    world.clock.advance(0.01)
    world.control.collector.tick()
    states = world.control.collector.states()
    assert states == {"laptop": "live", "srv.example.com": "live"}
    assert world.control.collector.sources["laptop"].kind == "client"


# -- the daemon loop --------------------------------------------------------


def test_control_daemon_ticks_on_the_virtual_clock():
    world = make_world()
    world.enable_control(period=0.010)        # start=True spawns the daemon
    scheduler = world.enable_concurrency()

    def workload():
        yield Sleep(0.1)

    scheduler.spawn(workload(), name="workload")
    scheduler.run()
    # ~10 periods elapsed; the daemon ticked once per period.
    assert 8 <= world.control.collector.ticks <= 12


def test_enable_control_is_idempotent():
    world = make_world()
    plane = world.enable_control(start=False)
    assert world.enable_control(start=False) is plane


# -- the closed loop --------------------------------------------------------


@pytest.fixture(scope="module")
def comparison():
    config = ControlBenchConfig(ops_per_client=10, max_depth=4,
                                hot_clients=12, hot_factor=6.0, seed=2026)
    return run_control_comparison(config)


def test_closed_loop_beats_open_loop_on_latency_and_rejects(comparison):
    baseline, managed, _artifact = comparison
    assert managed.op_errors == 0
    assert managed.unfinished_tasks == 0
    # The managed run completes every op; the baseline may drop some.
    assert managed.ops_completed == 16 * 10
    assert managed.ops_completed >= baseline.ops_completed
    assert managed.p99 < baseline.p99
    assert managed.busy_rejects < baseline.busy_rejects
    assert managed.policy_actions > 0


def test_policy_saturates_on_the_hot_shard(comparison):
    baseline, managed, artifact = comparison
    hot = managed.hot_shard
    # Per-shard registries attribute rejects: the hot shard dominates
    # the open-loop baseline, and the AIMD actuator grew its depth.
    baseline_hot = next(s for s in baseline.shards if s.location == hot)
    managed_hot = next(s for s in managed.shards if s.location == hot)
    assert baseline_hot.busy_rejects == max(
        s.busy_rejects for s in baseline.shards)
    assert managed_hot.final_max_depth > 4    # grew from the configured 4
    assert managed_hot.busy_rejects < baseline_hot.busy_rejects
    # The artifact ships the full control story.
    assert artifact["actions"], "policy action log must not be empty"
    assert artifact["collector"]["merged"] is not None
    assert set(artifact["summary"]) == {"config", "baseline", "managed"}


def test_comparison_is_deterministic_per_seed():
    config = ControlBenchConfig(ops_per_client=6, max_depth=4,
                                hot_clients=10, hot_factor=4.0, seed=31337)
    first_baseline, first_managed, _ = run_control_comparison(config)
    second_baseline, second_managed, _ = run_control_comparison(config)
    assert first_baseline.latencies == second_baseline.latencies
    assert first_managed.latencies == second_managed.latencies
    assert first_managed.busy_rejects == second_managed.busy_rejects
