"""Failure injection: crashed daemons, dead servers, takeover (paper
section 3.3: "The NFS mounter makes it difficult to lock up an SFS
client — even when developing buggy daemons")."""

import errno

import pytest

from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World


@pytest.fixture
def setup():
    world = World(seed=81)
    server = world.add_server("srv.example.com")
    path = server.export_fs()
    work = pathops.mkdirs(server.fs, "/w")
    server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    return world, server, path, client, proc


def test_takeover_of_crashed_subordinate_daemon(setup):
    """nfsmounter takes over a dead daemon's mount; the rest of the
    system (other mounts, the local fs) keeps working."""
    world, server, path, client, proc = setup
    proc.write_file(f"{path}/w/file", b"before the crash")
    mount_path = f"/sfs/{path.mount_name}"
    assert client.mounter.takeover(mount_path)
    # The defunct mount is gone; access now raises cleanly, not hangs.
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/w/file")
    # Local file system is unaffected.
    root = client.root_process()
    root.write_file("/local-still-works", b"yes")
    assert root.read_file("/local-still-works") == b"yes"


def test_other_mounts_survive_one_crash(setup):
    world, server, path, client, proc = setup
    other = world.add_server("other.example.com")
    other_path = other.export_fs()
    pathops.write_file(other.fs, "/alive", b"independent")
    proc.write_file(f"{path}/w/f", b"x")
    assert proc.read_file(f"{other_path}/alive") == b"independent"
    client.mounter.takeover(f"/sfs/{path.mount_name}")
    # "Using multiple mount points also prevents one slow server from
    # affecting the performance of other servers."
    assert proc.read_file(f"{other_path}/alive") == b"independent"


def test_server_vanishes_mid_session(setup):
    """Dead links to a *live* server are redialed transparently; a
    server that is truly gone produces I/O errors, not hangs or wrong
    data."""
    world, server, path, client, proc = setup
    proc.write_file(f"{path}/w/f", b"x")
    # Only the links die: the session's reconnect engine redials the
    # still-running server, re-verifies the HostID, and replays.
    for link in world.links:
        link.close()
    proc.write_file(f"{path}/w/g", b"y")
    assert proc.read_file(f"{path}/w/g") == b"y"
    session = client.sfscd._mounts[path.hostid].session
    assert session.reconnects == 1
    # Now the host itself disappears: every redial is refused, the
    # backoff budget runs out, and the caller gets a clean EIO.
    del world.servers[path.location]
    for link in world.links:
        link.close()
    with pytest.raises(KernelError) as excinfo:
        proc.write_file(f"{path}/w/h", b"z")
    assert excinfo.value.errno == errno.EIO


def test_remount_after_takeover(setup):
    """After a takeover, a *new* client session can mount the same
    pathname again (the server is fine; only the daemon died)."""
    world, server, path, client, proc = setup
    proc.write_file(f"{path}/w/f", b"persistent")
    client.mounter.takeover(f"/sfs/{path.mount_name}")
    client2 = world.add_client("c2")
    client2.new_agent("u", 1000)
    proc2 = client2.process(uid=1000)
    assert proc2.read_file(f"{path}/w/f") == b"persistent"


def test_key_rotation_via_sfskey(setup):
    """sfskey update: a user replaces their public key; the new key
    logs in, the old one no longer does."""
    from repro.core import proto, sfskey

    world, server, path, client, proc = setup
    server.authserver._unix_passwords["bob"] = "unix"
    old = sfskey.prepare_enrolment("bob", b"pw-old", world.rng)
    sfskey.register(world.connector, "srv.example.com", old, "unix",
                    world.rng)
    record = server.authserver.local_db.lookup_user("bob")
    home = pathops.mkdirs(server.fs, "/home/bob")
    server.fs.setattr(home.ino, Cred(0, 0), uid=record.uid, gid=100)

    # Rotate: enrol a fresh key (existing users may replace their own).
    new = sfskey.prepare_enrolment("bob", b"pw-new", world.rng)
    sfskey.register(world.connector, "srv.example.com", new, "", world.rng)

    # New key works...
    c_new = world.add_client("c-new")
    agent_new = c_new.new_agent("bob", record.uid)
    agent_new.add_key(new.key)
    proc_new = c_new.process(uid=record.uid)
    proc_new.write_file(f"{path}/home/bob/f", b"rotated")

    # ...the old key authenticates as nobody (anonymous).
    c_old = world.add_client("c-old")
    agent_old = c_old.new_agent("bob", record.uid)
    agent_old.add_key(old.key)
    proc_old = c_old.process(uid=record.uid)
    with pytest.raises(KernelError):
        proc_old.write_file(f"{path}/home/bob/g", b"stale key")


def test_password_guessing_leaves_log_trail(setup):
    """Footnote 3: "an attacker who guesses 1,000 passwords will
    generate 1,000 log messages on the server"."""
    from repro.core import sfskey

    world, server, path, client, proc = setup
    server.authserver._unix_passwords["carol"] = "unix"
    enrolment = sfskey.prepare_enrolment("carol", b"the-password",
                                         world.rng)
    sfskey.register(world.connector, "srv.example.com", enrolment, "unix",
                    world.rng)
    attacker_client = world.add_client("attacker")
    agent = attacker_client.new_agent("mallory", 6666)
    guesses = [b"123456", b"password", b"letmein"]
    for guess in guesses:
        with pytest.raises(sfskey.SfsKeyError):
            sfskey.add(world.connector, agent, "carol", "srv.example.com",
                       guess, world.rng)
    log = server.authserver.security_log
    assert len([line for line in log if "carol" in line]) == len(guesses)
