"""Fleet federation end to end: sharded namespace, mirrors, demotion."""

import pytest

from repro.fs import pathops
from repro.kernel.world import World
from repro.sim.network import NetworkParameters


@pytest.fixture
def world():
    return World(seed=43)


NAMES = ["alice", "bob", "carol", "dave", "erin", "frank"]


def build_fleet(world, shards=3, mirrors=1, names=NAMES):
    fleet = world.add_fleet(shards)
    targets = {name: fleet.provision(name) for name in names}
    for name in names:
        shard = fleet.shard_for(name)
        pathops.write_file(shard.fs, f"/{name}/README",
                           f"{name} on {shard.location}".encode())
    fleet.publish(mirrors=mirrors)
    return fleet, targets


def test_namespace_resolves_and_data_path_works(world):
    fleet, targets = build_fleet(world)
    client = world.add_client("laptop")
    fleet.attach(client)
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    prefix = f"/sfs/{fleet.namespace_path.mount_name}"
    for name, target in targets.items():
        # The CA symlink comes through the replica tier, verified.
        assert proc.readlink(f"{prefix}/{name}") == target
        # Following it lands on the owning shard with RW security.
        shard = fleet.shard_for(name)
        assert proc.read_file(f"{prefix}/{name}/README") == (
            f"{name} on {shard.location}".encode()
        )


def test_placement_spreads_names_and_is_recorded(world):
    fleet, _targets = build_fleet(world, shards=3, names=NAMES)
    placement = fleet.placement()
    assert sum(placement.values()) == len(NAMES)
    assert set(placement) == {shard.location for shard in fleet.shards}
    assert fleet.assignments["alice"] == fleet.shard_for("alice").location


def test_growth_moves_a_minority_of_names(world):
    fleet = world.add_fleet(4)
    names = [f"proj{index:03d}" for index in range(200)]
    before = {name: fleet.shard_for(name).location for name in names}
    newcomer = fleet.add_shard("shard-new.fleet")
    moved = [name for name in names
             if fleet.shard_for(name).location != before[name]]
    assert 0 < len(moved) < 100  # ~1/5 expected, never a reshuffle
    for name in moved:
        assert fleet.shard_for(name).location == newcomer.location


def test_republish_after_certify_is_incremental(world):
    fleet, _targets = build_fleet(world, mirrors=0)
    first = fleet.image
    fleet.provision("grace")
    fleet.publish()
    assert fleet.image.serial == first.serial + 1
    # Only the blobs the new link touched were re-created; the rest of
    # the link farm carried over from the previous image.
    assert 0 < fleet.image.new_blobs < len(fleet.image.store)


def test_tampering_mirror_demoted_with_zero_wrong_links(world):
    """The preferred (fastest) mirror serves bit-flipped blobs: it gets
    banned on the first digest mismatch and every link still resolves
    to exactly what was provisioned."""
    fleet, targets = build_fleet(world, shards=2, mirrors=2)
    wan = NetworkParameters.wan()
    # Leave mirror0 on the LAN so selection prefers it; everyone honest
    # is far away.
    world.set_link_params(fleet.ca.location, wan)
    world.set_link_params(fleet.mirror_locations[1], wan)
    tamperer = fleet.mirror_locations[0]
    store = world.servers[tamperer].master._ro[
        fleet.namespace_path.hostid].store.image.store
    for digest, blob in list(store.items()):
        store[digest] = bytes([blob[0] ^ 0x01]) + blob[1:]

    client = world.add_client("victim")
    fleet.attach(client)
    proc = client.root_process()
    prefix = f"/sfs/{fleet.namespace_path.mount_name}"
    for name, target in targets.items():
        assert proc.readlink(f"{prefix}/{name}") == target
    replica_set = client.sfscd.replica_sets[fleet.namespace_path.hostid]
    stats = {entry["name"]: entry for entry in replica_set.stats()}
    assert stats[tamperer]["banned"]
    assert world.metrics.counter("fleet.replica.bans").value == 1
    assert world.metrics.counter("fleet.replica.corrupt_blobs").value >= 1


def test_dead_mirror_fails_over_not_up(world):
    """Crashing the preferred mirror sidelines it; resolution continues
    from the remaining replicas with no client-visible error."""
    fleet, targets = build_fleet(world, shards=2, mirrors=1)
    client = world.add_client("laptop")
    fleet.attach(client)
    proc = client.root_process()
    prefix = f"/sfs/{fleet.namespace_path.mount_name}"
    first = NAMES[0]
    assert proc.readlink(f"{prefix}/{first}") == targets[first]
    replica_set = client.sfscd.replica_sets[fleet.namespace_path.hostid]
    # Kill whichever replica the set currently prefers.
    preferred = replica_set.select()
    world.servers[preferred.name].crash()
    for name in NAMES[1:]:
        assert proc.readlink(f"{prefix}/{name}") == targets[name]
    assert world.metrics.counter("fleet.replica.demotions").value >= 1


def test_fleet_bench_harness_smoke():
    """The bench harness end to end at a tiny scale: every op succeeds,
    per-shard accounting adds up, namespace counters populated."""
    from repro.fleet.bench import FleetHarness, FleetLoadConfig

    config = FleetLoadConfig(servers=2, clients=4, ops_per_client=3,
                             names=4, mirrors=1, seed=11)
    harness = FleetHarness(config)
    report = harness.run()
    assert report.op_errors == 0 and report.unfinished_tasks == 0
    assert report.ops_completed == 12
    assert report.names_resolved == 4
    assert sum(s.ops_completed for s in report.shards) == 12
    assert report.namespace["fetches"] > 0
    assert report.throughput > 0
    assert report.p99 >= report.p50 > 0


def test_fleet_bench_tamper_demo():
    from repro.fleet.bench import run_tamper_demo

    report = run_tamper_demo(seed=13, names=4, mirrors=2)
    assert report.wrong_links == 0
    assert report.names_resolved == 4
    assert report.bans >= 1 and report.corrupt_blobs >= 1
    assert report.banned_replicas == ["mirror0.fleet"]
