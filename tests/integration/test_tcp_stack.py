"""The full SFS stack over real localhost TCP sockets."""

import random

import pytest

from repro.core import proto
from repro.core.agent import Agent
from repro.core.client import ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.core.server import SfsServerMaster
from repro.core.tcpstack import TcpConnector, TcpServerHost
from repro.core.authserv import AuthServer
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import Cred, MemFs
from repro.nfs3 import const as nfs_const
from repro.nfs3 import types as nfs_types
from repro.sim.clock import Clock


@pytest.fixture
def tcp_server():
    clock = Clock()
    rng = random.Random(101)
    master = SfsServerMaster("tcp.example.com", clock, rng)
    fs = MemFs()
    authserver = AuthServer(rng)
    key = generate_key(768, rng)
    path = master.add_rw_export(key, fs, authserver)
    pathops.write_file(fs, "/hello.txt", b"over real sockets")
    alice = generate_key(768, rng)
    record = authserver.add_account("alice", 1000, 100)
    record.public_key_bytes = alice.public_key.to_bytes()
    authserver.local_db.add_user(record)
    home = pathops.mkdirs(fs, "/home/alice")
    fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    host = TcpServerHost(master)
    connector = TcpConnector()
    connector.route("tcp.example.com", host)
    yield master, path, alice, connector, rng
    host.close()


def test_key_negotiation_over_tcp(tcp_server):
    _master, path, _alice, connector, rng = tcp_server
    pipe = connector(path.location, proto.SERVICE_FILESERVER)
    session = ServerSession.connect(
        pipe, path, EphemeralKeyCache(rng), rng
    )
    assert isinstance(session, ServerSession)
    assert session.session_keys is not None


def test_read_write_over_tcp(tcp_server):
    _master, path, alice, connector, rng = tcp_server
    pipe = connector(path.location, proto.SERVICE_FILESERVER)
    session = ServerSession.connect(
        pipe, path, EphemeralKeyCache(rng), rng
    )
    agent = Agent("alice", rng)
    agent.add_key(alice)
    authno = session.login(agent)
    assert authno != 0
    # Fetch the root handle and read a file through the secure channel.
    zero = bytes(24)
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=zero, name=".")
        ),
        authno,
    )
    assert status == nfs_const.NFS3_OK
    root = body.object
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=root, name="hello.txt")
        ),
        authno,
    )
    assert status == nfs_const.NFS3_OK
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_READ,
        nfs_types.ReadArgs.make(file=body.object, offset=0, count=100),
        authno,
    )
    assert status == nfs_const.NFS3_OK
    assert body.data == b"over real sockets"
    # And a write as alice.
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=root, name="home")
        ),
        authno,
    )
    home = body.object
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=home, name="alice")
        ),
        authno,
    )
    alice_home = body.object
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_CREATE,
        nfs_types.CreateArgs.make(
            where=nfs_types.DirOpArgs.make(dir=alice_home, name="tcp-file"),
            how=(nfs_const.UNCHECKED, nfs_types.sattr(mode=0o644)),
        ),
        authno,
    )
    assert status == nfs_const.NFS3_OK
    fh = body.obj
    status, body = session.call_nfs(
        nfs_const.NFSPROC3_WRITE,
        nfs_types.WriteArgs.make(
            file=fh, offset=0, count=9, stable=nfs_const.FILE_SYNC,
            data=b"via tcp!!",
        ),
        authno,
    )
    assert status == nfs_const.NFS3_OK
    assert body.count == 9


def test_wrong_hostid_rejected_over_tcp(tcp_server):
    from repro.core.client import SecurityError
    from repro.core.pathnames import SelfCertifyingPath

    master, path, _alice, connector, rng = tcp_server
    master.config.prepend_rule("hijack", "default", lambda s, h, e: True)
    fake_path = SelfCertifyingPath(path.location, b"\x07" * 20)
    pipe = connector(path.location, proto.SERVICE_FILESERVER)
    with pytest.raises(SecurityError):
        ServerSession.connect(pipe, fake_path, EphemeralKeyCache(rng), rng)
