"""Integration tests for the concurrent-client load engine.

These drive full SFS stacks — self-certifying handshake, key
negotiation, encrypted channels, NFS3 — with N clients as cooperative
tasks against one queued server, and pin down the two load-engine
acceptance properties:

* **without** admission control, tail latency degrades super-linearly
  once offered load crosses the server's service capacity;
* **with** admission control, rejected requests are counted, retried
  through the client's backoff policy, and the queue depth stays
  bounded.
"""

import pytest

from repro.load import LoadConfig, LoadHarness


def run_closed(**overrides):
    config = LoadConfig(**overrides)
    return LoadHarness(config).run_closed_loop()


# --- determinism ---------------------------------------------------------

def test_same_seed_reproduces_the_whole_report():
    kwargs = dict(clients=8, ops_per_client=8, seed=42, workers=1,
                  service_time=0.001, max_depth=8)
    first = run_closed(**kwargs)
    second = run_closed(**kwargs)
    assert first.latencies == second.latencies
    assert first.ops_completed == second.ops_completed
    assert first.busy_retries == second.busy_retries
    assert first.admission_rejects == second.admission_rejects
    assert first.duration == second.duration
    assert first.throughput == second.throughput


def test_different_seeds_give_different_interleavings():
    reports = [
        run_closed(clients=8, ops_per_client=8, seed=seed, workers=1,
                   service_time=0.001)
        for seed in (1, 2)
    ]
    assert reports[0].latencies != reports[1].latencies


# --- correctness under concurrency ---------------------------------------

def test_all_clients_complete_all_ops():
    report = run_closed(clients=16, ops_per_client=10, seed=5,
                        workers=2, service_time=0.001)
    assert report.ops_completed == 16 * 10
    assert report.op_errors == 0
    assert report.unfinished_tasks == 0


def test_open_loop_completes_every_arrival():
    config = LoadConfig(clients=4, seed=9, workers=2, service_time=0.001,
                        arrival_rate=300.0, duration=0.5)
    report = LoadHarness(config).run_open_loop()
    assert report.ops_completed > 50          # Poisson(300 × 0.5) ≈ 150
    assert report.op_errors == 0
    assert report.unfinished_tasks == 0
    # Concurrent in-flight calls shared 4 transports.
    assert report.ops_completed > config.clients


def test_unencrypted_mode_also_runs_concurrently():
    report = run_closed(clients=8, ops_per_client=5, seed=3,
                        encrypt=False, workers=2, service_time=0.0005)
    assert report.ops_completed == 40
    assert report.op_errors == 0


# --- acceptance: tail latency without admission control ------------------

def test_p99_degrades_superlinearly_without_admission_control():
    """Offered load 4× capacity vs well under capacity: closed-loop
    clients pile onto the unbounded queue, so p99 grows faster than the
    client count does."""
    def at(clients):
        return run_closed(clients=clients, ops_per_client=10, seed=7,
                          workers=1, service_time=0.001,
                          think_time=0.010, max_depth=None)

    light, heavy = at(4), at(64)
    assert light.op_errors == 0 and heavy.op_errors == 0
    assert light.admission_rejects == 0 and heavy.admission_rejects == 0
    load_ratio = 64 / 4
    latency_ratio = heavy.p99 / light.p99
    assert latency_ratio > load_ratio, (
        f"p99 grew {latency_ratio:.1f}x for a {load_ratio:.0f}x load "
        f"increase — queueing delay is not compounding"
    )
    # The unbounded queue really was unbounded: depth tracked the
    # client count, far past any sane admission limit.
    assert heavy.max_queue_depth > 32


def test_throughput_saturates_at_service_capacity():
    """Closed-loop throughput cannot exceed workers / service_time."""
    report = run_closed(clients=64, ops_per_client=10, seed=7,
                        workers=1, service_time=0.001,
                        think_time=0.010, max_depth=None)
    capacity = 1 / 0.001
    assert report.throughput <= capacity * 1.05
    assert report.throughput > capacity * 0.5


# --- acceptance: admission control bounds the queue ----------------------

def test_admission_control_rejects_retries_and_bounds_depth():
    report = run_closed(clients=64, ops_per_client=10, seed=7,
                        workers=1, service_time=0.001,
                        think_time=0.010, max_depth=8)
    # Backpressure engaged: rejections happened and were counted...
    assert report.admission_rejects > 0
    # ...each surfaced to a client as SERVER_BUSY and retried through
    # its BackoffPolicy rather than failing the operation...
    assert report.busy_retries > 0
    assert report.op_errors == 0
    assert report.ops_completed == 64 * 10
    # ...and the queue never grew past its configured bound.
    assert report.max_queue_depth <= 8
    assert report.unfinished_tasks == 0


def test_fair_share_policy_serves_all_clients():
    report = run_closed(clients=16, ops_per_client=10, seed=11,
                        workers=1, service_time=0.001,
                        queue_policy="fair", max_depth=16)
    assert report.ops_completed == 160
    assert report.op_errors == 0


# --- composition with the metrics pipeline -------------------------------

def test_histogram_percentiles_track_exact_report_percentiles():
    """The obs histogram's interpolated p95 and the report's exact
    nearest-rank p95 are two estimators over the same latencies; the
    interpolated one must land within the exact value's bucket."""
    from bisect import bisect_left

    config = LoadConfig(clients=16, ops_per_client=10, seed=7,
                        workers=1, service_time=0.001)
    harness = LoadHarness(config)
    report = harness.run_closed_loop()
    histogram = harness.world.metrics.histogram("load.op_seconds")
    assert histogram.count == report.ops_completed
    estimate = histogram.quantile(0.95)
    index = bisect_left(histogram.bounds, report.p95)
    lo = histogram.bounds[index - 1] if index else 0.0
    hi = (histogram.bounds[index] if index < len(histogram.bounds)
          else histogram.bounds[-1])
    assert lo <= estimate <= hi


def test_queue_metrics_are_exported():
    config = LoadConfig(clients=16, ops_per_client=5, seed=7,
                        workers=1, service_time=0.001, max_depth=4)
    harness = LoadHarness(config)
    harness.run_closed_loop()
    metrics = harness.world.metrics
    assert metrics.counter("server.queue.admitted").value > 0
    assert metrics.counter("server.queue.rejected").value > 0
    assert metrics.counter("rpc.busy_replies").value == (
        metrics.counter("server.queue.rejected").value
    )
    assert metrics.counter("client.busy_retries").value > 0
    assert metrics.histogram("server.queue.wait_seconds").count > 0
    assert metrics.counter("sched.tasks_spawned").value > 0


def test_contention_charges_medium_waits():
    config = LoadConfig(clients=16, ops_per_client=10, seed=7,
                        workers=2, service_time=0.0, contention=True,
                        think_time=0.0005, io_size=32768)
    harness = LoadHarness(config)
    report = harness.run_closed_loop()
    assert report.op_errors == 0
    assert harness.world.metrics.counter("net.medium_waits").value > 0
