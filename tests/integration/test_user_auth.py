"""User authentication through the full stack (paper section 2.5 and
figure 4)."""

import errno

import pytest

from repro.core import proto
from repro.core.agent import Agent
from repro.core.client import ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World


@pytest.fixture
def auth_world():
    world = World(seed=21)
    server = world.add_server("auth.example.com")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    return world, server, path, alice


def connect_session(world, path):
    link = world.connector(path.location, proto.SERVICE_FILESERVER)
    session = ServerSession.connect(
        link, path, EphemeralKeyCache(world.rng), world.rng
    )
    assert isinstance(session, ServerSession)
    return session


def test_login_maps_key_to_credentials(auth_world):
    world, server, path, alice = auth_world
    agent = Agent("alice", world.rng)
    agent.add_key(alice.key)
    session = connect_session(world, path)
    authno = session.login(agent)
    assert authno != 0
    # The authno carries alice's uid on the server side.
    connection = server.master.rw_export(path.hostid).connections[-1]
    assert connection._authnos[authno].uid == 1000


def test_login_with_unknown_key_falls_back_anonymous(auth_world):
    world, _server, path, _alice = auth_world
    agent = Agent("stranger", world.rng)
    agent.add_key(generate_key(768, world.rng))
    session = connect_session(world, path)
    assert session.login(agent) == 0


def test_login_with_no_keys_is_anonymous(auth_world):
    world, _server, path, _alice = auth_world
    agent = Agent("keyless", world.rng)
    session = connect_session(world, path)
    assert session.login(agent) == 0


def test_agent_tries_multiple_keys(auth_world):
    """"If the authserver rejects an authentication request, the agent
    can try again using different credentials.""" """"""
    world, _server, path, alice = auth_world
    agent = Agent("alice", world.rng)
    agent.add_key(generate_key(768, world.rng))  # wrong key first
    agent.add_key(alice.key)                     # right key second
    session = connect_session(world, path)
    assert session.login(agent) != 0
    assert len(agent.audit_log) == 2  # two signing operations


def test_seqno_replay_rejected_by_server(auth_world):
    """Sequence numbers prevent one agent from reusing another's signed
    request on the same client."""
    world, server, path, alice = auth_world
    agent = Agent("alice", world.rng)
    agent.add_key(alice.key)
    session = connect_session(world, path)
    info = session.authinfo_bytes()
    authmsg = agent.sign_request(info, seqno=1)
    disc, body = session.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs, proto.LoginArgs.make(seqno=1, authmsg=authmsg),
        proto.LoginRes,
    )
    assert disc == proto.LOGIN_OK
    # Replaying the very same signed request: rejected (seqno seen).
    disc2, _ = session.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs, proto.LoginArgs.make(seqno=1, authmsg=authmsg),
        proto.LoginRes,
    )
    assert disc2 == proto.LOGIN_FAILED


def test_authmsg_not_transferable_across_sessions(auth_world):
    """AuthID binds the SessionID, so a signed request from one session
    fails validation on another."""
    world, _server, path, alice = auth_world
    agent = Agent("alice", world.rng)
    agent.add_key(alice.key)
    session1 = connect_session(world, path)
    session2 = connect_session(world, path)
    stolen = agent.sign_request(session1.authinfo_bytes(), seqno=1)
    disc, _ = session2.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs, proto.LoginArgs.make(seqno=1, authmsg=stolen),
        proto.LoginRes,
    )
    assert disc == proto.LOGIN_FAILED


def test_logout_invalidates_authno(auth_world):
    world, server, path, alice = auth_world
    agent = Agent("alice", world.rng)
    agent.add_key(alice.key)
    session = connect_session(world, path)
    authno = session.login(agent)
    connection = server.master.rw_export(path.hostid).connections[-1]
    assert authno in connection._authnos
    from repro.rpc.xdr import VOID
    session.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGOUT,
        proto.LogoutArgs, proto.LogoutArgs.make(authno=authno), VOID,
    )
    assert authno not in connection._authnos


def test_kernel_level_auth_selection(auth_world):
    """Requests from different local uids map to different agents and
    therefore different server credentials."""
    world, server, path, alice = auth_world
    bob = server.add_user("bob", uid=2000)
    bob_home = pathops.mkdirs(server.fs, "/home/bob")
    server.fs.setattr(bob_home.ino, Cred(0, 0), uid=2000, gid=100)

    client = world.add_client("shared-workstation")
    alice_proc = client.login_user("alice", alice.key, uid=1000)
    bob_proc = client.login_user("bob", bob.key, uid=2000)

    alice_proc.write_file(f"{path}/home/alice/a", b"alice's")
    bob_proc.write_file(f"{path}/home/bob/b", b"bob's")
    assert alice_proc.stat(f"{path}/home/alice/a").uid == 1000
    assert bob_proc.stat(f"{path}/home/bob/b").uid == 2000
    # And they cannot write into each other's (0755) homes.
    with pytest.raises(KernelError):
        bob_proc.write_file(f"{path}/home/alice/intrusion", b"x")


def test_user_authentication_over_secure_channel_only(auth_world):
    """LOGIN is part of the post-negotiation program: before ENCRYPT
    there is no RW program to call."""
    world, _server, path, _alice = auth_world
    link = world.connector(path.location, proto.SERVICE_FILESERVER)
    from repro.core.server import SwitchablePipe
    from repro.rpc.peer import RpcPeer, RpcRejected

    pipe = SwitchablePipe(link)
    peer = RpcPeer(pipe, "probe")
    peer.call(
        proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION, proto.PROC_CONNECT,
        proto.ConnectArgs,
        proto.ConnectArgs.make(
            service=proto.SERVICE_FILESERVER, location=path.location,
            hostid=path.hostid, extensions=[],
        ),
        proto.ConnectRes,
    )
    with pytest.raises(RpcRejected):
        peer.call(
            proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
            proto.LoginArgs,
            proto.LoginArgs.make(seqno=1, authmsg=b""),
            proto.LoginRes,
        )
