"""Property-based end-to-end I/O: random write patterns through the full
SFS stack (kernel -> sfscd -> secure channel -> sfssd -> nfsd -> MemFs)
always read back exactly what a byte-array model predicts."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.world import World

_worlds = {}


def _stack():
    """One long-lived world per test session (hypothesis re-runs are
    cheap file creations, not full-world rebuilds)."""
    if "stack" not in _worlds:
        world = World(seed=181)
        server = world.add_server("prop.example.com")
        path = server.export_fs()
        work = pathops.mkdirs(server.fs, "/w")
        server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
        client = world.add_client("c")
        client.new_agent("u", 1000)
        proc = client.process(uid=1000)
        _worlds["stack"] = (path, proc)
        _worlds["counter"] = 0
    _worlds["counter"] += 1
    return _worlds["stack"], _worlds["counter"]


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=30_000),
              st.binary(min_size=1, max_size=2_000)),
    min_size=1, max_size=8,
))
@settings(max_examples=25, deadline=None)
def test_random_writes_match_model(writes):
    (path, proc), serial = _stack()
    name = f"{path}/w/prop{serial}"
    model = bytearray()
    fd = proc.open(name, "w")
    for offset, data in writes:
        proc.lseek(fd, offset)
        proc.write(fd, data)
        if len(model) < offset + len(data):
            model.extend(bytes(offset + len(data) - len(model)))
        model[offset : offset + len(data)] = data
    proc.close(fd)
    assert proc.stat(name).size == len(model)
    assert proc.read_file(name) == bytes(model)
    proc.unlink(name)


@given(st.integers(min_value=0, max_value=40_000),
       st.integers(min_value=0, max_value=40_000))
@settings(max_examples=25, deadline=None)
def test_random_reads_of_sparse_file(offset, count):
    (path, proc), serial = _stack()
    name = f"{path}/w/sparse{serial}"
    proc.write_file(name, b"")
    proc.truncate(name, 32_768)
    fd = proc.open(name, "r")
    proc.lseek(fd, offset)
    data = proc.read(fd, count)
    proc.close(fd)
    expected_len = max(0, min(32_768 - offset, count))
    assert data == bytes(expected_len)
    proc.unlink(name)


@given(st.lists(st.sampled_from(["a", "bb", "ccc", "dddd", "e-e"]),
                min_size=1, max_size=5, unique=True))
@settings(max_examples=20, deadline=None)
def test_rename_chains_preserve_content(names):
    (path, proc), serial = _stack()
    base = f"{path}/w/chain{serial}"
    proc.makedirs(base)
    current = f"{base}/start"
    body = f"chain {serial}".encode()
    proc.write_file(current, body)
    for name in names:
        target = f"{base}/{name}"
        proc.rename(current, target)
        current = target
    assert proc.read_file(current) == body
    assert proc.readdir(base) == [current.rsplit("/", 1)[1]]
