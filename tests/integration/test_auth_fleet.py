"""Integration tests for the scaled auth plane (repro.auth.fleet):
sharded authservers, signed user-database images imported by file
servers, and revocation/rotation coherence with the fileserver
decision cache — both arrival orders, end to end."""

import pytest

from repro.core import proto
from repro.core.agent import Agent
from repro.core.client import ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.crypto.rabin import generate_key
from repro.keymgmt.rollover import fan_out_revocations, revoke_export


def connect(world, location, path, **kwargs):
    link = world.connector(location, proto.SERVICE_FILESERVER)
    return ServerSession.connect(link, path, EphemeralKeyCache(world.rng),
                                 world.rng, **kwargs)


@pytest.fixture
def fleet_setup(world):
    """A 2-shard auth fleet, a synthetic-padded table, one real account,
    and a file server importing the published user databases."""
    fleet = world.add_auth_fleet(2)
    for index in range(40):
        fleet.add_user(f"user{index:04d}")
    account = fleet.add_real_user("alice", uid=3000)
    server = world.add_server("files.test")
    path = server.export_fs()
    imported = fleet.import_into(server)
    assert imported == 41
    return world, fleet, account, server, path


def login_session(world, account, server, path):
    session = connect(world, server.location, path)
    agent = Agent(account.name, world.rng)
    agent.add_key(account.key)
    return session, agent


def test_placement_covers_every_shard(world):
    fleet = world.add_auth_fleet(4)
    for index in range(200):
        fleet.add_user(f"user{index:04d}")
    counts = fleet.placement()
    assert sum(counts.values()) == 200
    assert len(counts) == 4
    assert all(count > 0 for count in counts.values())
    # Provisioning is consistent: the assignment recorded at add time is
    # the shard the ring still resolves, and the record lives there.
    for index in range(0, 200, 50):
        name = f"user{index:04d}"
        shard = fleet.shard_for(name)
        assert fleet.assignments[name] == shard.location
        assert shard.authserver.local_db.lookup_user(name) is not None
    assert world.metrics.gauge("auth.fleet.shards").value == 4
    assert world.metrics.counter("auth.fleet.users").value == 200


def test_real_login_through_imported_database(fleet_setup):
    world, fleet, account, server, path = fleet_setup
    session, agent = login_session(world, account, server, path)
    assert session.login(agent) > 0
    # alice's record reached the file server through the verified
    # read-only image, not through any local registration.
    assert server.authserver.local_db.lookup_user("alice") is None
    assert world.metrics.counter("auth.fleet.publications").value >= 2
    assert world.metrics.counter("auth.fleet.imports").value == 1
    # Importing again is idempotent: the shared databases are already
    # attached, so no new users arrive.
    assert fleet.import_into(server) == 0


def test_imported_databases_are_shared_across_file_servers(fleet_setup):
    world, fleet, account, _server, _path = fleet_setup
    second = world.add_server("files2.test")
    second_path = second.export_fs()
    fleet.import_into(second)
    session, agent = login_session(world, account, second, second_path)
    assert session.login(agent) > 0


def test_revocation_locks_out_warmed_decision_cache(fleet_setup):
    """Order A: login (decision cached on the file server) -> revoke ->
    login again.  The republish/refresh inside ``revoke_user`` fires the
    imported database's eviction hooks synchronously, so the cached
    decision is dead before the next validate anywhere."""
    world, fleet, account, server, path = fleet_setup
    session, agent = login_session(world, account, server, path)
    assert session.login(agent) > 0
    assert session.login(agent) > 0          # now a cache hit
    assert world.metrics.counter("auth.cache.hits").value >= 1

    assert fleet.revoke_user("alice")
    assert session.login(agent) == 0         # anonymous: locked out
    assert world.metrics.counter("auth.fleet.revocations").value == 1
    # An unrelated real account still logs in.
    bob = fleet.add_real_user("bob", uid=3001)
    fleet.publish()
    bob_session, bob_agent = login_session(world, bob, server, path)
    assert bob_session.login(bob_agent) > 0


def test_revocation_before_first_login_denies(fleet_setup):
    """Order B: the user is revoked before ever authenticating against
    this file server — no decision exists to evict, and none sneaks in."""
    world, fleet, account, server, path = fleet_setup
    assert fleet.revoke_user("alice")
    session, agent = login_session(world, account, server, path)
    assert session.login(agent) == 0
    assert len(server.authserver.decision_cache) == 0


def test_key_rotation_republishes_and_rearms(fleet_setup):
    world, fleet, account, server, path = fleet_setup
    session, agent = login_session(world, account, server, path)
    assert session.login(agent) > 0

    new_key = generate_key(768, world.rng)
    fleet.change_user_key("alice", new_key.public_key.to_bytes())
    # The old key stops authenticating fleet-wide, warmed cache or not...
    assert session.login(agent) == 0
    # ...and the rotated-to key logs in on the same session.
    rotated_agent = Agent("alice", world.rng)
    rotated_agent.add_key(new_key)
    assert session.login(rotated_agent) > 0
    assert world.metrics.counter("auth.fleet.key_changes").value == 1


def test_fan_out_revocations_bumps_decision_cache_epochs(fleet_setup):
    """Server-key revocation fan-out cannot name which cached authids a
    dead server key influenced, so it bumps every listed authserver's
    cache epoch; live users lazily re-verify (a miss, then a success)."""
    world, fleet, account, server, path = fleet_setup
    session, agent = login_session(world, account, server, path)
    assert session.login(agent) > 0

    victim = world.add_server("old.files")
    victim.export_fs()
    cert = revoke_export(victim)
    delivered = fan_out_revocations(
        [cert], authservers=[server.authserver], metrics=world.metrics)
    # Epoch bumps are cache bookkeeping, not certificate deliveries:
    # with no daemons/masters/CA in the sweep, nothing was delivered.
    assert delivered == 0
    assert world.metrics.counter(
        "keymgmt.revocations_fanned_out").value == 0
    assert world.metrics.counter("auth.cache.epoch_bumps").value == 1

    misses_before = world.metrics.counter("auth.cache.misses").value
    assert session.login(agent) > 0
    assert world.metrics.counter("auth.cache.misses").value > misses_before


def test_mini_login_storm_completes_cleanly():
    """A small open-loop storm through the admission queue: every
    arrival resolves as ok/shed (never an error), nothing hangs, and
    the run exercises busy-retry re-signing plus retransmit absorption
    under genuinely concurrent logins."""
    from repro.auth.bench import AuthHarness, AuthLoadConfig

    harness = AuthHarness(AuthLoadConfig(
        shards=2, users=120, login_users=4, arrival_rate=300.0,
        duration=0.1, seed=31337, workers=1, max_depth=8,
    ))
    report = harness.run_storm()
    assert report.errors == 0
    assert report.unfinished_tasks == 0
    assert report.denied == 0
    assert report.logins_ok > 0
    assert report.logins_ok + report.shed == report.offered
