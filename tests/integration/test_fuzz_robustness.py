"""Property-based robustness: garbage and adversarial bytes never crash
a server or smuggle data through the secure channel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.channel import SecureChannel
from repro.fs.memfs import MemFs
from repro.nfs3.client import Nfs3Client, Nfs3Error
from repro.nfs3.server import Nfs3Server
from repro.rpc.peer import Program, RpcError, RpcPeer
from repro.rpc.rpcmsg import AuthSys, CallHeader, pack_call
from repro.rpc.xdr import UInt32, VOID
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair


@given(st.binary(max_size=200))
@settings(max_examples=100)
def test_rpc_server_survives_garbage_records(data):
    """Arbitrary bytes on the wire never crash the dispatcher, and the
    connection keeps working afterwards."""
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    server = RpcPeer(b, "server")
    program = Program("echo", 700000, 1)
    program.add_proc(1, "ECHO", UInt32, UInt32, lambda args, ctx: args)
    server.register(program)
    client = RpcPeer(a, "client")
    a.send(data)  # raw garbage straight onto the wire
    assert client.call(700000, 1, 1, UInt32, 5, UInt32) == 5


@given(st.binary(max_size=120))
@settings(max_examples=100)
def test_nfs_server_survives_garbage_args(body):
    """A syntactically valid RPC CALL with random argument bytes gets
    GARBAGE_ARGS or a clean NFS error — never a crash."""
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    nfsd = Nfs3Server(MemFs())
    RpcPeer(b, "nfsd").register(nfsd.program)
    client_peer = RpcPeer(a, "client")
    header = CallHeader(xid=1, prog=100003, vers=3, proc=3,  # LOOKUP
                        cred=AuthSys(uid=0, gid=0).to_auth())
    replies = []
    client_peer._pending[1] = None
    a.send(pack_call(header, body))
    # Either a parsed reply arrived (any status) or nothing — both fine;
    # what matters is the server is still alive:
    client = Nfs3Client(client_peer, AuthSys(uid=0, gid=0))
    attrs = client.getattr(nfsd.root_handle())
    assert attrs.fileid == 2


@given(st.binary(min_size=1, max_size=300))
@settings(max_examples=150)
def test_channel_never_delivers_injected_bytes(data):
    """No injected record — whatever its content — reaches the layer
    above an intact secure channel."""
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    SecureChannel(a, send_key=b"c" * 20, recv_key=b"s" * 20)
    receiver = SecureChannel(b, send_key=b"s" * 20, recv_key=b"c" * 20)
    delivered = []
    receiver.on_receive(delivered.append)
    a.send(data)
    assert delivered == []


@given(st.integers(min_value=0, max_value=300),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=60)
def test_channel_bitflip_never_alters_payload(byte_index, bit):
    """Flipping any single bit of a channel record either drops it or —
    never — changes what gets delivered."""
    clock = Clock()
    captured = []

    from repro.sim.network import Adversary

    class Flip(Adversary):
        def process(self, record, direction):
            corrupted = bytearray(record)
            corrupted[byte_index % len(corrupted)] ^= 1 << bit
            return [bytes(corrupted)]

    a, b = link_pair(clock, NetworkParameters.instant(), Flip())
    sender = SecureChannel(a, send_key=b"c" * 20, recv_key=b"s" * 20)
    receiver = SecureChannel(b, send_key=b"s" * 20, recv_key=b"c" * 20)
    receiver.on_receive(captured.append)
    payload = b"the one true payload"
    sender.send(payload)
    assert captured in ([], [payload])
    # (and for a real flip, it is always [])
    assert captured == [] or receiver.rejected_records == 0


@given(st.lists(st.binary(max_size=64), min_size=1, max_size=6))
@settings(max_examples=60)
def test_channel_preserves_order_and_content(records):
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    sender = SecureChannel(a, send_key=b"c" * 20, recv_key=b"s" * 20)
    receiver = SecureChannel(b, send_key=b"s" * 20, recv_key=b"c" * 20)
    delivered = []
    receiver.on_receive(delivered.append)
    for record in records:
        sender.send(record)
    assert delivered == records
