"""The paper's threat model, enforced end to end (section 2.1.2).

"SFS assumes that malicious parties entirely control the network ...
attackers can do no worse than delay the file system's operation or
conceal the existence of servers."
"""

import errno

import pytest

from repro.core import proto
from repro.core.client import SecurityError, ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.fs import pathops
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.sim.network import (
    DropAdversary,
    RecordingAdversary,
    ReplayAdversary,
    TamperAdversary,
)


def build_world(adversary_factory=None):
    world = World(seed=11)
    server = world.add_server("srv.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"protected contents")
    world.adversary_factory = adversary_factory
    client = world.add_client("victim")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    return world, server, path, proc


def test_clean_baseline():
    _world, _server, path, proc = build_world()
    assert proc.read_file(f"{path}/data") == b"protected contents"


def _session(world, path):
    """The live ServerSession behind the victim's mount."""
    return world.clients["victim"].sfscd._mounts[path.hostid].session


@pytest.mark.parametrize("target_index", [5, 6, 8])
def test_tampering_degrades_to_dos(target_index):
    """Bit-flips after channel setup never produce wrong data — the
    channel drops the record, the RPC layer retransmits it, and the
    operation completes.  The attacker bought delay, nothing more."""
    world, _server, path, proc = build_world(
        lambda: TamperAdversary(target_index=target_index)
    )
    assert proc.read_file(f"{path}/data") == b"protected contents"
    session = _session(world, path)
    assert session.peer.retransmissions >= 1


def test_tampering_during_key_negotiation_fails_setup():
    """Corrupting the CONNECT/ENCRYPT exchange prevents the mount (the
    Rabin ciphertext or reply fails to decode) — never a bad session."""
    _world, _server, path, proc = build_world(
        lambda: TamperAdversary(target_index=3)
    )
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/data")


def test_replay_attack_rejected():
    _world, _server, path, proc = build_world(
        lambda: ReplayAdversary(replay_after=7, replay_index=6)
    )
    # The replayed record is dropped by the channel; the session then
    # either proceeds (replay ignored) or the flow errors out — but
    # never returns wrong data.
    try:
        data = proc.read_file(f"{path}/data")
        assert data == b"protected contents"
    except KernelError as exc:
        assert exc.errno == errno.EIO


def test_dropped_records_are_dos_only():
    """A dropped record permanently desynchronizes the cipher streams;
    the session detects the desync, re-keys over the same link, and the
    read still completes with the right bytes."""
    world, _server, path, proc = build_world(
        lambda: DropAdversary(target_index=6)
    )
    assert proc.read_file(f"{path}/data") == b"protected contents"
    session = _session(world, path)
    assert session.peer.retransmissions >= 1
    assert session.rekeys >= 1


def test_eavesdropper_sees_no_plaintext():
    recorder = RecordingAdversary()
    _world, server, path, proc = build_world(lambda: recorder)
    secret = b"extremely confidential bytes"
    pathops.write_file(server.fs, "/secret", secret)
    assert proc.read_file(f"{path}/secret") == secret
    wire = b"".join(record for _direction, record in recorder.transcript)
    assert secret not in wire
    assert b"confidential" not in wire


def test_encryption_off_leaks_plaintext():
    """Control experiment: with the channel in the paper's no-encryption
    evaluation mode, the same read IS visible on the wire."""
    world = World(seed=12)
    server = world.add_server("srv.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/secret", b"visible when unencrypted")
    recorder = RecordingAdversary()
    world.adversary_factory = lambda: recorder
    client = world.add_client("victim", encrypt=False)
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/secret") == b"visible when unencrypted"
    wire = b"".join(record for _direction, record in recorder.transcript)
    assert b"visible when unencrypted" in wire


def test_impersonating_server_rejected():
    """A server that answers with the wrong key fails the HostID check."""
    world = World(seed=13)
    real = world.add_server("real.example.com")
    real_path = real.export_fs()
    evil_world = World(seed=14)
    evil = evil_world.add_server("real.example.com")
    evil.export_fs()
    evil.master.config.prepend_rule("hijack", "default",
                                    lambda s, h, e: True)
    link = evil_world.connector("real.example.com", proto.SERVICE_FILESERVER)
    with pytest.raises(SecurityError):
        ServerSession.connect(
            link, real_path, EphemeralKeyCache(evil_world.rng),
            evil_world.rng,
        )


def test_forged_revocation_certificate_ignored():
    """An attacker without the private key cannot revoke a pathname."""
    from repro.core.revocation import make_revocation_certificate
    from repro.crypto.rabin import generate_key

    world = World(seed=15)
    server = world.add_server("victim.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/alive", b"still here")
    attacker_key = generate_key(768, world.rng)
    forged = make_revocation_certificate(attacker_key, "victim.example.com")
    # Even if the server operator is tricked into serving it, clients
    # verify: the embedded key does not hash to the victim's HostID.
    server.master._revocations[path.hostid] = forged
    client = world.add_client("c")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError):
        # The mount fails (the server refuses to serve while "revoked")
        # but crucially no :REVOKED: link appears for a forged cert.
        proc.read_file(f"{path}/alive")
    with pytest.raises(KernelError) as excinfo:
        proc.readlink(f"/sfs/{path.mount_name}")
    assert excinfo.value.errno in (errno.ENOENT, errno.EINVAL)


def test_nfs_baseline_is_tamperable_where_sfs_is_not():
    """Contrast: plain NFS accepts tampered data; SFS never does."""
    world = World(seed=16)
    server = world.add_server("srv.example.com")
    server.export_fs()
    pathops.write_file(server.fs, "/bench/data", b"A" * 64)

    from repro.sim.network import Adversary

    class PayloadFlipper(Adversary):
        """Flips bytes inside NFS READ replies (deep in the payload)."""

        def process(self, data, direction):
            if direction == "b->a" and len(data) > 120 and b"A" * 16 in data:
                index = data.index(b"A" * 16)
                corrupted = bytearray(data)
                corrupted[index] ^= 0xFF
                return [bytes(corrupted)]
            return [data]

    from repro.sim.network import link_pair
    from repro.nfs3.server import Nfs3Server
    from repro.nfs3.client import Nfs3Client
    from repro.rpc.peer import RpcPeer
    from repro.rpc.rpcmsg import AuthSys

    nfsd = Nfs3Server(server.fs)
    kernel_side, server_side = link_pair(world.clock, adversary=PayloadFlipper())
    RpcPeer(server_side, "nfsd").register(nfsd.program)
    client = Nfs3Client(RpcPeer(kernel_side, "kernel"), AuthSys(uid=0, gid=0))
    root = nfsd.root_handle()
    bench = client.lookup(root, "bench").object
    fh = client.lookup(bench, "data").object
    data = client.read(fh, 0, 64).data
    assert data != b"A" * 64, "NFS delivered tampered data undetected"
