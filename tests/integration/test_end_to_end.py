"""Full-stack integration: kernel -> sfscd -> secure channel -> sfssd ->
NFS -> MemFs, and the global-file-system-image properties of section 2.1."""

import errno

import pytest

from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError


def test_read_write_through_full_stack(standard_setup):
    _world, _server, path, _client, proc = standard_setup
    target = f"{path}/home/alice/file.txt"
    proc.write_file(target, b"end to end")
    assert proc.read_file(target) == b"end to end"
    st = proc.stat(target)
    assert st.uid == 1000 and st.size == 10


def test_directory_operations_remote(standard_setup):
    _world, _server, path, _client, proc = standard_setup
    base = f"{path}/home/alice"
    proc.makedirs(f"{base}/project/src")
    proc.write_file(f"{base}/project/src/main.c", b"int main(){}")
    proc.symlink("src/main.c", f"{base}/project/entry")
    assert proc.read_file(f"{base}/project/entry") == b"int main(){}"
    assert sorted(proc.readdir(f"{base}/project")) == ["entry", "src"]
    proc.rename(f"{base}/project/src/main.c", f"{base}/project/src/prog.c")
    assert proc.readdir(f"{base}/project/src") == ["prog.c"]


def test_same_name_on_every_client(standard_setup):
    """The global file system image: a second client machine sees the
    identical self-certifying pathname with no configuration."""
    world, _server, path, _client, proc = standard_setup
    proc.write_file(f"{path}/home/alice/shared", b"same everywhere")
    client2 = world.add_client("other-machine")
    client2.new_agent("guest", 5000)
    guest = client2.process(uid=5000)
    # anonymous read of a world-readable file, same pathname
    assert guest.read_file(f"{path}/public.txt") == b"world readable"


def test_server_authorizes_users_not_clients(standard_setup):
    """"Servers grant access to users, not to clients": alice's
    credentials work from any machine; strangers on the same machine get
    anonymous access."""
    world, server, path, client, proc = standard_setup
    proc.write_file(f"{path}/home/alice/private", b"alice only")
    proc.chmod(f"{path}/home/alice/private", 0o600)
    stranger = client.process(uid=7777)  # same client, no agent
    with pytest.raises(KernelError) as excinfo:
        stranger.read_file(f"{path}/home/alice/private")
    assert excinfo.value.errno == errno.EACCES


def test_multiple_servers_simultaneously(world):
    """Users can have accounts on multiple, independently administered
    servers and access them all from one client."""
    mit = world.add_server("sfs.lcs.mit.edu")
    mit_path = mit.export_fs()
    mit_user = mit.add_user("alice", uid=1000)
    pathops.write_file(mit.fs, "/campus", b"mit data")

    nyu = world.add_server("cs.nyu.edu")
    nyu_path = nyu.export_fs()
    nyu_user = nyu.add_user("am1234", uid=4242)
    pathops.write_file(nyu.fs, "/campus", b"nyu data")

    client = world.add_client("laptop")
    agent = client.new_agent("alice", 1000)
    agent.add_key(mit_user.key)
    agent.add_key(nyu_user.key)  # one agent, two identities
    proc = client.process(uid=1000)
    assert proc.read_file(f"{mit_path}/campus") == b"mit data"
    assert proc.read_file(f"{nyu_path}/campus") == b"nyu data"
    # Each remote file system got its own device number.
    assert proc.stat(str(mit_path)).fsid != proc.stat(str(nyu_path)).fsid


def test_sfs_listing_is_per_agent(standard_setup):
    world, _server, path, client, proc = standard_setup
    proc.readdir(str(path))  # ensure referenced
    assert path.mount_name in proc.readdir("/sfs")
    # A different user on the same client sees an empty /sfs.
    client.new_agent("bob", 2000)
    bob = client.process(uid=2000)
    assert path.mount_name not in bob.readdir("/sfs")
    # After bob references it, it appears in his listing too.
    bob.readdir(str(path))
    assert path.mount_name in bob.readdir("/sfs")


def test_pwd_returns_self_certifying_path(standard_setup):
    _world, _server, path, _client, proc = standard_setup
    proc.makedirs(f"{path}/home/alice/deep/dir")
    proc.chdir(f"{path}/home/alice/deep/dir")
    assert proc.getcwd() == f"{path}/home/alice/deep/dir"
    assert proc.getcwd().startswith("/sfs/sfs.lcs.mit.edu:")


def test_unknown_mount_name_is_noent(standard_setup):
    _world, _server, _path, _client, proc = standard_setup
    bogus = "/sfs/nonexistent.example.com:" + "2" * 32
    with pytest.raises(KernelError) as excinfo:
        proc.readdir(bogus)
    assert excinfo.value.errno == errno.ENOENT


def test_nonexistent_plain_name_is_noent(standard_setup):
    _world, _server, _path, _client, proc = standard_setup
    with pytest.raises(KernelError) as excinfo:
        proc.read_file("/sfs/unresolvable-name/file")
    assert excinfo.value.errno == errno.ENOENT


def test_anonymous_access_when_permitted(standard_setup):
    """Users without accounts fall back to anonymous credentials and can
    still read world-readable data (paper section 2.5)."""
    world, _server, path, _client, _proc = standard_setup
    client2 = world.add_client("kiosk")
    client2.new_agent("nobody", 999)  # agent with NO keys
    nobody = client2.process(uid=999)
    assert nobody.read_file(f"{path}/public.txt") == b"world readable"
    with pytest.raises(KernelError):
        nobody.write_file(f"{path}/public.txt", b"vandalism")


def test_write_visible_across_clients(standard_setup):
    world, server, path, _client, proc = standard_setup
    proc.write_file(f"{path}/home/alice/note", b"from laptop")
    client2 = world.add_client("desktop")
    alice_key = None
    # reuse alice's registered key by fetching it from the first agent
    first_client = next(iter(world.clients.values()))
    client2.new_agent("reader", 3000)
    reader = client2.process(uid=3000)
    proc.chmod(f"{path}/home/alice/note", 0o644)
    assert reader.read_file(f"{path}/home/alice/note") == b"from laptop"


def test_deep_paths_and_many_files(standard_setup):
    _world, _server, path, _client, proc = standard_setup
    base = f"{path}/home/alice"
    for index in range(20):
        proc.write_file(f"{base}/f{index:02d}", bytes([index]) * 100)
    names = proc.readdir(base)
    assert len([n for n in names if n.startswith("f")]) == 20
    assert proc.read_file(f"{base}/f07") == b"\x07" * 100
