"""Edge cases through the full stack: bad handles, big directories,
paging, baseline mounts, PRG-driven key generation."""

import errno

import pytest

from repro.core.server import make_sfs_cred
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.nfs3 import const as nfs_const
from repro.nfs3 import types as nfs_types


@pytest.fixture
def world():
    return World(seed=151)


@pytest.fixture
def stack(world):
    server = world.add_server("edge.example.com")
    path = server.export_fs()
    work = pathops.mkdirs(server.fs, "/w")
    server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    return world, server, path, client, proc


def test_corrupt_handle_through_relay(stack):
    """A forged/corrupted handle sent through the secure channel comes
    back NFS3ERR_BADHANDLE, not a crash or wrong file."""
    world, server, path, client, proc = stack
    proc.readdir(str(path))  # mount
    mount = client.sfscd._mounts[path.hostid]
    status, _body = mount.session.call_nfs(
        nfs_const.NFSPROC3_GETATTR,
        nfs_types.GetAttrArgs.make(object=b"\x13" * 24),
        0,
    )
    assert status == nfs_const.NFS3ERR_BADHANDLE


def test_large_directory_paging(stack):
    """300 entries exceed one READDIR reply; the kernel pages with
    cookies and sees every name exactly once."""
    _world, server, path, _client, proc = stack
    for index in range(300):
        pathops.write_file(server.fs, f"/w/big/entry{index:03d}", b"")
    names = proc.readdir(f"{path}/w/big")
    assert len(names) == 300
    assert len(set(names)) == 300
    assert "entry000" in names and "entry299" in names


def test_deep_nesting(stack):
    _world, _server, path, _client, proc = stack
    deep = f"{path}/w/" + "/".join(f"level{i}" for i in range(20))
    proc.makedirs(deep)
    proc.write_file(f"{deep}/leaf", b"deep down")
    assert proc.read_file(f"{deep}/leaf") == b"deep down"


def test_zero_byte_and_large_files(stack):
    _world, _server, path, _client, proc = stack
    proc.write_file(f"{path}/w/empty", b"")
    assert proc.read_file(f"{path}/w/empty") == b""
    blob = bytes(range(256)) * 300  # ~77 KB, many READ/WRITE RPCs
    proc.write_file(f"{path}/w/large", blob)
    assert proc.read_file(f"{path}/w/large") == blob


def test_filenames_with_odd_characters(stack):
    _world, _server, path, _client, proc = stack
    for name in ("with space", "UTF-8-ñäme", "trailing.", "-dash",
                 "a" * 200):
        proc.write_file(f"{path}/w/{name}", b"ok")
        assert proc.read_file(f"{path}/w/{name}") == b"ok"
    names = set(proc.readdir(f"{path}/w"))
    assert "with space" in names and "UTF-8-ñäme" in names


def test_rename_across_sfs_mounts_is_exdev(world, stack):
    _world, _server, path, client, proc = stack
    other = world.add_server("second.example.com")
    other_path = other.export_fs()
    work = pathops.mkdirs(other.fs, "/w")
    other.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    proc.write_file(f"{path}/w/src", b"x")
    with pytest.raises(KernelError) as excinfo:
        proc.rename(f"{path}/w/src", f"{other_path}/w/dst")
    assert excinfo.value.errno == errno.EXDEV


def test_plain_nfs_baseline_via_mount_protocol(world):
    """The benchmark baseline path: kernel MNTs and mounts over the wire."""
    server = world.add_server("nfs-base.example.com")
    server.export_fs()
    pathops.write_file(server.fs, "/exported", b"plain old nfs")
    client = world.add_client("c")
    client.mount_nfs("/remote", server)
    proc = client.root_process()
    assert proc.read_file("/remote/exported") == b"plain old nfs"
    proc.write_file("/remote/new", b"written over nfs")
    assert pathops.read_file(server.fs, "/new") == b"written over nfs"


def test_dss_prg_drives_key_generation():
    """The DSS PRG satisfies the rng interface everywhere (keys, SRP)."""
    from repro.crypto.prg import DSSRandom
    from repro.crypto.rabin import generate_key
    from repro.crypto.srp import SRPClient, SRPServer, Verifier

    rng = DSSRandom(b"deterministic seed for keygen")
    key = generate_key(640, rng)
    assert key.public_key.verify(b"m", key.sign(b"m"))
    verifier = Verifier.from_password("u", b"pw", rng, cost=2)
    client = SRPClient("u", b"pw", rng)
    server = SRPServer(verifier, rng)
    salt, B, cost = server.challenge(client.start())
    m2 = server.verify_client(client.process_challenge(salt, B, cost))
    client.verify_server(m2)
    assert client.session_key == server.session_key


def test_authno_for_unknown_number_is_anonymous(stack):
    """A forged authno in the cred field maps to anonymous, not to some
    other user's credentials."""
    _world, server, path, client, proc = stack
    proc.readdir(str(path))
    mount = client.sfscd._mounts[path.hostid]
    pathops.write_file(server.fs, "/w/protected", b"x")
    fs = server.fs
    inode = pathops.resolve(fs, "/w/protected")
    fs.setattr(inode.ino, Cred(0, 0), mode=0o600, uid=1000)
    # Forge authno 999 (never assigned): server must treat as anonymous.
    zero = bytes(24)
    status, body = mount.session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=zero, name=".")
        ),
        999,
    )
    assert status == nfs_const.NFS3_OK
    root_fh = body.object
    status, body = mount.session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=root_fh, name="w")
        ),
        999,
    )
    w_fh = body.object
    status, body = mount.session.call_nfs(
        nfs_const.NFSPROC3_LOOKUP,
        nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=w_fh, name="protected")
        ),
        999,
    )
    fh = body.object
    status, _ = mount.session.call_nfs(
        nfs_const.NFSPROC3_READ,
        nfs_types.ReadArgs.make(file=fh, offset=0, count=10),
        999,
    )
    assert status == nfs_const.NFS3ERR_ACCES
