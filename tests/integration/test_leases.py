"""Lease caching and server invalidation callbacks (paper section 3.3)."""

import pytest

from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.world import World


@pytest.fixture
def two_clients():
    world = World(seed=61)
    server = world.add_server("cache.example.com")
    path = server.export_fs(lease_duration=1000.0)
    work = pathops.mkdirs(server.fs, "/shared")
    server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    c1 = world.add_client("c1")
    c1.new_agent("u", 1000)
    p1 = c1.process(uid=1000)
    c2 = world.add_client("c2")
    c2.new_agent("u", 1000)
    p2 = c2.process(uid=1000)
    return world, server, path, c1, p1, c2, p2


def _mount_of(client, path):
    return client.sfscd._mounts[path.hostid]


def test_attribute_cache_absorbs_repeat_stats(two_clients):
    _world, _server, path, c1, p1, _c2, _p2 = two_clients
    p1.write_file(f"{path}/shared/f", b"data")
    mount = _mount_of(c1, path)
    before = mount.rpcs_relayed
    for _ in range(10):
        p1.stat(f"{path}/shared/f")
    absorbed = mount.caches.attrs.hits + mount.caches.lookups.hits
    assert absorbed > 0
    # Far fewer wire RPCs than the 10 stats would naively need.
    assert mount.rpcs_relayed - before < 10


def test_invalidation_callback_on_remote_write(two_clients):
    """When client 2 writes, the server calls back to client 1 (which
    has a lease) without waiting for acknowledgment."""
    _world, server, path, c1, p1, _c2, p2 = two_clients
    p1.write_file(f"{path}/shared/f", b"version 1")
    p1.stat(f"{path}/shared/f")  # c1 now caches attributes
    mount1 = _mount_of(c1, path)
    invalidations_before = mount1.caches.attrs.invalidations

    p2.write_file(f"{path}/shared/f", b"version 2 is longer")

    connection_count = len(server.master.rw_export(path.hostid).connections)
    assert connection_count == 2
    sent = sum(
        conn.invalidations_sent
        for conn in server.master.rw_export(path.hostid).connections
    )
    assert sent > 0, "server must have issued callbacks"
    # And client 1 sees fresh data + fresh attributes immediately.
    assert p1.read_file(f"{path}/shared/f") == b"version 2 is longer"
    assert p1.stat(f"{path}/shared/f").size == 19


def test_leases_expire_with_clock(two_clients):
    world, _server, path, c1, p1, _c2, _p2 = two_clients
    p1.write_file(f"{path}/shared/g", b"x")
    p1.stat(f"{path}/shared/g")
    mount = _mount_of(c1, path)
    hits_before = mount.caches.attrs.hits
    p1.stat(f"{path}/shared/g")
    assert mount.caches.attrs.hits > hits_before  # cache is live
    world.clock.advance(2000.0)  # beyond the lease
    misses_before = mount.caches.attrs.misses
    p1.stat(f"{path}/shared/g")
    assert mount.caches.attrs.misses > misses_before  # lease expired


def test_local_writes_invalidate_own_cache(two_clients):
    _world, _server, path, c1, p1, _c2, _p2 = two_clients
    p1.write_file(f"{path}/shared/h", b"short")
    assert p1.stat(f"{path}/shared/h").size == 5
    p1.write_file(f"{path}/shared/h", b"much longer contents")
    assert p1.stat(f"{path}/shared/h").size == 20


def test_caching_disabled_goes_to_server_every_time():
    world = World(seed=62)
    server = world.add_server("nocache.example.com")
    path = server.export_fs()
    work = pathops.mkdirs(server.fs, "/w")
    server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    client = world.add_client("c", caching=False)
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    proc.write_file(f"{path}/w/f", b"1")
    mount = client.sfscd._mounts[path.hostid]
    before = mount.rpcs_relayed
    for _ in range(5):
        proc.stat(f"{path}/w/f")
    assert mount.caches.attrs.hits == 0
    assert mount.rpcs_relayed - before >= 5


def test_access_cache_is_per_uid(two_clients):
    _world, _server, path, c1, p1, c2, _p2 = two_clients
    p1.write_file(f"{path}/shared/k", b"x")
    mount = _mount_of(c1, path)
    p1.access(f"{path}/shared/k", 0x1)
    hits_before = mount.caches.access.hits
    p1.access(f"{path}/shared/k", 0x1)
    assert mount.caches.access.hits > hits_before
    # A different uid's identical access query is a separate entry.
    c1.new_agent("v", 2000)
    other = c1.process(uid=2000)
    misses_before = mount.caches.access.misses
    other.access(f"{path}/shared/k", 0x1)
    assert mount.caches.access.misses > misses_before
