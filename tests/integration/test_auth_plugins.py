"""The extensibility claim, exercised: a brand-new multi-round user
authentication protocol added with zero file system changes (paper 2.5)."""

import pytest

from repro.core import proto
from repro.core.authplugins import (
    HMAC_PROTOCOL,
    HmacPasswordAgent,
    HmacPasswordProtocol,
    HmacRound1,
    wrap_envelope,
)
from repro.core.client import ServerSession
from repro.core.keyneg import EphemeralKeyCache
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World


@pytest.fixture
def world():
    return World(seed=91)


@pytest.fixture
def hmac_setup(world):
    server = world.add_server("plug.example.com")
    path = server.export_fs()
    server.authserver.add_account("dana", 1400, 100)
    home = pathops.mkdirs(server.fs, "/home/dana")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1400, gid=100)
    plugin = HmacPasswordProtocol(server.authserver, world.rng)
    plugin.enroll("dana", b"danas password")
    server.authserver.register_protocol(plugin)
    return server, path, plugin


def _session(world, path):
    link = world.connector(path.location, proto.SERVICE_FILESERVER)
    session = ServerSession.connect(
        link, path, EphemeralKeyCache(world.rng), world.rng
    )
    assert isinstance(session, ServerSession)
    return session


def test_multi_round_login_succeeds(world, hmac_setup):
    server, path, _plugin = hmac_setup
    agent = HmacPasswordAgent("dana", b"danas password")
    session = _session(world, path)
    authno = session.login(agent)
    assert authno != 0
    assert agent.rounds == 2  # round 1 + challenge response
    connection = server.master.rw_export(path.hostid).connections[-1]
    assert connection._authnos[authno].uid == 1400


def test_wrong_password_fails_and_logs(world, hmac_setup):
    server, path, _plugin = hmac_setup
    agent = HmacPasswordAgent("dana", b"wrong guess")
    session = _session(world, path)
    assert session.login(agent) == 0
    assert any("dana" in line for line in server.authserver.security_log)


def test_unknown_user_fails(world, hmac_setup):
    _server, path, _plugin = hmac_setup
    agent = HmacPasswordAgent("nobody", b"x")
    session = _session(world, path)
    assert session.login(agent) == 0


def test_unregistered_protocol_fails(world):
    server = world.add_server("bare.example.com")
    path = server.export_fs()
    agent = HmacPasswordAgent("dana", b"pw")  # server has no plugin
    session = _session(world, path)
    assert session.login(agent) == 0


def test_challenge_response_not_replayable(world, hmac_setup):
    """A recorded round-2 answer fails on a fresh session: the MAC binds
    the challenge, the AuthID, and the sequence number."""
    server, path, _plugin = hmac_setup
    agent = HmacPasswordAgent("dana", b"danas password")
    session1 = _session(world, path)
    # Drive round 1 by hand to capture the round-2 message.
    info = session1.authinfo_bytes()
    session1.auth_seqno += 1
    seqno1 = session1.auth_seqno
    disc, challenge = session1.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs,
        proto.LoginArgs.make(
            seqno=seqno1, authmsg=agent.sign_request(info, seqno1)
        ),
        proto.LoginRes,
    )
    assert disc == proto.LOGIN_MORE
    session1.auth_seqno += 1
    seqno2 = session1.auth_seqno
    round2 = agent.continue_auth(challenge, info, seqno2)
    # Replay the captured round-2 message on a NEW session.
    session2 = _session(world, path)
    disc, _ = session2.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs,
        proto.LoginArgs.make(seqno=seqno2, authmsg=round2),
        proto.LoginRes,
    )
    assert disc == proto.LOGIN_FAILED


def test_full_stack_with_plugin_agent(world, hmac_setup):
    """The kernel/automounter path works unchanged with the new agent."""
    _server, path, _plugin = hmac_setup
    client = world.add_client("laptop")
    client.sfscd.attach_agent(1400, HmacPasswordAgent("dana",
                                                      b"danas password"))
    proc = client.process(uid=1400)
    proc.write_file(f"{path}/home/dana/doc", b"via a protocol the file "
                                             b"system has never heard of")
    assert proc.stat(f"{path}/home/dana/doc").uid == 1400


def test_both_protocols_coexist(world, hmac_setup):
    """Public-key users and hmac-password users share one server."""
    server, path, _plugin = hmac_setup
    pk_user = server.add_user("pk-user", uid=1500)
    home = pathops.mkdirs(server.fs, "/home/pk-user")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1500, gid=100)
    client = world.add_client("shared")
    client.sfscd.attach_agent(1400, HmacPasswordAgent("dana",
                                                      b"danas password"))
    pk_proc = client.login_user("pk-user", pk_user.key, uid=1500)
    dana_proc = client.process(uid=1400)
    pk_proc.write_file(f"{path}/home/pk-user/a", b"1")
    dana_proc.write_file(f"{path}/home/dana/b", b"2")
    assert pk_proc.stat(f"{path}/home/pk-user/a").uid == 1500
    assert dana_proc.stat(f"{path}/home/dana/b").uid == 1400


def test_garbage_envelope_fails_cleanly(world, hmac_setup):
    _server, path, _plugin = hmac_setup
    session = _session(world, path)
    disc, _ = session.peer.call(
        proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
        proto.LoginArgs,
        proto.LoginArgs.make(
            seqno=1, authmsg=wrap_envelope(HMAC_PROTOCOL, b"not xdr"),
        ),
        proto.LoginRes,
    )
    assert disc == proto.LOGIN_FAILED
