"""Dropped-record recovery, end to end.

The paper's threat model grants the attacker the whole network, and its
guarantee is that "attackers can do no worse than delay the file
system's operation".  A dropped or duplicated record permanently
desynchronizes the channel's cipher streams, so making that guarantee
real takes the whole recovery stack: MAC-failure detection, RPC
retransmission with a duplicate-reply cache, and the plaintext-control
resync handshake with an authenticated REKEY.  These tests run it all
together over seeded fault-injection adversaries.
"""

import random

import pytest

from repro.core import proto
from repro.core.channel import RESYNC_REQUEST, make_control_record
from repro.core.server import ZERO_HANDLE, make_sfs_cred
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.nfs3 import const as nfs_const
from repro.nfs3 import types as nfs_types
from repro.rpc import rpcmsg
from repro.sim.network import (
    Adversary,
    ChaosAdversary,
    DropAdversary,
    RecordingAdversary,
)


def lossy_world(seed, **rates):
    """A one-server world whose every dialed link runs a seeded
    ChaosAdversary.  Returns (world, server, path, proc, adversaries)."""
    world = World(seed=seed)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    adversaries = []

    def factory():
        adversary = ChaosAdversary(random.Random(seed + len(adversaries)),
                                   **rates)
        adversaries.append(adversary)
        return adversary

    world.adversary_factory = factory
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    return world, server, path, proc, adversaries


def session_for(world, path, hostname="laptop"):
    return world.clients[hostname].sfscd._mounts[path.hostid].session


def server_connections(server, path):
    return server.master._rw[path.hostid].connections


def test_workload_completes_over_lossy_network():
    """The acceptance scenario: ~1% of records dropped or corrupted, a
    full multi-file read/write workload still completes — no permanent
    RpcTimeout ever surfaces, because retransmission and re-keying
    absorb every loss."""
    world, server, path, proc, adversaries = lossy_world(
        30, drop_rate=0.01, corrupt_rate=0.01, duplicate_rate=0.005
    )
    base = f"{path}/home/alice"
    contents = {}
    for index in range(12):
        name = f"{base}/file-{index:02d}.dat"
        data = bytes((index * 37 + offset) % 256 for offset in range(512))
        proc.write_file(name, data)       # would raise KernelError on
        contents[name] = data             # an unrecovered RpcTimeout
    proc.makedirs(f"{base}/nested/deeper")
    proc.write_file(f"{base}/nested/deeper/leaf", b"still here")
    contents[f"{base}/nested/deeper/leaf"] = b"still here"
    for name, expected in contents.items():
        assert proc.read_file(name) == expected

    assert sum(a.faults for a in adversaries) > 0, "adversary never fired"
    session = session_for(world, path)
    rejected = session.channel.rejected_records + sum(
        connection.pipe.lower.rejected_records
        for connection in server_connections(server, path)
        if connection.pipe.lower is not connection.pipe.raw
    )
    assert rejected > 0
    assert session.peer.retransmissions > 0
    # At least one loss desynchronized the streams badly enough that
    # only a re-keying brought them back:
    assert session.rekeys >= 1


def test_recovery_events_visible_in_metrics_snapshot():
    """Every recovery event the surrounding tests assert on via object
    attributes also lands in the world registry's exported snapshot —
    the counters an operator would actually watch (see
    docs/OBSERVABILITY.md).  Channel objects are replaced on re-keying,
    so the registry, which outlives them, is the only place the full
    story accumulates."""
    world, server, path, proc, adversaries = lossy_world(
        30, drop_rate=0.01, corrupt_rate=0.01, duplicate_rate=0.005
    )
    base = f"{path}/home/alice"
    for index in range(12):
        data = bytes((index * 37 + offset) % 256 for offset in range(512))
        proc.write_file(f"{base}/file-{index:02d}.dat", data)
    session = session_for(world, path)
    metrics = world.metrics.snapshot()["metrics"]
    # Fault injection: the link diffs the adversary's output, so the
    # registry agrees exactly with the adversaries' own fault counts.
    assert metrics["net.faults.dropped"] == \
        sum(a.dropped for a in adversaries) > 0
    assert metrics["net.faults.tampered"] == \
        sum(a.corrupted for a in adversaries)
    assert metrics["net.faults.injected"] == \
        sum(a.duplicated for a in adversaries)
    # Client-side recovery, mirrored from the session's attributes.
    assert metrics["session.rekeys"] == session.rekeys >= 1
    assert metrics["session.resyncs"] >= session.rekeys
    assert metrics["rpc.retransmissions"] >= \
        session.peer.retransmissions > 0
    # MAC rejects accumulate across channel generations (each rekey
    # installs a fresh SecureChannel whose int counter restarts at 0).
    rejected_now = session.channel.rejected_records + sum(
        connection.pipe.lower.rejected_records
        for connection in server_connections(server, path)
        if connection.pipe.lower is not connection.pipe.raw
    )
    assert metrics["channel.mac_reject"] >= rejected_now
    assert metrics["channel.mac_reject"] > 0
    # Server-side view of the same recoveries.
    assert metrics["server.resyncs_served"] >= session.rekeys
    assert metrics["server.rekeys"] == sum(
        connection.rekeys for connection in server_connections(server, path)
    ) >= 1


def test_burst_loss_recovered_by_rekeying():
    """A burst that eats several records in a row is exactly the case
    plain retransmission cannot fix alone."""
    world, _server, path, proc, _adversaries = lossy_world(
        5, drop_rate=0.04
    )
    base = f"{path}/home/alice"
    for index in range(8):
        proc.write_file(f"{base}/burst-{index}", bytes([index]) * 128)
    for index in range(8):
        assert proc.read_file(f"{base}/burst-{index}") == bytes([index]) * 128
    assert session_for(world, path).rekeys >= 1


def test_resync_on_healthy_channel_swaps_keys():
    """resync() is safe to run at any time: fresh keys, same session."""
    world = World(seed=77)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"before and after")
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/data") == b"before and after"
    session = session_for(world, path)
    old_keys = session.session_keys
    assert session.resync()
    assert session.rekeys == 1
    assert session.session_keys is not old_keys
    assert session.session_keys.kcs != old_keys.kcs
    (connection,) = server_connections(server, path)
    assert connection.rekeys == 1
    assert connection.resyncs_served == 1
    assert proc.read_file(f"{path}/data") == b"before and after"


def test_authentication_survives_rekey():
    """Authnos persist across a re-keying: the REKEY was authenticated
    under the old SessionID, so the server knows it is the same client
    and no new LOGIN round is needed."""
    world = World(seed=78)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    private = f"{path}/home/alice/private"
    proc.write_file(private, b"alice only")
    proc.chmod(private, 0o600)

    session = session_for(world, path)
    mount = world.clients["laptop"].sfscd._mounts[path.hostid]
    authnos_before = dict(mount._authnos)
    assert authnos_before.get(1000, 0) != 0  # genuinely authenticated
    calls_before = session.peer.calls_sent
    assert session.resync()
    # The still-cached authno keeps working against the re-keyed channel:
    assert proc.read_file(private) == b"alice only"
    assert mount._authnos == authnos_before
    login_calls = [
        key for key in session.peer.proc_counts
        if key == (proto.SFS_RW_PROGRAM, proto.PROC_LOGIN)
    ]
    assert session.peer.proc_counts.get(
        (proto.SFS_RW_PROGRAM, proto.PROC_LOGIN), 0
    ) == 1, f"unexpected re-login after rekey ({login_calls})"
    assert session.peer.calls_sent > calls_before  # read really went out


def test_forged_rekey_denied():
    """An attacker who cannot compute the SessionID HMAC cannot swap
    their own keys into the session."""
    world = World(seed=79)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"protected contents")
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/data") == b"protected contents"
    session = session_for(world, path)
    disc, body = session.peer.call(
        proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION, proto.PROC_REKEY,
        proto.RekeyArgs,
        proto.RekeyArgs.make(
            client_pubkey=b"\x07" * 64,
            encrypted_keyhalves=b"\x0b" * 64,
            auth=b"\x00" * 20,  # not the SessionID HMAC
        ),
        proto.RekeyRes,
    )
    assert disc == proto.REKEY_DENIED
    (connection,) = server_connections(server, path)
    assert connection.rekeys_denied == 1
    assert connection.rekeys == 0
    # Nothing changed: the original keys still carry traffic.
    assert proc.read_file(f"{path}/data") == b"protected contents"


def test_forged_resync_request_is_dos_only():
    """Anyone can inject the plaintext RESYNC-REQ — it is unauthenticated
    by design — but all it buys is a recoverable hiccup: the server
    falls back, the client notices, and the authenticated REKEY restores
    service with no attacker in the middle."""
    world = World(seed=80)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"protected contents")
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/data") == b"protected contents"
    session = session_for(world, path)
    # Inject the forged control record straight onto the raw link, as a
    # network attacker would:
    session.pipe.raw.send(make_control_record(RESYNC_REQUEST))
    (connection,) = server_connections(server, path)
    assert connection.resyncs_served == 1  # server fell for it
    # ... yet the client recovers and the data is still right:
    assert proc.read_file(f"{path}/data") == b"protected contents"
    assert session.rekeys >= 1


def test_forged_resync_window_rejects_plaintext_session_calls():
    """While the plaintext fallback a forged RESYNC-REQ opens is in
    effect, the session dialect is withdrawn: an attacker who follows
    the forgery with a plaintext NFS call under a guessed authno gets
    PROG_UNAVAIL, never file service — the fallback window really is
    DoS-only, not an authentication or confidentiality hole."""
    world = World(seed=82)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"protected contents")
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/data") == b"protected contents"
    session = session_for(world, path)
    (connection,) = server_connections(server, path)
    export = server.master._rw[path.hostid]
    served_before = connection.peer.calls_served
    relayed_before = export.nfs_client.peer.calls_sent
    # Step 1: the forged control record drops the server to plaintext.
    session.pipe.raw.send(make_control_record(RESYNC_REQUEST))
    assert connection.resyncs_served == 1
    # Step 2: the attacker speaks the session dialect in plaintext with
    # a guessed authno (authnos are small sequential ints).  The
    # mount-convention LOOKUP needs no stolen handle, so before the
    # fallback window withdrew the dialect it leaked the root handle.
    arg_codec, _res_codec = proto.NFS_PROC_CODECS[nfs_const.NFSPROC3_LOOKUP]
    forged = rpcmsg.pack_call(
        rpcmsg.CallHeader(
            0xADBEEF, proto.SFS_RW_PROGRAM, proto.SFS_VERSION,
            nfs_const.NFSPROC3_LOOKUP, cred=make_sfs_cred(1),
        ),
        arg_codec.pack(nfs_types.LookupArgs.make(
            what=nfs_types.DirOpArgs.make(dir=ZERO_HANDLE, name=".")
        )),
    )
    session.pipe.raw.send(forged)
    # Not executed: no registered procedure ran and nothing reached the
    # local NFS server, so no reply can have carried file system state.
    assert connection.peer.calls_served == served_before
    assert export.nfs_client.peer.calls_sent == relayed_before
    # The real client still recovers; the attacker bought only delay.
    assert proc.read_file(f"{path}/data") == b"protected contents"
    assert session.rekeys >= 1
    assert connection.peer.calls_served > served_before


def test_failed_resync_never_downgrades_to_plaintext():
    """When every resync round fails — an attacker can force this by
    denying the REKEYs — the session must reinstall the channel and
    surface an error, never keep relaying calls over the raw transport
    in cleartext."""
    world = World(seed=83)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    secret = b"never in the clear"
    pathops.write_file(server.fs, "/secret", secret)
    recorder = RecordingAdversary()
    world.adversary_factory = lambda: recorder
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/secret") == secret
    session = session_for(world, path)
    good_key = session.server_public_key
    # Sabotage every REKEY: key halves sealed to the wrong public key
    # are rejected by the server, so each round ends REKEY_DENIED.
    session.server_public_key = session.ephemeral_keys.current().public_key
    assert session.resync() is False
    assert session.resyncs_failed >= 1
    # The channel — broken or not — is back in front of the raw
    # transport, so data records cannot flow in plaintext ...
    assert session.pipe.lower is session.channel
    # ... and calls fail with an error instead of silently downgrading.
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/secret")
    # No session-dialect RPC ever crossed the wire in the clear:
    wire = b"".join(record for _direction, record in recorder.transcript)
    assert secret not in wire
    for _direction, record in recorder.transcript:
        try:
            message = rpcmsg.parse_message(record)
        except Exception:  # noqa: BLE001 - ciphertext does not parse
            continue
        if message.mtype == rpcmsg.CALL and message.call is not None:
            assert message.call.prog != proto.SFS_RW_PROGRAM, \
                "session call left the client in plaintext"
    # Repair the key and the same session recovers on the same link.
    session.server_public_key = good_key
    assert session.resync()
    assert proc.read_file(f"{path}/secret") == secret


def test_abandoned_handshake_link_is_closed_and_pruned():
    """A handshake stranded by a lost ENCRYPT reply is redialed from
    scratch; the abandoned link is closed, and the server drops its
    half-open connection at the next lease fan-out instead of
    broadcasting invalidations to a dead link forever."""
    world = World(seed=84)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    adversaries = []

    def factory():
        # First dial: eat the ENCRYPT reply (the second server->client
        # record) after the server has already armed its channel and
        # listed the connection; every later dial runs clean.
        adversary = (DropAdversary(target_index=1, direction="b->a")
                     if not adversaries else Adversary())
        adversaries.append(adversary)
        return adversary

    world.adversary_factory = factory
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    proc.write_file(f"{path}/home/alice/file", b"contents")
    assert len(adversaries) >= 2, "the redial never happened"
    assert not world.links[0].is_open, "abandoned link left open"
    # The write's lease fan-out pruned the half-open ghost connection:
    export = server.master._rw[path.hostid]
    assert len(export.connections) == 1
    assert all(connection.alive for connection in export.connections)


def test_eavesdropper_sees_no_plaintext_across_rekey():
    """Records before and after a re-keying leak nothing: the new keys
    come from a full re-run of the figure-3 negotiation."""
    world = World(seed=81)
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    recorder = RecordingAdversary()
    world.adversary_factory = lambda: recorder
    client = world.add_client("laptop")
    client.new_agent("user", 1000)
    proc = client.process(uid=1000)
    secret_before = b"confidential before rekey"
    secret_after = b"confidential after rekey"
    pathops.write_file(server.fs, "/one", secret_before)
    pathops.write_file(server.fs, "/two", secret_after)
    assert proc.read_file(f"{path}/one") == secret_before
    session = session_for(world, path)
    assert session.resync()
    assert proc.read_file(f"{path}/two") == secret_after
    wire = b"".join(record for _direction, record in recorder.transcript)
    assert secret_before not in wire
    assert secret_after not in wire
    assert b"confidential" not in wire
