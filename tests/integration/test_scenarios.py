"""The scenario engine, run for real.

The shipped chaos deck is exercised by CI's scenario matrix; what these
tests pin is the engine contract itself: a scenario compiles, runs to
completion on the virtual clock, evaluates its assertion set, writes a
machine-readable artifact — and, above all, is **deterministic**: one
seed, one world, one digest, run after run.

The chaos-mixed case is the issue's combined-fault test: a crash point,
an adversary window, and a replica outage all land inside one run under
closed-loop load, and every operation must still complete — on two
different seeds, reproducibly.
"""

import json

import pytest

from repro.scenario import get_scenario, run_scenario

CHAOS_SEEDS = (2026, 31337)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_mixed_completes_every_op_deterministically(seed):
    """Crash point + adversary window + replica outage at once: the
    closed loop still completes every offered op, with a digest that is
    a pure function of the seed."""
    spec = get_scenario("chaos-mixed")
    first = run_scenario(spec, seed=seed)
    assert first.passed, first.failures
    assert first.totals["errors"] == 0
    assert first.totals["completed"] == first.totals["offered"]
    # The chaos actually happened; this did not pass by being idle.
    fired = {event["type"] for event in first.artifact["scenario"]["events"]}
    assert "adversary" in fired
    counters = first.artifact["metrics"]["metrics"]
    assert counters.get("scenario.crashes", 0) >= 1
    # Same seed, fresh world: bit-for-bit the same run.
    second = run_scenario(spec, seed=seed)
    assert second.digest == first.digest
    assert second.totals == first.totals


def test_different_seeds_are_different_runs():
    spec = get_scenario("chaos-mixed")
    digests = {run_scenario(spec, seed=seed).digest
               for seed in CHAOS_SEEDS}
    assert len(digests) == 2


def test_run_scenario_accepts_a_plain_dict():
    result = run_scenario({
        "name": "inline",
        "workload": {
            "clients": 2,
            "phases": [{"name": "only", "ops_per_client": 3}],
        },
        "assertions": [
            {"check": "drain"},
            {"check": "all_ops_complete"},
        ],
    })
    assert result.passed, result.failures
    assert result.totals["offered"] == 6
    assert result.totals["completed"] == 6


def test_failed_assertion_fails_the_run_with_a_reason():
    result = run_scenario({
        "name": "doomed",
        "workload": {
            "clients": 1,
            "phases": [{"name": "only", "ops_per_client": 2}],
        },
        "assertions": [
            {"check": "counter", "name": "scenario.crashes",
             "op": ">=", "value": 1},
        ],
    })
    assert not result.passed
    assert result.failures
    assert "scenario.crashes" in result.failures[0]


def test_artifact_written_and_self_describing(tmp_path):
    spec = get_scenario("restart-flap")
    result = run_scenario(spec, out_dir=str(tmp_path))
    assert result.passed, result.failures
    assert result.artifact_path is not None
    with open(result.artifact_path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    assert artifact["meta"]["scenario"] == "restart-flap"
    assert artifact["meta"]["seed"] == spec.seed
    assert artifact["scenario"]["digest"] == result.digest
    entries = artifact["scenario"]["assertions"]
    assert all(entry["passed"] for entry in entries)
    checks = [entry["check"] for entry in entries]
    assert "collector_flaps" in checks
    # The flap evidence itself rode along in the metrics snapshot.
    assert artifact["metrics"]["metrics"]["control.collector.flaps"] == 2


def test_rollover_scenario_retargets_under_load():
    """The deck's rollover case doubles as the redial-reverification
    regression: the pass requires session.retargets >= 1 and a handle
    refresh, which only happen if redialing clients followed the
    pointer onto the new HostID."""
    result = run_scenario(get_scenario("rollover-under-load"))
    assert result.passed, result.failures
    counters = result.artifact["metrics"]["metrics"]
    assert counters.get("session.retargets", 0) >= 1
    assert counters.get("scenario.handle_refreshes", 0) >= 1
