"""The read-only dialect end to end: CAs, mirrors, tampering detection."""

import errno

import pytest

from repro.core.readonly import publish
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs
from repro.kernel.vfs import KernelError
from repro.kernel.world import World


@pytest.fixture
def world():
    return World(seed=51)


def make_image(world, location="ro.example.com"):
    key = generate_key(768, world.rng)
    fs = MemFs()
    pathops.write_file(fs, "/docs/guide.txt", b"how to use sfs")
    pathops.write_file(fs, "/docs/big.bin", bytes(range(256)) * 64)
    pathops.symlink(fs, "/current", "docs")
    return publish(fs, key, location), key


def test_mount_and_read_readonly(world):
    image, _key = make_image(world)
    host = world.add_server("ro.example.com")
    path = host.master.add_ro_export(image)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/docs/guide.txt") == b"how to use sfs"
    assert proc.read_file(f"{path}/current/guide.txt") == b"how to use sfs"
    assert sorted(proc.readdir(f"{path}/docs")) == ["big.bin", "guide.txt"]
    st = proc.stat(f"{path}/docs/big.bin")
    assert st.size == 256 * 64
    assert proc.lstat(f"{path}/current").is_symlink


def test_readonly_rejects_writes(world):
    image, _key = make_image(world)
    host = world.add_server("ro.example.com")
    path = host.master.add_ro_export(image)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    proc.readdir(str(path))  # mount
    with pytest.raises(KernelError) as excinfo:
        proc.write_file(f"{path}/newfile", b"nope")
    assert excinfo.value.errno == errno.EROFS
    with pytest.raises(KernelError):
        proc.unlink(f"{path}/docs/guide.txt")
    with pytest.raises(KernelError):
        proc.mkdir(f"{path}/newdir")


def test_untrusted_mirror_serves_verified_data(world):
    image, _key = make_image(world)
    mirror = world.add_server("volunteer.mirror.net")
    path = mirror.master.add_ro_export(image.replicate())
    world.route("ro.example.com", mirror)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/docs/guide.txt") == b"how to use sfs"


def test_tampered_mirror_detected(world):
    image, _key = make_image(world)
    evil = image.replicate()
    for digest, blob in list(evil.store.items()):
        if b"how to use sfs" in blob:
            evil.store[digest] = blob.replace(b"sfs", b"nfs")
    mirror = world.add_server("evil.mirror.net")
    path = mirror.master.add_ro_export(evil)
    world.route("ro.example.com", mirror)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/docs/guide.txt")


def test_mirror_with_wrong_signature_rejected_at_mount(world):
    image, _key = make_image(world)
    evil = image.replicate()
    evil.signature = bytes(len(evil.signature))
    mirror = world.add_server("bad.mirror.net")
    path = mirror.master.add_ro_export(evil)
    world.route("ro.example.com", mirror)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError) as excinfo:
        proc.readdir(str(path))
    assert excinfo.value.errno == errno.ENOENT  # mount refused


def test_new_version_republish(world):
    key = generate_key(768, world.rng)
    fs = MemFs()
    pathops.write_file(fs, "/version", b"v1")
    image1 = publish(fs, key, "rel.example.com", serial=1)
    pathops.write_file(fs, "/version", b"v2")
    image2 = publish(fs, key, "rel.example.com", serial=2)
    assert image1.root_digest != image2.root_digest
    assert image2.serial == 2
    host = world.add_server("rel.example.com")
    path = host.master.add_ro_export(image2)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/version") == b"v2"


def test_readonly_and_readwrite_coexist(world):
    """One server master serves both dialects side by side."""
    host = world.add_server("multi.example.com")
    rw_path = host.export_fs()
    pathops.write_file(host.fs, "/rw-file", b"writable world")
    image, _key = make_image(world, location="multi.example.com")
    ro_path = host.master.add_ro_export(image)
    assert rw_path.hostid != ro_path.hostid
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{rw_path}/rw-file") == b"writable world"
    assert proc.read_file(f"{ro_path}/docs/guide.txt") == b"how to use sfs"
