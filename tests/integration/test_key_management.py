"""The key-management schemes of section 2.4, each exercised end to end.

The point of the paper: all of these coexist on one file system, none
needed file system support, and they compose ("people can bootstrap one
key management mechanism using another").
"""

import errno

import pytest

from repro.core import sfskey
from repro.core.pathnames import parse_path
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.keymgmt import (
    CertificationAuthority,
    SslBridgeResolver,
    SslDirectory,
    bookmark,
    cd_bookmark,
    install_link,
    make_secure_link,
    resolve_secure_link,
    set_certification_path,
)


@pytest.fixture
def world():
    return World(seed=31)


def make_server(world, location, files=None):
    server = world.add_server(location)
    path = server.export_fs()
    for name, body in (files or {}).items():
        pathops.write_file(server.fs, name, body)
    return server, path


# --- manual key distribution -----------------------------------------------

def test_manual_key_distribution(world):
    _server, path = make_server(world, "corp.example.com",
                                {"/users/ann/notes": b"ann's notes"})
    client = world.add_client("desktop")
    install_link(client.root_process(), "/fs", path)
    client.new_agent("ann", 1000)
    ann = client.process(uid=1000)
    # "Users in that environment would simply refer to files as /fs/..."
    assert ann.read_file("/fs/users/ann/notes") == b"ann's notes"
    assert resolve_secure_link(ann, "/fs") == path


# --- secure links ------------------------------------------------------------

def test_secure_links_cross_servers(world):
    server_a, path_a = make_server(world, "a.example.com")
    _server_b, path_b = make_server(world, "b.example.com",
                                    {"/shared/doc": b"on server b"})
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    # A symlink ON server a pointing AT server b's self-certifying path.
    pathops.symlink(server_a.fs, "/partner",
                    str(path_b) + "/shared")
    assert proc.read_file(f"{path_a}/partner/doc") == b"on server b"


# --- secure bookmarks -----------------------------------------------------------

def test_bookmark_and_cd(world):
    _server, path = make_server(world, "research.example.com",
                                {"/lab/results": b"data"})
    client = world.add_client("c")
    root = client.root_process()
    root.makedirs("/home/u1000")
    root.chown("/home/u1000", 1000, 100)
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    proc.chdir(f"{path}/lab")
    link = bookmark(proc)
    assert link.endswith("/research.example.com")
    # Later, "cd research.example.com" returns securely.
    proc.chdir("/")
    cwd = cd_bookmark(proc, "research.example.com")
    assert cwd == str(path)
    assert proc.read_file("lab/results") == b"data"


def test_bookmark_outside_sfs_rejected(world):
    from repro.keymgmt import BookmarkError

    client = world.add_client("c")
    proc = client.root_process()
    proc.makedirs("/plain")
    proc.chdir("/plain")
    with pytest.raises(BookmarkError):
        bookmark(proc)


# --- certification authorities + certification paths ------------------------------

def test_ca_certification_path_and_composition(world):
    _acme, acme_path = make_server(world, "acme.com",
                                   {"/catalog": b"anvils"})
    ca = CertificationAuthority("verisign.com", world.rng)
    ca.certify("acme", acme_path)
    ca_host = world.add_server("verisign.com")
    ca_path = ca_host.master.add_ro_export(ca.publish_image())

    client = world.add_client("c")
    install_link(client.root_process(), "/verisign", ca_path)
    agent = client.new_agent("u", 1000)
    set_certification_path(agent, ["/verisign"])
    proc = client.process(uid=1000)

    # Browsing through the CA link...
    assert proc.read_file("/verisign/acme/catalog") == b"anvils"
    # ...and through the agent's certification path (bare /sfs names).
    assert proc.read_file("/sfs/acme/catalog") == b"anvils"
    # The manufactured symlink is visible (and user-scoped).
    assert "acme" in proc.readdir("/sfs")
    other = client.process(uid=2000)
    assert "acme" not in other.readdir("/sfs")


def test_certification_path_bootstraps_from_password(world):
    """Composition: a symlink retrieved via password auth (sfskey) can
    serve as a certification-path entry for other names."""
    server, path = make_server(world, "sfs.lcs.mit.edu")
    _acme, acme_path = make_server(world, "acme.com", {"/x": b"1"})
    # The MIT server's admins maintain a links directory.
    pathops.symlink(server.fs, "/links/acme", str(acme_path))

    server.authserver._unix_passwords["alice"] = "unix"
    enrolment = sfskey.prepare_enrolment("alice", b"pw", world.rng)
    sfskey.register(world.connector, "sfs.lcs.mit.edu", enrolment,
                    "unix", world.rng)

    client = world.add_client("c")
    agent = client.new_agent("alice", 1000)
    sfskey.add(world.connector, agent, "alice", "sfs.lcs.mit.edu",
               b"pw", world.rng)
    # Use the password-derived link as a certification path root.
    set_certification_path(agent, ["/sfs/sfs.lcs.mit.edu/links"])
    proc = client.process(uid=1000)
    assert proc.read_file("/sfs/acme/x") == b"1"


# --- password authentication (sfskey) -----------------------------------------------

def test_sfskey_travel_flow(world):
    server, path = make_server(world, "sfs.lcs.mit.edu")
    server.authserver._unix_passwords["alice"] = "unixpw"
    enrolment = sfskey.prepare_enrolment("alice", b"travelpw", world.rng)
    sfskey.register(world.connector, "sfs.lcs.mit.edu", enrolment,
                    "unixpw", world.rng)
    record = server.authserver.local_db.lookup_user("alice")
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=record.uid, gid=100)

    lab = world.add_client("lab-machine")
    agent = lab.new_agent("alice", record.uid)
    result = sfskey.add(world.connector, agent, "alice",
                        "sfs.lcs.mit.edu", b"travelpw", world.rng)
    assert parse_path(result.pathname) == path
    assert agent.key_count == 1
    proc = lab.process(uid=record.uid)
    proc.write_file("/sfs/sfs.lcs.mit.edu/home/alice/work", b"done")
    assert proc.stat(f"{path}/home/alice/work").uid == record.uid


def test_sfskey_wrong_password(world):
    server, _path = make_server(world, "sfs.lcs.mit.edu")
    server.authserver._unix_passwords["alice"] = "unixpw"
    enrolment = sfskey.prepare_enrolment("alice", b"right", world.rng)
    sfskey.register(world.connector, "sfs.lcs.mit.edu", enrolment,
                    "unixpw", world.rng)
    client = world.add_client("c")
    agent = client.new_agent("alice", 1000)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.add(world.connector, agent, "alice", "sfs.lcs.mit.edu",
                   b"wrong", world.rng)
    assert agent.key_count == 0


def test_sfskey_unknown_user(world):
    make_server(world, "sfs.lcs.mit.edu")
    client = world.add_client("c")
    agent = client.new_agent("ghost", 1000)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.add(world.connector, agent, "ghost", "sfs.lcs.mit.edu",
                   b"pw", world.rng)


def test_register_requires_unix_password(world):
    make_server(world, "sfs.lcs.mit.edu")
    enrolment = sfskey.prepare_enrolment("eve", b"pw", world.rng)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.register(world.connector, "sfs.lcs.mit.edu", enrolment,
                        "guessed", world.rng)


# --- external PKI bridge ----------------------------------------------------------------

def test_ssl_bridge_resolver(world):
    _server, path = make_server(world, "shop.example.com",
                                {"/store": b"open for business"})
    host_key = world.servers["shop.example.com"].master.rw_export(
        path.hostid
    ).key
    ssl_ca_key = generate_key(768, world.rng)
    directory = SslDirectory(ssl_ca_key)
    directory.issue("shop.example.com", host_key.public_key)

    client = world.add_client("c")
    agent = client.new_agent("u", 1000)
    resolver = SslBridgeResolver(directory, ssl_ca_key.public_key)
    agent.add_resolver(resolver)
    proc = client.process(uid=1000)
    assert proc.read_file("/sfs/shop.example.com.ssl/store") == (
        b"open for business"
    )
    assert resolver.resolutions == 1


def test_ssl_bridge_rejects_untrusted_ca(world):
    _server, path = make_server(world, "shop.example.com", {"/store": b"x"})
    host_key = world.servers["shop.example.com"].master.rw_export(
        path.hostid
    ).key
    rogue_ca = generate_key(768, world.rng)
    trusted_ca = generate_key(768, world.rng)
    directory = SslDirectory(rogue_ca)  # certificates signed by rogue
    directory.issue("shop.example.com", host_key.public_key)
    client = world.add_client("c")
    agent = client.new_agent("u", 1000)
    resolver = SslBridgeResolver(directory, trusted_ca.public_key)
    agent.add_resolver(resolver)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError) as excinfo:
        proc.read_file("/sfs/shop.example.com.ssl/store")
    assert excinfo.value.errno == errno.ENOENT
    assert resolver.rejected == 1
