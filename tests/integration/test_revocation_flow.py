"""Revocation, forwarding pointers, and HostID blocking, end to end
(paper section 2.6)."""

import errno

import pytest

from repro.core.revocation import (
    REVOKED_LINK_TARGET,
    make_forwarding_pointer,
    make_revocation_certificate,
)
from repro.fs import pathops
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.keymgmt import (
    CertificationAuthority,
    install_link,
    set_revocation_directories,
)


@pytest.fixture
def world():
    return World(seed=41)


def make_server(world, location, files=None):
    server = world.add_server(location)
    path = server.export_fs()
    for name, body in (files or {}).items():
        pathops.write_file(server.fs, name, body)
    key = server.master.rw_export(path.hostid).key
    return server, path, key


def test_server_announced_revocation(world):
    server, path, key = make_server(world, "gone.example.com",
                                    {"/f": b"old"})
    cert = make_revocation_certificate(key, "gone.example.com")
    server.master.set_revocation(path.hostid, cert)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError) as excinfo:
        proc.read_file(f"{path}/f")
    assert excinfo.value.errno == errno.ENOENT
    # "users who investigate further can easily notice that the pathname
    # has actually been revoked"
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET


def test_revocation_applies_to_all_users(world):
    server, path, key = make_server(world, "gone.example.com", {"/f": b"x"})
    cert = make_revocation_certificate(key, "gone.example.com")
    server.master.set_revocation(path.hostid, cert)
    client = world.add_client("c")
    client.new_agent("u1", 1000)
    client.new_agent("u2", 2000)
    proc1 = client.process(uid=1000)
    proc2 = client.process(uid=2000)
    with pytest.raises(KernelError):
        proc1.read_file(f"{path}/f")
    # Revocation is global: user 2 sees the revoked link too.
    assert proc2.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET


def test_revocation_after_mount_blocks_future_access(world):
    server, path, key = make_server(world, "later.example.com",
                                    {"/f": b"live"})
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/f") == b"live"
    # Now the owner revokes; a NEW client machine must refuse.
    cert = make_revocation_certificate(key, "later.example.com")
    server.master.set_revocation(path.hostid, cert)
    client2 = world.add_client("c2")
    client2.new_agent("u", 1000)
    proc2 = client2.process(uid=1000)
    with pytest.raises(KernelError):
        proc2.read_file(f"{path}/f")


def test_agent_revocation_directory(world):
    _victim, victim_path, victim_key = make_server(
        world, "victim.example.com", {"/f": b"x"}
    )
    ca = CertificationAuthority("rev.example.net", world.rng)
    cert = make_revocation_certificate(victim_key, "victim.example.com")
    ca.publish_revocation(cert)
    ca_host = world.add_server("rev.example.net")
    ca_path = ca_host.master.add_ro_export(ca.publish_image())

    client = world.add_client("c")
    install_link(client.root_process(), "/rev", ca_path)
    agent = client.new_agent("u", 1000)
    set_revocation_directories(agent, ["/rev/revocations"])
    proc = client.process(uid=1000)
    with pytest.raises(KernelError):
        proc.read_file(f"{victim_path}/f")
    # The revoked link appears for everyone on this client.
    assert proc.readlink(f"/sfs/{victim_path.mount_name}") == (
        REVOKED_LINK_TARGET
    )


def test_ca_rejects_forged_revocation(world):
    from repro.core.revocation import CertificateError
    from repro.crypto.rabin import generate_key

    ca = CertificationAuthority("rev.example.net", world.rng)
    attacker = generate_key(768, world.rng)
    body_forger = make_revocation_certificate(attacker, "victim.example.com")
    # The CA accepts it (it IS a valid cert for the attacker's own key)...
    ca.publish_revocation(body_forger)
    # ...but it is filed under the attacker's HostID, not the victim's.
    from repro.core.pathnames import compute_hostid, hostid_to_text
    filed = pathops.listdir(ca.fs, "/revocations")
    victim_like = hostid_to_text(
        compute_hostid("victim.example.com", attacker.public_key)
    )
    assert filed == [victim_like]
    # A corrupted certificate is rejected outright.
    from repro.rpc.xdr import Record
    with pytest.raises(CertificateError):
        ca.publish_revocation(Record(body=b"junk", public_key=b"", signature=b""))


def test_hostid_blocking_per_agent(world):
    _server, path, _key = make_server(world, "fine.example.com",
                                      {"/f": b"ok"})
    client = world.add_client("c")
    cautious = client.new_agent("cautious", 1000)
    cautious.block_hostid(path.hostid)
    normal = client.new_agent("normal", 2000)
    blocked_proc = client.process(uid=1000)
    normal_proc = client.process(uid=2000)
    with pytest.raises(KernelError):
        blocked_proc.read_file(f"{path}/f")
    assert normal_proc.read_file(f"{path}/f") == b"ok"
    # Unblocking restores access.
    cautious.unblock_hostid(path.hostid)
    assert blocked_proc.read_file(f"{path}/f") == b"ok"


def test_forwarding_pointer_redirects(world):
    old_server, old_path, old_key = make_server(world, "old.example.com")
    _new_server, new_path, _new_key = make_server(
        world, "new.example.com", {"/moved": b"new home"}
    )
    pointer = make_forwarding_pointer(old_key, "old.example.com",
                                      str(new_path))
    old_server.master.set_forwarding_pointer(old_path.hostid, pointer)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{old_path}/moved") == b"new home"
    # The old mount name is a symlink to the new self-certifying path.
    assert proc.readlink(f"/sfs/{old_path.mount_name}") == str(new_path)


def test_revocation_overrules_forwarding_pointer(world):
    """"A revocation certificate always overrules a forwarding pointer
    for the same HostID.""" """"""
    server, path, key = make_server(world, "both.example.com", {"/f": b"x"})
    _other, other_path, _ok = make_server(world, "elsewhere.example.com")
    cert = make_revocation_certificate(key, "both.example.com")
    pointer = make_forwarding_pointer(key, "both.example.com",
                                      str(other_path))
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    # Revocation arrives first; a later forwarding pointer must not
    # displace it.
    server.master.set_revocation(path.hostid, cert)
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/f")
    daemon = client.sfscd
    daemon._handle_certificate(path, pointer)
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET


def test_forwarding_first_then_revocation_still_revokes(world):
    """The reverse arrival order: a forwarding pointer is installed and
    *working*, then the revocation lands — and wins, permanently."""
    old_server, old_path, old_key = make_server(world, "old.example.com")
    _new_server, new_path, _new_key = make_server(
        world, "new.example.com", {"/moved": b"new home"}
    )
    pointer = make_forwarding_pointer(old_key, "old.example.com",
                                      str(new_path))
    old_server.master.set_forwarding_pointer(old_path.hostid, pointer)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    # The pointer is live: the old name redirects and resolves.
    assert proc.read_file(f"{old_path}/moved") == b"new home"
    assert proc.readlink(f"/sfs/{old_path.mount_name}") == str(new_path)
    # Now the revocation certificate arrives — later than the pointer.
    cert = make_revocation_certificate(old_key, "old.example.com")
    client.sfscd._handle_certificate(old_path, cert)
    assert proc.readlink(f"/sfs/{old_path.mount_name}") == (
        REVOKED_LINK_TARGET
    )
    # Re-delivering the pointer afterwards must not resurrect the name.
    client.sfscd._handle_certificate(old_path, pointer)
    assert proc.readlink(f"/sfs/{old_path.mount_name}") == (
        REVOKED_LINK_TARGET
    )


def test_server_with_both_certificates_serves_the_revocation(world):
    """A server that knows both certificates for one HostID must answer
    CONNECT with the revocation, whichever arrived first."""
    server, path, key = make_server(world, "both.example.com", {"/f": b"x"})
    _other, other_path, _ok = make_server(world, "elsewhere.example.com")
    pointer = make_forwarding_pointer(key, "both.example.com",
                                      str(other_path))
    cert = make_revocation_certificate(key, "both.example.com")
    # Forwarding installed first, revocation second.
    server.master.set_forwarding_pointer(path.hostid, pointer)
    server.master.set_revocation(path.hostid, cert)
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/f")
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET


def test_revocation_mid_traffic_evicts_cached_mount(world):
    """Revocation propagating to a client that is actively using the
    file system (HostID cached, mount live) takes effect immediately:
    the mount is torn down, the revoked link appears, and a forwarding
    pointer arriving afterwards cannot bring the name back."""
    server, path, key = make_server(world, "live.example.com",
                                    {"/f": b"payload"})
    _other, other_path, _ok = make_server(world, "elsewhere.example.com")
    client = world.add_client("c")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/f") == b"payload"  # mount is cached
    daemon = client.sfscd
    assert path.hostid in daemon._mounts
    cert = make_revocation_certificate(key, "live.example.com")
    daemon._handle_certificate(path, cert)
    # The cached mount is gone, not just future lookups.
    assert path.hostid not in daemon._mounts
    with pytest.raises(KernelError) as excinfo:
        proc.read_file(f"{path}/f")
    assert excinfo.value.errno == errno.ENOENT
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET
    # A forwarding pointer arriving after the fact changes nothing.
    pointer = make_forwarding_pointer(key, "live.example.com",
                                      str(other_path))
    daemon._handle_certificate(path, pointer)
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET
    with pytest.raises(KernelError):
        proc.read_file(f"{path}/f")
