"""End-to-end crash/restart survival.

The tentpole scenario of the robustness PR: a server machine loses power
at a named protocol window (sim/crash.py), comes back with the same
keypair and exports, and the client — without any ceremony beyond
re-verifying that the presented key still hashes to the HostID in the
pathname — redials with exponential backoff, renegotiates session keys,
re-authenticates lazily, and replays the interrupted call.

What must hold afterwards:

* committed data is intact, un-committed writes are provably lost;
* recovery counters match the injected schedule deterministically;
* the handle map survives (it derives from the durable private key);
* an impostor answering the redial raises SecurityError, never data.

Run under different seeds with ``SFS_CRASH_SEED``; set
``SFS_CRASH_METRICS_OUT`` to export a metrics snapshot (the CI crash
suite uploads it as an artifact).
"""

import errno
import os

import pytest

from repro.core import proto
from repro.core.client import SecurityError
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World

SEED = int(os.environ.get("SFS_CRASH_SEED", "2026"))


@pytest.fixture
def crashy():
    """A server worth crashing, and a client logged in as alice."""
    world = World(seed=SEED)
    server = world.add_server("crashy.example.com")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    return world, server, path, alice, client, proc


def mount_of(client, path):
    return client.sfscd._mounts[path.hostid]


def session_of(client, path):
    return mount_of(client, path).session


# ---------------------------------------------------------------------------
# The named crash points
# ---------------------------------------------------------------------------


def test_crash_mid_handshake_mount_retries_until_restart(crashy):
    """Satellite 2 turned tentpole: a server that dies *inside* the
    ENCRYPT exchange must not hang the mount — the handshake RPC fails
    fast and the redial loop backs off until the machine is back."""
    world, server, path, alice, client, proc = crashy
    seeded = pathops.write_file(server.fs, "/home/alice/hello", b"hi there")
    server.fs.commit(seeded.ino)  # pathops leaves the write un-committed
    injector = server.install_crash_injector([("mid-handshake", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    # First touch of the pathname automounts: CONNECT succeeds, ENCRYPT
    # crashes the server, the mount redials through the backoff policy.
    assert proc.read_file(f"{path}/home/alice/hello") == b"hi there"
    assert injector.fired == [("mid-handshake", 1)]
    assert world.metrics.counter("client.backoff_sleeps").value >= 1
    assert world.metrics.counter("server.crashes").value == 1
    assert world.metrics.counter("server.restarts").value == 1
    # This was a mount-time redial, not a session failover.
    assert session_of(client, path).reconnects == 0


def test_crash_before_commit_loses_uncommitted_keeps_committed(crashy):
    """The durability split, end to end: UNSTABLE writes whose COMMIT
    never ran are rolled back by the crash; committed files survive."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/keep", b"safe across reboot")
    injector = server.install_crash_injector([("before-commit", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    # write_file = CREATE + UNSTABLE WRITE + close-triggered COMMIT; the
    # crash lands just before the COMMIT executes, so the bytes existed
    # only in volatile state.  Recovery is transparent to the caller.
    proc.write_file(f"{home}/doomed", b"these bytes must not survive")
    assert injector.fired == [("before-commit", 1)]
    session = session_of(client, path)
    mount = mount_of(client, path)
    assert session.reconnects == 1
    assert session.backoff_sleeps >= 1
    assert mount.replayed_calls >= 1
    # Committed data intact; un-committed data provably lost.
    assert proc.read_file(f"{home}/keep") == b"safe across reboot"
    assert proc.read_file(f"{home}/doomed") == b""
    assert pathops.read_file(server.fs, "/home/alice/doomed") == b""
    assert server.fs.lost_writes >= 1
    assert world.metrics.counter("fs.lost_writes").value >= 1
    assert world.metrics.counter("session.reconnects").value == 1


def test_crash_after_write_replays_transparently(crashy):
    """A WRITE that executed but whose reply died with the server is
    replayed on the fresh connection; the file converges."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/a", b"baseline")
    injector = server.install_crash_injector([("after-write", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    proc.write_file(f"{home}/b", b"written twice, visible once")
    assert injector.fired == [("after-write", 1)]
    session = session_of(client, path)
    assert session.reconnects == 1
    assert mount_of(client, path).replayed_calls >= 1
    # The first execution was rolled back by the crash; the replay's
    # execution was committed by the close.
    assert server.fs.lost_writes >= 1
    assert proc.read_file(f"{home}/b") == b"written twice, visible once"
    assert pathops.read_file(server.fs, "/home/alice/b") \
        == b"written twice, visible once"
    assert proc.read_file(f"{home}/a") == b"baseline"


def test_crash_during_lease_fanout_every_client_recovers(crashy):
    """A crash while invalidations fan out kills every connection; both
    the writer and the lease holder fail over and converge."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/shared", b"v1")
    client2 = world.add_client("desktop")
    proc2 = client2.login_user("alice", alice.key, uid=1000)
    assert proc2.read_file(f"{home}/shared") == b"v1"  # takes the lease
    injector = server.install_crash_injector([("lease-fanout", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    proc.write_file(f"{home}/shared", b"v2 after the crash")
    assert injector.fired == [("lease-fanout", 1)]
    assert session_of(client, path).reconnects == 1
    assert proc.read_file(f"{home}/shared") == b"v2 after the crash"
    # The second client's connection died too, and the invalidation for
    # its lease died with the server — so its first read is sized by the
    # stale cached attributes (len("v1") == 2 bytes) while the READ
    # itself fails over and flushes the caches.
    assert proc2.read_file(f"{home}/shared") == b"v2"
    assert session_of(client2, path).reconnects == 1
    # With the caches flushed by the reconnect, the next read re-fetches
    # attributes from the restarted server and sees everything.
    assert proc2.read_file(f"{home}/shared") == b"v2 after the crash"


def test_crash_mid_resync_fails_over_to_fresh_connection(crashy):
    """If the server dies while serving the resync control handshake,
    the resync fails cleanly and the next call reconnects instead."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/r", b"resilient")
    session = session_of(client, path)
    injector = server.install_crash_injector([("mid-resync", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    assert session.resync() is False
    assert injector.fired == [("mid-resync", 1)]
    assert session.resyncs_failed == 1
    assert proc.read_file(f"{home}/r") == b"resilient"
    assert session.reconnects == 1


# ---------------------------------------------------------------------------
# Restart invariants
# ---------------------------------------------------------------------------


def test_restart_keeps_hostid_and_handles_fresh_write_verifier(crashy):
    """Durable vs volatile, itemized: same HostID and handle map after
    the reboot (both derive from the durable private key), but a fresh
    per-boot write verifier (unstable-write state is volatile)."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/data", b"persistent")
    session = session_of(client, path)
    export = server.master.rw_export(path.hostid)
    old_fingerprint = export.handles.fingerprint
    old_verf = export.nfs_server.write_verf
    old_key = bytes(session.servinfo.public_key)
    server.crash()
    server.restart()
    export = server.master.rw_export(path.hostid)
    assert export.handles.fingerprint == old_fingerprint
    assert export.nfs_server.write_verf != old_verf
    # The client's next call fails over; CONNECT re-runs the HostID
    # check and the same public key comes back.
    assert proc.read_file(f"{home}/data") == b"persistent"
    assert session.reconnects == 1
    assert bytes(session.servinfo.public_key) == old_key
    assert world.metrics.counter("server.crashes").value == 1
    assert world.metrics.counter("server.restarts").value == 1


def test_journal_recovery_verifies_committed_files(crashy):
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/data", b"x" * 4000)
    server.crash()
    # restart() runs fs.recover() and would refuse a mismatch; reaching
    # steady state again proves the journal agreed with the data.
    server.restart()
    assert proc.read_file(f"{home}/data") == b"x" * 4000
    assert world.metrics.counter("fs.torn_records_dropped").value == 0


def test_reconnect_refuses_an_impostor(crashy):
    """The security half of failover: a different machine answering the
    redial with a different key cannot satisfy the HostID check."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/s", b"secret")
    session = session_of(client, path)
    server.crash()
    # An impostor captures the Location and routes the victim's HostID
    # to its own export (the server-side dispatch permits this; the
    # client's check is what must not).
    impostor = world.add_server(path.location)
    impostor.export_fs()
    impostor.master.config.add_export("default", path.hostid,
                                      proto.DIALECT_RW)
    with pytest.raises(SecurityError):
        session.reconnect()
    assert session.reconnects == 0
    assert world.metrics.counter("session.reconnects_failed").value == 0


# ---------------------------------------------------------------------------
# Satellites: at-least-once degradation, dead-connection pruning
# ---------------------------------------------------------------------------


def test_nonidempotent_replay_degrades_to_at_least_once(crashy):
    """Satellite 4: the restarted server has an empty duplicate-request
    cache, so the replay of a non-idempotent REMOVE re-executes instead
    of being answered from cache — the caller sees ENOENT even though
    the remove succeeded.  At-most-once degraded to at-least-once."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/victim", b"doomed file")
    client2 = world.add_client("desktop")
    proc2 = client2.login_user("alice", alice.key, uid=1000)
    assert proc2.read_file(f"{home}/victim") == b"doomed file"
    injector = server.install_crash_injector([("lease-fanout", 1)])
    server.schedule_restart(world.clock.now + 0.5)
    duplicates_before = world.metrics.counter("rpc.duplicates_served").value
    # The REMOVE executes, then crashes the server while fanning out
    # invalidations — after execution, before the reply.
    with pytest.raises(KernelError) as excinfo:
        proc.unlink(f"{home}/victim")
    assert excinfo.value.errno == errno.ENOENT
    assert injector.fired == [("lease-fanout", 1)]
    mount = mount_of(client, path)
    assert mount.replayed_calls == 1
    assert session_of(client, path).reconnects == 1
    # The file IS gone — the first execution did the work; the replay
    # found no cached reply to shield it from re-execution.
    assert "victim" not in pathops.listdir(server.fs, "/home/alice")
    assert world.metrics.counter("rpc.duplicates_served").value \
        == duplicates_before


def test_lease_fanout_prunes_dead_connections(crashy):
    """Satellite 3: a connection that died *silently* (no redial) is
    pruned — and counted — when a fan-out walks the connection list,
    without aborting invalidations to the survivors."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/shared", b"v1")
    client2 = world.add_client("desktop")
    proc2 = client2.login_user("alice", alice.key, uid=1000)
    assert proc2.read_file(f"{home}/shared") == b"v1"
    # The desktop vanishes without a word.
    session_of(client2, path).pipe.raw.close()
    before = world.metrics.counter("server.dead_connections_pruned").value
    proc.write_file(f"{home}/shared", b"v2")  # fan-out prunes the corpse
    assert world.metrics.counter("server.dead_connections_pruned").value \
        == before + 1
    export = server.master.rw_export(path.hostid)
    assert len(export.connections) == 1
    assert proc.read_file(f"{home}/shared") == b"v2"


# ---------------------------------------------------------------------------
# Deterministic schedules and the CI metrics artifact
# ---------------------------------------------------------------------------


def test_recovery_counters_match_schedule(crashy):
    """Two scheduled crashes at different points; every recovery counter
    lands exactly where the schedule says, for any SFS_CRASH_SEED."""
    world, server, path, alice, client, proc = crashy
    home = f"{path}/home/alice"
    proc.write_file(f"{home}/warm", b"warm-up")  # mount established
    injector = server.install_crash_injector(
        [("after-write", 1), ("before-commit", 2)]
    )
    server.schedule_restart(world.clock.now + 0.5)
    proc.write_file(f"{home}/x", b"xx")  # WRITE #1 crashes; replayed
    server.schedule_restart(world.clock.now + 0.5)
    proc.write_file(f"{home}/y", b"yy")  # its COMMIT (#2) crashes; replayed
    assert injector.fired == [("after-write", 1), ("before-commit", 2)]
    assert injector.pending == 0
    session = session_of(client, path)
    mount = mount_of(client, path)
    assert session.reconnects == 2
    assert mount.replayed_calls == 2
    assert world.metrics.counter("server.crashes").value == 2
    assert world.metrics.counter("server.restarts").value == 2
    assert world.metrics.counter("session.reconnects").value == 2
    assert world.metrics.counter("client.replayed_calls").value == 2
    assert world.metrics.counter("session.backoff_sleeps").value \
        == session.backoff_sleeps
    # x converged: the after-write crash rolled back WRITE #1, and the
    # replay re-executed it before the close-time COMMIT.  y is provably
    # lost: the before-commit crash rolled back its UNSTABLE write, and
    # the replayed COMMIT cannot resurrect bytes the undo log erased.
    assert proc.read_file(f"{home}/x") == b"xx"
    assert proc.read_file(f"{home}/y") == b""
    assert pathops.read_file(server.fs, "/home/alice/y") == b""
    out = os.environ.get("SFS_CRASH_METRICS_OUT")
    if out:
        from repro.obs.export import write_snapshot

        write_snapshot(out, registry=world.metrics)


def test_same_seed_same_recovery_trace():
    """The whole recovery dance — backoff sleeps included — is a pure
    function of the seed."""
    def run(seed: int):
        world = World(seed=seed)
        server = world.add_server("crashy.example.com")
        path = server.export_fs()
        alice = server.add_user("alice", uid=1000)
        home = pathops.mkdirs(server.fs, "/home/alice")
        server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
        client = world.add_client("laptop")
        proc = client.login_user("alice", alice.key, uid=1000)
        proc.write_file(f"{path}/home/alice/f", b"before")
        server.install_crash_injector([("before-commit", 1)])
        server.schedule_restart(world.clock.now + 0.5)
        proc.write_file(f"{path}/home/alice/g", b"after")
        session = client.sfscd._mounts[path.hostid].session
        return (session.reconnects, session.backoff_sleeps,
                world.clock.now)

    assert run(7) == run(7)
    trace_a, trace_b = run(7), run(8)
    assert trace_a[0] == trace_b[0]  # same reconnect count either way


# --- crash under concurrent queued load ----------------------------------

def _crash_load_run(seed: int):
    """8 concurrent clients against a queued server that power-fails
    mid-run with requests still waiting in its queue."""
    from repro.load import LoadConfig, LoadHarness

    config = LoadConfig(clients=8, ops_per_client=12, seed=seed,
                        workers=1, service_time=0.002, think_time=0.004,
                        max_depth=16, failover=True)
    harness = LoadHarness(config)
    server = harness.server
    clock = harness.world.clock
    state = {}

    def crash():
        state["depth_at_crash"] = harness.queue.depth
        server.crash()

    # Deep enough into the run that the queue has backlog, early enough
    # that plenty of operations remain to exercise failover.
    clock.call_at(clock.now + 0.040, crash)
    server.schedule_restart(clock.now + 0.090)
    report = harness.run_closed_loop()
    return harness, report, state


def test_server_crash_mid_queue_under_concurrent_clients():
    harness, report, state = _crash_load_run(seed=7)
    # The crash really did catch requests waiting in the queue.
    assert state["depth_at_crash"] > 0
    assert harness.world.metrics.counter("server.crashes").value == 1
    assert harness.world.metrics.counter("server.restarts").value == 1
    # Every client completed every operation — via failover (session
    # reconnect + replay) or an undisturbed path — or failed *cleanly*;
    # nothing hung.
    assert report.unfinished_tasks == 0
    total = 8 * 12
    assert report.ops_completed + report.op_errors == total
    assert report.ops_completed == total
    assert report.op_errors == 0
    # At least one session actually exercised the failover engine.
    assert sum(s.reconnects for s in harness.sessions) >= 1
    # And the scheduler drains clean: no task still parked on a future.
    harness.scheduler.drain()


def test_crash_mid_queue_is_deterministic_per_seed():
    _h1, first, s1 = _crash_load_run(seed=21)
    _h2, second, s2 = _crash_load_run(seed=21)
    assert s1 == s2
    assert first.latencies == second.latencies
    assert first.ops_completed == second.ops_completed
    assert first.duration == second.duration
