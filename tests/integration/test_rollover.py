"""Server key rollover under live clients (paper section 2.6).

``rollover_export`` re-exports the same file system under a freshly
generated key and leaves a signed trail — forwarding pointer or
revocation certificate — behind the old HostID.  Established sessions
keep working untouched; what these tests pin is the *redial* path: a
client that reconnects after a crash must follow the pointer, re-verify
the NEW HostID against the embedded key, refresh its root handle (the
handle map derives from the key), and re-home the kernel mount — or,
for a revocation, refuse with SecurityError and never serve data.
"""

import errno

import pytest

from repro.core.client import SecurityError
from repro.core.revocation import REVOKED_LINK_TARGET
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.vfs import KernelError
from repro.kernel.world import World
from repro.keymgmt import CertificationAuthority
from repro.keymgmt.rollover import (
    FORWARD,
    REVOKE,
    fan_out_revocations,
    revoke_export,
    rollover_export,
)

SEED = 2026


@pytest.fixture
def rolled():
    """A server with a mounted client, ready to roll its key."""
    world = World(seed=SEED)
    server = world.add_server("roll.example.com")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    proc.write_file(f"{path}/home/alice/hello", b"hi there")
    return world, server, path, client, proc


def session_of(client, hostid):
    return client.sfscd._mounts[hostid].session


def test_established_session_survives_rollover_without_redial(rolled):
    """Live connections are untouched by a rollover: the session keys
    were negotiated already and nothing forces a redial."""
    world, server, path, client, proc = rolled
    result = rollover_export(server, mode=FORWARD)
    assert result.old_path == path
    assert result.new_path.hostid != path.hostid
    assert result.new_path.location == path.location
    assert proc.read_file(f"{path}/home/alice/hello") == b"hi there"
    session = session_of(client, path.hostid)
    assert session.reconnects == 0
    assert session.retargets == 0
    assert world.metrics.counter("server.rollovers").value == 1


def test_redial_after_rollover_follows_pointer_and_reverifies(rolled):
    """The satellite bugfix, end to end: crash the server after a
    forward rollover and the redialing session must chase the pointer,
    land on the new HostID, and re-verify the presented key against the
    NEW path — then the daemon re-homes the mount under the new name
    with a freshly fetched root handle."""
    world, server, path, client, proc = rolled
    session = session_of(client, path.hostid)
    result = rollover_export(server, mode=FORWARD)
    new = result.new_path
    server.crash()
    server.schedule_restart(world.clock.now + 0.05)
    # The next op rides the established session, finds the transport
    # dead, and reconnects — through the forwarding pointer.  The op
    # itself was built against the OLD handle map, and a new key means
    # a new handle map: that one op is the rollover's bounded casualty
    # (EBADF), never wrong data.
    with pytest.raises(KernelError) as excinfo:
        proc.read_file(f"{path}/home/alice/hello")
    assert excinfo.value.errno == errno.EBADF
    assert session.reconnects == 1
    assert session.retargets == 1
    assert session.path.hostid == new.hostid
    # HostID verification really happened against the new key.
    assert new.matches_key(session.server_public_key)
    assert not path.matches_key(session.server_public_key)
    # The daemon evicted the old name entirely and re-homed the mount.
    assert new.hostid in client.sfscd._mounts
    assert new.hostid in client.sfscd._mount_roots
    assert path.hostid not in client.sfscd._mounts
    assert path.hostid not in client.sfscd._mount_roots
    # The old name lives on as a forwarding symlink, so stale pathnames
    # still resolve — through the new mount.
    assert proc.readlink(f"/sfs/{path.mount_name}") == \
        f"/sfs/{new.mount_name}"
    assert proc.read_file(f"{new}/home/alice/hello") == b"hi there"
    assert world.metrics.counter("session.retargets").value == 1
    assert world.metrics.counter("client.mounts_retargeted").value == 1


def test_redial_after_revocation_refuses_with_security_error(rolled):
    """mode="revoke" leaves a tombstone, not a pointer: the redial must
    refuse loudly and never hand back data."""
    world, server, path, client, proc = rolled
    session = session_of(client, path.hostid)
    rollover_export(server, mode=REVOKE)
    server.crash()
    server.restart()
    with pytest.raises(SecurityError, match="revoked"):
        session.reconnect()
    assert session.reconnects == 0
    assert session.retargets == 0


def test_rollover_mode_and_state_validation(rolled):
    _world, server, _path, _client, _proc = rolled
    with pytest.raises(ValueError, match="unknown rollover mode"):
        rollover_export(server, mode="sideways")
    rollover_export(server, mode=FORWARD)
    # The old export is no longer served under its old HostID; rolling
    # the *same* name again rolls the new key, not the retired one.
    second = rollover_export(server, mode=FORWARD)
    assert second.old_path.hostid != _path.hostid


def test_rollover_with_ca_repoints_the_certified_name(rolled):
    """The certification-path step: clients resolving by human name
    land on the new HostID without ever seeing the old one."""
    world, server, path, client, proc = rolled
    ca = CertificationAuthority("ca.example.com", world.rng)
    ca.certify("files", path)
    result = rollover_export(server, mode=FORWARD, ca=ca, ca_name="files")
    link = pathops.resolve(ca.fs, "/files", follow=False)
    assert link.target == str(result.new_path)


def test_out_of_band_revocation_evicts_cached_mount(rolled):
    """The cache-eviction ordering fix: a revocation delivered straight
    to sfscd must drop the mount AND its cached root handle together —
    a surviving _mount_roots entry would let the old HostID resolve to
    a handle the re-keyed server cannot decrypt."""
    world, server, path, client, proc = rolled
    assert path.hostid in client.sfscd._mounts
    assert path.hostid in client.sfscd._mount_roots
    cert = revoke_export(server)
    assert client.sfscd.submit_certificate(cert) is True
    assert path.hostid not in client.sfscd._mounts
    assert path.hostid not in client.sfscd._mount_roots
    assert proc.readlink(f"/sfs/{path.mount_name}") == REVOKED_LINK_TARGET
    assert world.metrics.counter("client.certificates_accepted").value == 1


def test_fan_out_skips_forgeries_and_counts_deliveries(rolled):
    world, server, path, client, proc = rolled
    cert = revoke_export(server)
    from repro.rpc.xdr import Record
    tampered = bytes(cert.signature)
    forged = Record(**{**cert.__dict__,
                       "signature": tampered[:-1] +
                       bytes([tampered[-1] ^ 0xFF])})
    delivered = fan_out_revocations(
        [forged, cert],
        daemons=[client.sfscd],
        masters=[server.master],
        metrics=world.metrics,
    )
    # The forgery delivered nowhere; the real one hit master + daemon.
    assert delivered == 2
    assert world.metrics.counter(
        "keymgmt.revocations_fanned_out").value == 2
    assert path.hostid not in client.sfscd._mounts
