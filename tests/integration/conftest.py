"""Shared fixtures for integration tests: complete SFS worlds."""

import pytest

from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.world import World


@pytest.fixture
def world():
    return World(seed=2026)


@pytest.fixture
def standard_setup(world):
    """One server with alice's account + home dir, one client with alice
    logged in.  Returns (world, server, path, client, alice_proc)."""
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    pathops.write_file(server.fs, "/public.txt", b"world readable")
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    return world, server, path, client, proc
