"""The AFS conundrum, resolved (paper section 5.1).

"Two users can both retrieve a self-certifying pathname using their
passwords.  If they end up with the same path, they can safely share the
cache; they are asking for a server with the same public key. ... If, on
the other hand, the users disagree over the file server's public key
(for instance because one user wants to cause trouble), the two will
also disagree on the HostID.  They will end up accessing different files
with different names, which the file system will consequently cache
separately."
"""

import pytest

from repro.core.pathnames import make_path
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.world import World


@pytest.fixture
def world():
    return World(seed=95)


def test_agreeing_users_share_one_mount_and_cache(world):
    server = world.add_server("dept.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/shared", b"cached once")
    client = world.add_client("multiuser-box")
    client.new_agent("u1", 1000)
    client.new_agent("u2", 2000)
    p1 = client.process(uid=1000)
    p2 = client.process(uid=2000)
    assert p1.read_file(f"{path}/shared") == b"cached once"
    assert p2.read_file(f"{path}/shared") == b"cached once"
    # One mount object — one shared cache — serves both users.
    assert len(client.sfscd._mounts) == 1
    mount = client.sfscd._mounts[path.hostid]
    # u2's stat hits attributes u1's traffic populated: shared safely.
    hits_before = mount.caches.attrs.hits
    p2.stat(f"{path}/shared")
    assert mount.caches.attrs.hits > hits_before


def test_cache_accounting_lands_in_metrics_registry(world):
    """The mount's cache counters and the world registry must agree:
    stats() is the per-mount view, `cache.*` the aggregated export."""
    server = world.add_server("dept.example.com")
    path = server.export_fs()
    pathops.write_file(server.fs, "/shared", b"cached once")
    client = world.add_client("box")
    client.new_agent("u1", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/shared") == b"cached once"
    proc.stat(f"{path}/shared")  # warm-path hit on the attr cache
    mount = client.sfscd._mounts[path.hostid]
    stats = mount.caches.stats()
    assert stats["attr_hits"] > 0 and stats["attr_misses"] > 0
    metrics = world.metrics.snapshot()["metrics"]
    assert metrics["cache.attrs.hits"] == stats["attr_hits"]
    assert metrics["cache.attrs.misses"] == stats["attr_misses"]
    assert metrics["cache.access.hits"] == stats["access_hits"]
    assert metrics["cache.access.misses"] == stats["access_misses"]
    assert metrics["cache.lookups.hits"] == stats["lookup_hits"]
    assert metrics["cache.lookups.misses"] == stats["lookup_misses"]
    # Server-driven invalidation shows up too.
    pathops.write_file(server.fs, "/shared", b"changed")
    proc2 = client.process(uid=1000)
    proc2.read_file(f"{path}/shared")
    invalidated = (world.metrics.snapshot()["metrics"]
                   ["cache.attrs.invalidations"])
    assert invalidated == mount.caches.attrs.invalidations


def test_disagreeing_users_get_separate_namespaces(world):
    """A malicious user feeding a victim the 'wrong' HostID only ever
    hurts themselves: the names differ, so the caches never collide."""
    server = world.add_server("dept.example.com")
    honest_path = server.export_fs()
    pathops.write_file(server.fs, "/data", b"real data")

    # Mallory runs her own server and constructs a name for the same
    # Location... but her key gives a different HostID.
    mallory_key = generate_key(768, world.rng)
    mallory_path = make_path("dept.example.com", mallory_key.public_key)
    assert mallory_path.mount_name != honest_path.mount_name

    client = world.add_client("shared-box")
    client.new_agent("victim", 1000)
    client.new_agent("mallory", 2000)
    victim = client.process(uid=1000)
    mallory = client.process(uid=2000)

    assert victim.read_file(f"{honest_path}/data") == b"real data"
    # Mallory "accesses" her name: the real server refuses it (it does
    # not hold that key), so nothing is ever cached under her name.
    with pytest.raises(OSError):
        mallory.read_file(f"{mallory_path}/data")
    # The victim's view is untouched; only the honest mount exists.
    assert victim.read_file(f"{honest_path}/data") == b"real data"
    assert set(client.sfscd._mounts) == {honest_path.hostid}


def test_per_user_access_rights_within_shared_cache(world):
    """Sharing a cache must not share *authority*: cached attributes are
    shared, but permissions still bind to each user's credentials."""
    server = world.add_server("dept.example.com")
    path = server.export_fs()
    owner = server.add_user("owner", uid=1000)
    other = server.add_user("other", uid=2000)
    home = pathops.mkdirs(server.fs, "/home/owner")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)

    client = world.add_client("box")
    owner_proc = client.login_user("owner", owner.key, uid=1000)
    other_proc = client.login_user("other", other.key, uid=2000)
    owner_proc.write_file(f"{path}/home/owner/secret", b"mine", mode=0o600)
    # Both share the mount; only the owner can read the file.
    assert owner_proc.read_file(f"{path}/home/owner/secret") == b"mine"
    with pytest.raises(OSError):
        other_proc.read_file(f"{path}/home/owner/secret")
    assert len(client.sfscd._mounts) == 1
