"""Tests for the from-scratch SHA-1 (repro.crypto.sha1)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import backend
from repro.crypto.sha1 import SHA1, sha1, sha1_concat

# FIPS 180-1 test vectors.
VECTORS = [
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
    ),
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]


@pytest.mark.parametrize("message,expected", VECTORS)
def test_fips_vectors(message, expected):
    assert SHA1(message).hexdigest() == expected


def test_streaming_matches_one_shot():
    h = SHA1()
    for chunk in (b"ab", b"c", b"", b"def" * 100):
        h.update(chunk)
    assert h.digest() == SHA1(b"abc" + b"def" * 100).digest()


def test_digest_is_idempotent():
    h = SHA1(b"hello")
    first = h.digest()
    assert h.digest() == first
    h.update(b" world")
    assert h.digest() == SHA1(b"hello world").digest()


def test_copy_is_independent():
    h = SHA1(b"base")
    clone = h.copy()
    clone.update(b"-more")
    assert h.digest() == SHA1(b"base").digest()
    assert clone.digest() == SHA1(b"base-more").digest()


@pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 127, 128, 1000])
def test_padding_boundaries_match_hashlib(length):
    data = bytes(range(256)) * (length // 256 + 1)
    data = data[:length]
    assert SHA1(data).digest() == hashlib.sha1(data).digest()


@given(st.binary(max_size=2048))
@settings(max_examples=200)
def test_matches_hashlib(data):
    assert SHA1(data).digest() == hashlib.sha1(data).digest()


@given(st.lists(st.binary(max_size=128), max_size=8))
def test_streaming_split_invariance(chunks):
    h = SHA1()
    for chunk in chunks:
        h.update(chunk)
    assert h.digest() == SHA1(b"".join(chunks)).digest()


def test_fast_backend_is_bit_identical():
    data = b"self-certifying pathnames" * 9
    backend.set_fast(True)
    fast = sha1(data)
    backend.set_fast(False)
    try:
        pure = sha1(data)
    finally:
        backend.set_fast(True)
    assert fast == pure == hashlib.sha1(data).digest()


def test_sha1_concat_equals_joined():
    assert sha1_concat(b"a", b"b", b"c") == sha1(b"abc")


def test_digest_size_attributes():
    h = SHA1()
    assert h.digest_size == 20
    assert h.block_size == 64
    assert len(h.digest()) == 20
    assert len(h.hexdigest()) == 40
