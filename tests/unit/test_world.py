"""Tests for the world builder (repro.kernel.world)."""

import pytest

from repro.core.tcpstack import TcpConnector
from repro.fs import pathops
from repro.kernel.world import World


def test_unknown_location_unreachable():
    world = World(seed=161)
    with pytest.raises(ConnectionError):
        world.connector("nowhere.example.com", 1)


def test_route_aliases_location():
    world = World(seed=162)
    real = world.add_server("real.example.com")
    real.export_fs()
    world.route("alias.example.com", real)
    link = world.connector("alias.example.com", 1)
    assert link is not None
    assert real.master.connections_accepted == 1


def test_server_multiple_exports_distinct_hostids():
    world = World(seed=163)
    server = world.add_server("multi.example.com")
    p1 = server.export_fs(name="one")
    p2 = server.export_fs(name="two")
    assert p1.hostid != p2.hostid
    assert set(server.exports) == {"one", "two"}


def test_add_user_registers_key():
    world = World(seed=164)
    server = world.add_server("s.example.com")
    server.export_fs()
    user = server.add_user("u", uid=1234, gid=77, groups=(88,))
    record = server.authserver.local_db.lookup_key(
        user.key.public_key.to_bytes()
    )
    assert record is not None
    assert (record.uid, record.gid, record.groups) == (1234, 77, (88,))


def test_client_without_disk_and_without_encryption():
    world = World(seed=165)
    server = world.add_server("s.example.com", with_disk=False)
    path = server.export_fs()
    pathops.write_file(server.fs, "/f", b"x")
    client = world.add_client("c", encrypt=False, with_disk=False)
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    assert proc.read_file(f"{path}/f") == b"x"
    mount = client.sfscd._mounts[path.hostid]
    assert mount.session.encrypt is False


def test_ssu_without_agent_raises():
    world = World(seed=166)
    client = world.add_client("c")
    with pytest.raises(KeyError):
        client.ssu(42)


def test_tcp_connector_unknown_route():
    connector = TcpConnector()
    with pytest.raises(ConnectionError):
        connector("unrouted.example.com", 1)


def test_many_clients_one_server():
    """State isolation: ten clients, interleaved traffic, no bleed."""
    world = World(seed=167)
    server = world.add_server("hub.example.com")
    path = server.export_fs()
    from repro.fs.memfs import Cred

    work = pathops.mkdirs(server.fs, "/w")
    server.fs.setattr(work.ino, Cred(0, 0), mode=0o777)
    procs = []
    for index in range(10):
        client = world.add_client(f"client{index}")
        client.new_agent("u", 1000 + index)
        procs.append(client.process(uid=1000 + index))
    for index, proc in enumerate(procs):
        proc.write_file(f"{path}/w/from{index}", f"client {index}".encode())
    for index, proc in enumerate(procs):
        # every client sees every other client's (world-readable) file
        for other in range(10):
            expected = f"client {other}".encode()
            assert proc.read_file(f"{path}/w/from{other}") == expected
    export = server.master.rw_export(path.hostid)
    assert len(export.connections) == 10


def test_one_client_many_servers():
    world = World(seed=168)
    paths = []
    for index in range(6):
        server = world.add_server(f"s{index}.example.com")
        paths.append(server.export_fs())
        pathops.write_file(server.fs, "/id", f"server {index}".encode())
    client = world.add_client("hub-client")
    client.new_agent("u", 1000)
    proc = client.process(uid=1000)
    for index, path in enumerate(paths):
        assert proc.read_file(f"{path}/id") == f"server {index}".encode()
    # Six mounts, six distinct device numbers.
    fsids = {proc.stat(str(path)).fsid for path in paths}
    assert len(fsids) == 6
