"""Tests for the NFS MOUNT protocol (repro.nfs3.mountproto)."""

import pytest

from repro.fs.memfs import MemFs
from repro.nfs3.mountproto import (
    MountClient,
    MountDenied,
    MountServer,
)
from repro.nfs3.server import Nfs3Server
from repro.rpc.peer import RpcPeer
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair


@pytest.fixture
def stack():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    nfsd = Nfs3Server(MemFs())
    mountd = MountServer()
    mountd.add_export("/", nfsd.root_handle())
    mountd.add_export("/private", b"PRIVATE-HANDLE".ljust(16, b"\x00"),
                      groups=("trusted-host",))
    peer = RpcPeer(b, "server")
    peer.register(nfsd.program)
    peer.register(mountd.program)
    client_peer = RpcPeer(a, "client")
    return nfsd, mountd, client_peer


def test_mnt_returns_root_handle(stack):
    nfsd, _mountd, peer = stack
    client = MountClient(peer, "workstation")
    assert client.mnt("/") == nfsd.root_handle()


def test_mnt_unknown_export(stack):
    _nfsd, _mountd, peer = stack
    client = MountClient(peer, "workstation")
    with pytest.raises(MountDenied):
        client.mnt("/nonexistent")


def test_export_groups_enforced(stack):
    _nfsd, _mountd, peer = stack
    outsider = MountClient(peer, "outsider")
    with pytest.raises(MountDenied):
        outsider.mnt("/private")
    insider = MountClient(peer, "trusted-host")
    assert insider.mnt("/private").startswith(b"PRIVATE-HANDLE")


def test_dump_and_umnt(stack):
    _nfsd, _mountd, peer = stack
    client = MountClient(peer, "host-a")
    client.mnt("/")
    assert ("host-a", "/") in client.dump()
    client.umnt("/")
    assert ("host-a", "/") not in client.dump()


def test_export_listing(stack):
    _nfsd, _mountd, peer = stack
    client = MountClient(peer, "anyone")
    exports = dict(client.export())
    assert "/" in exports and exports["/"] == ()
    assert exports["/private"] == ("trusted-host",)


def test_the_nfs_security_hole(stack):
    """The paper's point about NFS: the handle from MNT is a bearer
    capability — anyone holding it has full access, no questions asked."""
    nfsd, _mountd, peer = stack
    from repro.nfs3.client import Nfs3Client
    from repro.rpc.rpcmsg import AuthSys

    stolen_handle = MountClient(peer, "attacker").mnt("/")
    nfs = Nfs3Client(peer, AuthSys(uid=0, gid=0))
    # With just the handle, the "attacker" creates files as root.
    created = nfs.create(stolen_handle, "owned")
    assert created.obj is not None
