"""Unit tests for the sfskey utility's client-side pieces."""

import random

import pytest

from repro.core import sfskey
from repro.crypto.rabin import generate_key


@pytest.fixture(scope="module")
def rng():
    return random.Random(95)


@pytest.fixture(scope="module")
def key(rng):
    return generate_key(768, rng)


def test_private_key_encryption_roundtrip(key):
    blob = sfskey.encrypt_private_key(key, b"password", b"salt", cost=2)
    restored = sfskey.decrypt_private_key(blob, b"password", b"salt", cost=2)
    assert restored == key


def test_private_key_blob_hides_key(key):
    blob = sfskey.encrypt_private_key(key, b"password", b"salt", cost=2)
    assert key.to_bytes() not in blob


def test_wrong_password_fails(key):
    blob = sfskey.encrypt_private_key(key, b"password", b"salt", cost=2)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.decrypt_private_key(blob, b"wrong", b"salt", cost=2)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.decrypt_private_key(blob, b"password", b"other", cost=2)
    with pytest.raises(sfskey.SfsKeyError):
        sfskey.decrypt_private_key(blob, b"password", b"salt", cost=3)


def test_prepare_enrolment(rng):
    enrolment = sfskey.prepare_enrolment("alice", b"pw", rng,
                                         cost=2, key_bits=768)
    assert enrolment.user == "alice"
    assert enrolment.srp_cost == 2
    assert enrolment.srp_verifier > 0
    assert len(enrolment.srp_salt) == 16
    restored = sfskey.decrypt_private_key(
        enrolment.encrypted_privkey, b"pw", enrolment.srp_salt, 2
    )
    assert restored == enrolment.key


def test_prepare_enrolment_with_existing_key(rng, key):
    enrolment = sfskey.prepare_enrolment("bob", b"pw", rng, key=key, cost=2)
    assert enrolment.key is key
