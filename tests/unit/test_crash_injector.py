"""Tests for crash-point fault injection and the clock's timer wheel."""

import pytest

from repro.sim.clock import Clock
from repro.sim.crash import CRASH_POINTS, CrashInjector, ServerCrashed


def test_unknown_point_rejected():
    with pytest.raises(ValueError):
        CrashInjector([("half-baked", 1)])
    injector = CrashInjector()
    with pytest.raises(ValueError):
        injector.arm("half-baked")


def test_counts_are_one_based():
    with pytest.raises(ValueError):
        CrashInjector([("after-write", 0)])


def test_fires_on_nth_hit_only():
    closed = []
    injector = CrashInjector([("after-write", 3)], on_crash=closed.append)
    injector.hit("after-write")
    injector.hit("after-write")
    assert closed == [] and injector.fired == []
    with pytest.raises(ServerCrashed) as excinfo:
        injector.hit("after-write")
    assert excinfo.value.point == "after-write"
    assert excinfo.value.hit == 3
    assert isinstance(excinfo.value, ConnectionError)
    assert injector.fired == [("after-write", 3)]
    assert injector.pending == 0
    # Later hits at the same point pass through unarmed.
    injector.hit("after-write")


def test_on_crash_runs_before_the_raise():
    order = []
    injector = CrashInjector(
        [("mid-resync", 1)],
        on_crash=lambda point: order.append(("closed", point)),
    )
    try:
        injector.hit("mid-resync")
    except ServerCrashed:
        order.append(("raised", "mid-resync"))
    assert order == [("closed", "mid-resync"), ("raised", "mid-resync")]


def test_same_point_can_fire_repeatedly():
    injector = CrashInjector([("after-write", 1), ("after-write", 3)])
    with pytest.raises(ServerCrashed):
        injector.hit("after-write")
    injector.hit("after-write")
    with pytest.raises(ServerCrashed):
        injector.hit("after-write")
    assert injector.fired == [("after-write", 1), ("after-write", 3)]
    assert injector.hits["after-write"] == 3


def test_unarmed_points_count_but_never_fire():
    injector = CrashInjector()
    for point in CRASH_POINTS:
        injector.hit(point)
    assert injector.fired == []
    assert all(injector.hits[p] == 1 for p in CRASH_POINTS)


def test_clock_call_at_fires_during_advance():
    clock = Clock()
    fired = []
    clock.call_at(1.0, lambda: fired.append(clock.now))
    clock.advance(0.5)
    assert fired == []
    clock.advance(0.6)
    assert fired == [1.1]


def test_clock_call_at_past_deadline_fires_on_zero_advance():
    clock = Clock()
    clock.advance(2.0)
    fired = []
    clock.call_at(1.0, lambda: fired.append(True))
    assert fired == []  # registration alone never runs callbacks
    clock.advance(0.0)
    assert fired == [True]


def test_clock_timers_fire_in_deadline_then_registration_order():
    clock = Clock()
    fired = []
    clock.call_at(2.0, lambda: fired.append("b"))
    clock.call_at(1.0, lambda: fired.append("a"))
    clock.call_at(2.0, lambda: fired.append("c"))
    clock.advance(5.0)
    assert fired == ["a", "b", "c"]


def test_clock_reset_clears_timers():
    clock = Clock()
    fired = []
    clock.call_at(1.0, lambda: fired.append(True))
    clock.reset()
    clock.advance(5.0)
    assert fired == []
