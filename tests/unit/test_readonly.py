"""Tests for the read-only dialect (repro.core.readonly)."""

import random

import pytest

from repro.core import proto
from repro.core.pathnames import make_path
from repro.core.readonly import (
    CHUNK_SIZE,
    ReadOnlyClient,
    ReadOnlyError,
    ReadOnlyImage,
    ReadOnlyStore,
    RoDir,
    RoDirEntry,
    RoFile,
    RoNode,
    RO_DIR,
    RO_REG,
    publish,
)
from repro.crypto.sha1 import sha1
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(90))


@pytest.fixture(scope="module")
def image(key):
    fs = MemFs()
    pathops.write_file(fs, "/docs/readme.txt", b"hello read-only world")
    pathops.write_file(fs, "/docs/big.bin", bytes(range(256)) * 100)
    pathops.symlink(fs, "/latest", "docs")
    return publish(fs, key, "ro.example.com", serial=5)


def make_client(image, key, path=None):
    store = ReadOnlyStore(image)

    def fetch_root():
        res = store.get_root()
        res.public_key = key.public_key.to_bytes()
        return res

    return ReadOnlyClient(
        path or make_path("ro.example.com", key.public_key),
        fetch_root, store.get_data,
    ), store


def test_publish_produces_signed_root(image, key):
    assert image.serial == 5
    assert key.public_key.verify(image.root_bytes, image.signature)
    assert image.root_digest in image.store


def test_client_verifies_and_navigates(image, key):
    client, _store = make_client(image, key)
    docs = client.lookup(client.root_digest, "docs")
    readme = client.lookup(docs, "readme.txt")
    assert client.read_file(readme) == b"hello read-only world"
    assert client.readlink(client.lookup(client.root_digest, "latest")) == "docs"
    names = [name for name, _d in client.listdir(client.root_digest)]
    assert names == ["docs", "latest"]


def test_resolve_path(image, key):
    client, _store = make_client(image, key)
    digest = client.resolve_path("docs/readme.txt")
    assert client.read_file(digest) == b"hello read-only world"


def test_chunked_reads(image, key):
    client, _store = make_client(image, key)
    digest = client.resolve_path("docs/big.bin")
    full = bytes(range(256)) * 100
    assert client.read_file(digest) == full
    assert client.read_file(digest, 5, 10) == full[5:15]
    assert client.read_file(digest, CHUNK_SIZE - 3, 10) == (
        full[CHUNK_SIZE - 3 : CHUNK_SIZE + 7]
    )
    assert client.read_file(digest, len(full) + 10, 5) == b""


def test_wrong_key_for_pathname_rejected(image, key):
    other = generate_key(768, random.Random(91))
    wrong_path = make_path("ro.example.com", other.public_key)
    with pytest.raises(ReadOnlyError):
        make_client(image, key, path=wrong_path)


def test_wrong_location_rejected(image, key):
    wrong_path = make_path("other.example.com", key.public_key)
    with pytest.raises(ReadOnlyError):
        make_client(image, key, path=wrong_path)


def test_tampered_signature_rejected(image, key):
    evil = image.replicate()
    evil.signature = bytes(len(evil.signature))
    with pytest.raises(ReadOnlyError):
        make_client(evil, key)


def test_tampered_blob_detected(image, key):
    evil = image.replicate()
    # corrupt the blob holding the readme's content
    for digest, blob in evil.store.items():
        if b"hello read-only" in blob:
            evil.store[digest] = blob.replace(b"hello", b"jello")
            break
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError):
        client.read_file(client.resolve_path("docs/readme.txt"))


def test_missing_blob_detected(image, key):
    evil = image.replicate()
    client, _store = make_client(image, key)
    target = client.resolve_path("docs/big.bin")
    del evil.store[target]
    client2, _store2 = make_client(evil, key)
    with pytest.raises(ReadOnlyError):
        client2.node(target)


def test_type_confusion_rejected(image, key):
    client, _store = make_client(image, key)
    file_digest = client.resolve_path("docs/readme.txt")
    with pytest.raises(ReadOnlyError):
        client.lookup(file_digest, "x")
    with pytest.raises(ReadOnlyError):
        client.listdir(file_digest)
    with pytest.raises(ReadOnlyError):
        client.readlink(file_digest)
    dir_digest = client.resolve_path("docs")
    with pytest.raises(ReadOnlyError):
        client.read_file(dir_digest)


def test_lookup_missing_entry(image, key):
    client, _store = make_client(image, key)
    with pytest.raises(ReadOnlyError):
        client.lookup(client.root_digest, "nonexistent")


def test_client_caches_blobs(image, key):
    client, store = make_client(image, key)
    client.read_file(client.resolve_path("docs/readme.txt"))
    calls_before = store.getdata_calls
    client.read_file(client.resolve_path("docs/readme.txt"))
    assert store.getdata_calls == calls_before  # all cache hits


def test_replicate_is_deep_enough(image):
    copy = image.replicate()
    copy.store.clear()
    assert image.store  # original unaffected


def make_signed_image(key, location, file_nodes):
    """Sign a hand-crafted store: an image from a *malicious publisher*.

    Every blob is digest-valid and the root signature verifies — the
    malformations live in the signed metadata itself (size vs chunk
    list), which is exactly what a correctly-signing but hostile
    publisher can produce.
    """
    store = {}

    def put(blob):
        digest = sha1(blob)
        store[digest] = blob
        return digest

    entries = []
    for name, size, chunk_blobs in file_nodes:
        chunks = [put(blob) for blob in chunk_blobs]
        node = put(RoNode.pack((RO_REG, RoFile.make(
            size=size, mode=0o644, chunks=chunks))))
        entries.append(RoDirEntry.make(name=name, digest=node))
    root_digest = put(RoNode.pack((RO_DIR, RoDir.make(
        mode=0o755, entries=entries))))
    root_bytes = proto.ReadOnlyRoot.pack(proto.ReadOnlyRoot.make(
        msg_type="RoRoot", location=location,
        root_digest=root_digest, serial=1,
    ))
    return ReadOnlyImage(location, root_bytes, key.sign(root_bytes),
                         store, key.public_key.to_bytes())


def test_size_exceeding_chunk_list_raises_readonly_error(key):
    """A signed size past the chunk list must not escape as IndexError."""
    evil = make_signed_image(key, "ro.example.com",
                             [("f", 3 * CHUNK_SIZE, [b"x" * CHUNK_SIZE])])
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError, match="chunk list"):
        client.read_file(client.resolve_path("f"))
    # A read that stays inside the existing chunks is just as rejected:
    # the node is malformed, not merely short.
    with pytest.raises(ReadOnlyError):
        client.read_file(client.resolve_path("f"), 0, 10)


def test_size_smaller_than_chunk_list_rejected(key):
    evil = make_signed_image(key, "ro.example.com",
                             [("f", 5, [b"x" * CHUNK_SIZE, b"y" * 7])])
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError, match="chunk list"):
        client.read_file(client.resolve_path("f"))


def test_overlength_interior_chunk_rejected(key):
    """An interior chunk longer than CHUNK_SIZE would silently shift
    every subsequent byte; it must raise, never misalign."""
    evil = make_signed_image(
        key, "ro.example.com",
        [("f", CHUNK_SIZE + 100,
          [b"x" * (CHUNK_SIZE + 16), b"y" * 84])],
    )
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError, match="chunk 0"):
        client.read_file(client.resolve_path("f"))


def test_short_final_chunk_mismatch_rejected(key):
    evil = make_signed_image(
        key, "ro.example.com",
        [("f", CHUNK_SIZE + 100, [b"x" * CHUNK_SIZE, b"y" * 10])],
    )
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError, match="chunk 1"):
        client.read_file(client.resolve_path("f"))


def test_wellformed_crafted_image_still_reads(key):
    """The validator accepts exactly what publish() produces."""
    content = bytes(range(256)) * 40  # 10240 bytes: one full + one partial
    image = make_signed_image(
        key, "ro.example.com",
        [("f", len(content), [content[:CHUNK_SIZE], content[CHUNK_SIZE:]])],
    )
    client, _store = make_client(image, key)
    digest = client.resolve_path("f")
    assert client.read_file(digest) == content
    assert client.read_file(digest, CHUNK_SIZE - 5, 10) == (
        content[CHUNK_SIZE - 5 : CHUNK_SIZE + 5]
    )


def distinct_chunk_image(key, chunks=4, tail=1024):
    """An image whose file has *distinct* chunk contents (the fixture's
    repeating pattern dedupes into one blob, which defeats any test of
    cache pressure)."""
    import random as _random

    rng = _random.Random(12345)
    blobs = [bytes(rng.randrange(256) for _ in range(CHUNK_SIZE))
             for _ in range(chunks - 1)]
    blobs.append(bytes(rng.randrange(256) for _ in range(tail)))
    size = (chunks - 1) * CHUNK_SIZE + tail
    image = make_signed_image(key, "ro.example.com", [("f", size, blobs)])
    return image, b"".join(blobs)


def test_cache_is_bounded_lru(key):
    from repro.obs.registry import MetricsRegistry

    image, content = distinct_chunk_image(key)
    metrics = MetricsRegistry()
    store = ReadOnlyStore(image)

    def fetch_root():
        res = store.get_root()
        res.public_key = key.public_key.to_bytes()
        return res

    client = ReadOnlyClient(
        make_path("ro.example.com", key.public_key),
        fetch_root, store.get_data,
        cache_bytes=2 * CHUNK_SIZE, metrics=metrics,
    )
    digest = client.resolve_path("f")
    assert client.read_file(digest) == content
    assert metrics.counter("readonly.cache_evictions").value > 0
    # The cache never exceeds its budget...
    assert client._cached_bytes <= 2 * CHUNK_SIZE
    # ...and an evicted blob is refetched on the next read (the cache
    # does not pretend to still hold the whole image).
    calls_before = store.getdata_calls
    assert client.read_file(digest) == content
    assert store.getdata_calls > calls_before


def test_evicted_blob_is_reverified_on_refetch(key):
    """The verify-on-refetch invariant: eviction means the next fetch
    goes back to the (untrusted) server and re-checks the digest, so a
    mirror that turns hostile after the first read is still caught."""
    image, content = distinct_chunk_image(key)
    store = ReadOnlyStore(image)

    def fetch_root():
        res = store.get_root()
        res.public_key = key.public_key.to_bytes()
        return res

    client = ReadOnlyClient(
        make_path("ro.example.com", key.public_key),
        fetch_root, store.get_data, cache_bytes=2 * CHUNK_SIZE,
    )
    digest = client.resolve_path("f")
    assert client.read_file(digest) == content
    kind, body = client.node(digest)
    tampered = body.chunks[0]
    assert tampered not in client._cache  # evicted under the small budget
    store.image.store[tampered] = b"Z" * CHUNK_SIZE
    with pytest.raises(ReadOnlyError, match="digest mismatch"):
        client.read_file(digest)


def test_cache_keeps_hot_blob_under_pressure(key):
    """LRU, not FIFO: re-touching a blob protects it from eviction."""
    image, _content = distinct_chunk_image(key, chunks=6)
    client, _store = make_client(image, key)
    client._cache_limit = 3 * CHUNK_SIZE
    digest = client.resolve_path("f")
    kind, body = client.node(digest)
    hot = body.chunks[0]
    client.fetch(hot)
    for chunk in body.chunks[1:]:
        client.fetch(hot)  # keep the hot blob most-recently-used
        client.fetch(chunk)
    assert hot in client._cache


def test_publish_content_addressing_dedupes(key):
    fs = MemFs()
    pathops.write_file(fs, "/a", b"same bytes")
    pathops.write_file(fs, "/b", b"same bytes")
    image = publish(fs, key, "dedupe.example.com")
    # identical chunks and identical file nodes share storage
    content_blobs = [b for b in image.store.values() if b == b"same bytes"]
    assert len(content_blobs) == 1
