"""Tests for the read-only dialect (repro.core.readonly)."""

import random

import pytest

from repro.core.pathnames import make_path
from repro.core.readonly import (
    CHUNK_SIZE,
    ReadOnlyClient,
    ReadOnlyError,
    ReadOnlyStore,
    RO_DIR,
    RO_REG,
    publish,
)
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(90))


@pytest.fixture(scope="module")
def image(key):
    fs = MemFs()
    pathops.write_file(fs, "/docs/readme.txt", b"hello read-only world")
    pathops.write_file(fs, "/docs/big.bin", bytes(range(256)) * 100)
    pathops.symlink(fs, "/latest", "docs")
    return publish(fs, key, "ro.example.com", serial=5)


def make_client(image, key, path=None):
    store = ReadOnlyStore(image)

    def fetch_root():
        res = store.get_root()
        res.public_key = key.public_key.to_bytes()
        return res

    return ReadOnlyClient(
        path or make_path("ro.example.com", key.public_key),
        fetch_root, store.get_data,
    ), store


def test_publish_produces_signed_root(image, key):
    assert image.serial == 5
    assert key.public_key.verify(image.root_bytes, image.signature)
    assert image.root_digest in image.store


def test_client_verifies_and_navigates(image, key):
    client, _store = make_client(image, key)
    docs = client.lookup(client.root_digest, "docs")
    readme = client.lookup(docs, "readme.txt")
    assert client.read_file(readme) == b"hello read-only world"
    assert client.readlink(client.lookup(client.root_digest, "latest")) == "docs"
    names = [name for name, _d in client.listdir(client.root_digest)]
    assert names == ["docs", "latest"]


def test_resolve_path(image, key):
    client, _store = make_client(image, key)
    digest = client.resolve_path("docs/readme.txt")
    assert client.read_file(digest) == b"hello read-only world"


def test_chunked_reads(image, key):
    client, _store = make_client(image, key)
    digest = client.resolve_path("docs/big.bin")
    full = bytes(range(256)) * 100
    assert client.read_file(digest) == full
    assert client.read_file(digest, 5, 10) == full[5:15]
    assert client.read_file(digest, CHUNK_SIZE - 3, 10) == (
        full[CHUNK_SIZE - 3 : CHUNK_SIZE + 7]
    )
    assert client.read_file(digest, len(full) + 10, 5) == b""


def test_wrong_key_for_pathname_rejected(image, key):
    other = generate_key(768, random.Random(91))
    wrong_path = make_path("ro.example.com", other.public_key)
    with pytest.raises(ReadOnlyError):
        make_client(image, key, path=wrong_path)


def test_wrong_location_rejected(image, key):
    wrong_path = make_path("other.example.com", key.public_key)
    with pytest.raises(ReadOnlyError):
        make_client(image, key, path=wrong_path)


def test_tampered_signature_rejected(image, key):
    evil = image.replicate()
    evil.signature = bytes(len(evil.signature))
    with pytest.raises(ReadOnlyError):
        make_client(evil, key)


def test_tampered_blob_detected(image, key):
    evil = image.replicate()
    # corrupt the blob holding the readme's content
    for digest, blob in evil.store.items():
        if b"hello read-only" in blob:
            evil.store[digest] = blob.replace(b"hello", b"jello")
            break
    client, _store = make_client(evil, key)
    with pytest.raises(ReadOnlyError):
        client.read_file(client.resolve_path("docs/readme.txt"))


def test_missing_blob_detected(image, key):
    evil = image.replicate()
    client, _store = make_client(image, key)
    target = client.resolve_path("docs/big.bin")
    del evil.store[target]
    client2, _store2 = make_client(evil, key)
    with pytest.raises(ReadOnlyError):
        client2.node(target)


def test_type_confusion_rejected(image, key):
    client, _store = make_client(image, key)
    file_digest = client.resolve_path("docs/readme.txt")
    with pytest.raises(ReadOnlyError):
        client.lookup(file_digest, "x")
    with pytest.raises(ReadOnlyError):
        client.listdir(file_digest)
    with pytest.raises(ReadOnlyError):
        client.readlink(file_digest)
    dir_digest = client.resolve_path("docs")
    with pytest.raises(ReadOnlyError):
        client.read_file(dir_digest)


def test_lookup_missing_entry(image, key):
    client, _store = make_client(image, key)
    with pytest.raises(ReadOnlyError):
        client.lookup(client.root_digest, "nonexistent")


def test_client_caches_blobs(image, key):
    client, store = make_client(image, key)
    client.read_file(client.resolve_path("docs/readme.txt"))
    calls_before = store.getdata_calls
    client.read_file(client.resolve_path("docs/readme.txt"))
    assert store.getdata_calls == calls_before  # all cache hits


def test_replicate_is_deep_enough(image):
    copy = image.replicate()
    copy.store.clear()
    assert image.store  # original unaffected


def test_publish_content_addressing_dedupes(key):
    fs = MemFs()
    pathops.write_file(fs, "/a", b"same bytes")
    pathops.write_file(fs, "/b", b"same bytes")
    image = publish(fs, key, "dedupe.example.com")
    # identical chunks and identical file nodes share storage
    content_blobs = [b for b in image.store.values() if b == b"same bytes"]
    assert len(content_blobs) == 1
