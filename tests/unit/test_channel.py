"""Tests for the SFS secure channel (repro.core.channel)."""

import pytest

from repro.core.channel import SecureChannel
from repro.sim.clock import Clock
from repro.sim.network import (
    DropAdversary,
    NetworkParameters,
    RecordingAdversary,
    ReplayAdversary,
    TamperAdversary,
    link_pair,
)

K_CS = b"c" * 20
K_SC = b"s" * 20


def make_channel_pair(adversary=None):
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    client = SecureChannel(a, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS)
    client_in, server_in = [], []
    client.on_receive(client_in.append)
    server.on_receive(server_in.append)
    return client, server, client_in, server_in


def test_bidirectional_delivery():
    client, server, client_in, server_in = make_channel_pair()
    client.send(b"request one")
    server.send(b"reply one")
    client.send(b"request two")
    assert server_in == [b"request one", b"request two"]
    assert client_in == [b"reply one"]


def test_ciphertext_differs_from_plaintext():
    recorder = RecordingAdversary()
    client, _server, _ci, server_in = make_channel_pair(recorder)
    client.send(b"super secret payload")
    assert server_in == [b"super secret payload"]
    wire = recorder.transcript[0][1]
    assert b"super secret payload" not in wire
    assert len(wire) == 4 + len(b"super secret payload") + 20


def test_identical_records_encrypt_differently():
    recorder = RecordingAdversary()
    client, _server, _ci, _si = make_channel_pair(recorder)
    client.send(b"same")
    client.send(b"same")
    assert recorder.transcript[0][1] != recorder.transcript[1][1]


def test_tampered_record_dropped_not_delivered():
    client, server, _ci, server_in = make_channel_pair(
        TamperAdversary(target_index=0)
    )
    client.send(b"payload")
    assert server_in == []
    assert server.rejected_records == 1


def test_replayed_record_dropped():
    client, _server, _ci, server_in = make_channel_pair(
        ReplayAdversary(replay_after=1, replay_index=0)
    )
    client.send(b"one")
    client.send(b"two")  # adversary appends a replay of "one"
    assert server_in == [b"one", b"two"]


def test_dropped_record_desynchronizes_stream():
    # A dropped record means subsequent traffic fails the MAC: the
    # attacker achieves denial of service, nothing more.
    client, server, _ci, server_in = make_channel_pair(
        DropAdversary(target_index=0)
    )
    client.send(b"lost")
    client.send(b"after")
    assert server_in == []
    assert server.rejected_records >= 1


def test_injected_garbage_dropped():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    client = SecureChannel(a, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS)
    server_in = []
    server.on_receive(server_in.append)
    client.on_receive(lambda d: None)
    a.send(b"raw injected bytes that are not a valid channel record")
    assert server_in == []
    assert server.rejected_records == 1


def test_short_record_dropped():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    SecureChannel(a, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS)
    server.on_receive(lambda d: None)
    a.send(b"tiny")
    assert server.rejected_records == 1


def test_plaintext_mode_passthrough():
    recorder = RecordingAdversary()
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant(), recorder)
    client = SecureChannel(a, send_key=K_CS, recv_key=K_SC, encrypt=False)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS, encrypt=False)
    server_in = []
    server.on_receive(server_in.append)
    client.on_receive(lambda d: None)
    client.send(b"visible")
    assert server_in == [b"visible"]
    assert recorder.transcript[0][1] == b"visible"


def test_empty_record():
    client, _server, _ci, server_in = make_channel_pair()
    client.send(b"")
    assert server_in == [b""]


def test_large_record():
    client, _server, _ci, server_in = make_channel_pair()
    blob = bytes(range(256)) * 128
    client.send(blob)
    assert server_in == [blob]


def test_stats_counters():
    client, server, _ci, _si = make_channel_pair()
    client.send(b"a")
    client.send(b"b")
    server.send(b"c")
    assert client.records_sent == 2
    assert server.records_received == 2
    assert client.records_received == 1


# --- supervision and recovery -------------------------------------------------

def test_no_handler_counts_instead_of_raising():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    client = SecureChannel(a, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS)
    client.on_receive(lambda d: None)
    client.send(b"nobody is listening")  # server has no handler yet
    assert server.unhandled_records == 1
    server_in = []
    server.on_receive(server_in.append)
    client.send(b"now they are")
    assert server_in == [b"now they are"]


def test_desync_signal_after_consecutive_rejects():
    fired = []
    client, server, _ci, _si = make_channel_pair(DropAdversary(target_index=0))
    server.on_desync = lambda: fired.append(True)
    client.send(b"lost")
    assert not server.desynchronized
    client.send(b"fails mac")
    client.send(b"fails mac too")
    assert server.desynchronized
    assert fired == [True]  # reported once per desync episode
    client.send(b"still failing")
    assert fired == [True]


def test_single_tamper_does_not_signal_desync():
    # One bad record with aligned streams is a lost record, not a broken
    # channel: the next record goes through and resets the count.
    client, server, _ci, server_in = make_channel_pair(
        TamperAdversary(target_index=0)
    )
    client.send(b"mangled")
    assert server.consecutive_rejects == 1
    client.send(b"fine")
    assert server_in == [b"fine"]
    assert server.consecutive_rejects == 0
    assert not server.desynchronized


def test_rekey_restores_desynchronized_channel():
    client, server, _ci, server_in = make_channel_pair(
        DropAdversary(target_index=0)
    )
    client.send(b"lost")
    client.send(b"rejected")
    client.send(b"rejected too")
    assert server.desynchronized
    client.rekey(b"n" * 20, b"m" * 20)
    server.rekey(b"m" * 20, b"n" * 20)
    assert not server.desynchronized
    assert server.rekeys == 1
    client.send(b"fresh streams")
    assert server_in == [b"fresh streams"]


def test_early_reject_keeps_mac_in_lockstep():
    # A record rejected before MAC verification (bad length after
    # decryption) must still burn a MAC slot: inject garbage, then check
    # legitimate traffic still flows.
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    client = SecureChannel(a, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(b, send_key=K_SC, recv_key=K_CS)
    server_in = []
    server.on_receive(server_in.append)
    client.on_receive(lambda d: None)
    a.send(b"x" * 40)  # decrypts to garbage: length check fails
    assert server.rejected_records == 1
    assert server._recv_mac.slots_consumed == 1  # slot burned, not skipped
    # The *cipher* stream is desynchronized by the 40 injected bytes —
    # that is unavoidable — but MAC and cipher moved together:
    assert server.consecutive_rejects == 1


def test_control_records_route_to_control_handler():
    from repro.core.channel import (
        RESYNC_REQUEST,
        make_control_record,
        parse_control_record,
    )

    client, server, _ci, server_in = make_channel_pair()
    payloads = []
    server.control_handler = payloads.append
    client.send_control(RESYNC_REQUEST)
    assert payloads == [RESYNC_REQUEST]
    assert server_in == []  # never reaches the data handler
    assert parse_control_record(make_control_record(b"p")) == b"p"
    assert parse_control_record(b"ordinary bytes") is None


def test_control_record_without_handler_is_rejected():
    client, server, _ci, server_in = make_channel_pair()
    client.send_control(b"nobody home")
    assert server_in == []
    assert server.rejected_records == 1
