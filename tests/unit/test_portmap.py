"""Tests for the port mapper (repro.rpc.portmap)."""

import pytest

from repro.rpc.peer import Program, RpcPeer
from repro.rpc.portmap import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    PortMapper,
    PortMapperClient,
)
from repro.rpc.xdr import Struct, UInt32
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair

ADD_ARGS = Struct("AddArgs", [("x", UInt32), ("y", UInt32)])


@pytest.fixture
def stack():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    server_peer = RpcPeer(b, "rpcbind-host")
    pmap = PortMapper(callit_peer=server_peer)
    server_peer.register(pmap.program)
    demo = Program("demo", 300300, 1)
    demo.add_proc(1, "ADD", ADD_ARGS, UInt32,
                  lambda args, ctx: args.x + args.y)
    server_peer.register(demo)
    client = PortMapperClient(RpcPeer(a, "querier"))
    return pmap, client


def test_set_getport(stack):
    _pmap, client = stack
    assert client.set(300300, 1, IPPROTO_TCP, 2049)
    assert client.getport(300300, 1, IPPROTO_TCP) == 2049
    assert client.getport(300300, 1, IPPROTO_UDP) == 0
    assert client.getport(999999, 1) == 0


def test_first_registration_wins(stack):
    _pmap, client = stack
    assert client.set(300300, 1, IPPROTO_TCP, 2049)
    assert not client.set(300300, 1, IPPROTO_TCP, 9999)
    assert client.getport(300300, 1) == 2049


def test_unset(stack):
    _pmap, client = stack
    client.set(300300, 1, IPPROTO_TCP, 2049)
    client.set(300300, 1, IPPROTO_UDP, 2049)
    assert client.unset(300300, 1)
    assert client.getport(300300, 1, IPPROTO_TCP) == 0
    assert not client.unset(300300, 1)  # nothing left


def test_dump(stack):
    _pmap, client = stack
    client.set(100003, 3, IPPROTO_UDP, 2049)
    client.set(100005, 3, IPPROTO_UDP, 635)
    listing = client.dump()
    assert (100003, 3, IPPROTO_UDP, 2049) in listing
    assert (100005, 3, IPPROTO_UDP, 635) in listing


def test_callit_relays_and_launders_identity(stack):
    """CALLIT forwards an RPC through the portmapper — which is exactly
    why the paper advises firewalls to block portmap traffic."""
    _pmap, client = stack
    client.set(300300, 1, IPPROTO_UDP, 1234)
    result = client.callit(300300, 1, 1, ADD_ARGS, {"x": 40, "y": 2}, UInt32)
    assert result == 42


def test_callit_unregistered_target_fails(stack):
    _pmap, client = stack
    from repro.rpc.peer import RpcRejected

    with pytest.raises(RpcRejected):
        client.callit(300300, 1, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)
