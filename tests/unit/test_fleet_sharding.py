"""Consistent-hash ring tests: determinism, balance, minimal movement."""

import pytest

from repro.fleet.sharding import HashRing


def hostids(count):
    """Stand-in HostID hex strings, like the fleet feeds the ring."""
    return [f"{index:040x}" for index in range(1, count + 1)]


def keys(count):
    return [f"name{index:04d}" for index in range(count)]


def test_lookup_is_deterministic_across_ring_instances():
    members = hostids(5)
    one = HashRing(members)
    two = HashRing(list(reversed(members)))  # insertion order irrelevant
    for key in keys(200):
        assert one.lookup(key) == two.lookup(key)


def test_every_key_lands_on_a_member():
    ring = HashRing(hostids(3))
    for key in keys(100):
        assert ring.lookup(key) in ring.members


def test_empty_ring_raises():
    with pytest.raises(LookupError):
        HashRing().lookup("anything")


def test_duplicate_member_rejected():
    ring = HashRing(hostids(1))
    with pytest.raises(ValueError):
        ring.add(hostids(1)[0])


def test_remove_unknown_member_raises():
    with pytest.raises(KeyError):
        HashRing(hostids(2)).remove("not-there")


def test_vnodes_must_be_positive():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)


def test_distribution_is_roughly_balanced():
    """With 64 vnodes each of 4 members owns a meaningful share — no
    member starves and none dominates."""
    ring = HashRing(hostids(4))
    counts = ring.distribution(keys(4000))
    assert sum(counts.values()) == 4000
    for member, count in counts.items():
        assert 0.10 * 4000 < count < 0.45 * 4000, (member, count)


def test_adding_a_member_moves_a_minority_of_keys():
    """The consistent-hashing contract: growth re-homes ~1/N of the
    keyspace, so everything that does not move stays exactly put."""
    members = hostids(4)
    ring = HashRing(members)
    names = keys(1000)
    before = {key: ring.lookup(key) for key in names}
    newcomer = f"{99:040x}"
    ring.add(newcomer)
    moved = 0
    for key in names:
        after = ring.lookup(key)
        if after != before[key]:
            moved += 1
            # Movement only ever flows TO the new member.
            assert after == newcomer
    # Expected share is 1/5 of the keys; allow generous slack but make
    # sure it is neither a full reshuffle nor a no-op.
    assert 0 < moved < 450


def test_removing_a_member_only_rehomes_its_keys():
    members = hostids(5)
    ring = HashRing(members)
    names = keys(1000)
    before = {key: ring.lookup(key) for key in names}
    victim = members[2]
    ring.remove(victim)
    for key in names:
        if before[key] == victim:
            assert ring.lookup(key) != victim
        else:
            assert ring.lookup(key) == before[key]


def test_bytes_and_str_keys_hash_identically():
    ring = HashRing(hostids(3))
    assert ring.lookup("alice") == ring.lookup(b"alice")
