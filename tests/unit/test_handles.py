"""Tests for NFS file handle schemes (repro.nfs3.handles)."""

import pytest
from hypothesis import given, strategies as st

from repro.nfs3.handles import BadHandle, EncryptedHandles, PlainHandles

KEY = b"k" * 20


def test_plain_roundtrip():
    handles = PlainHandles()
    encoded = handles.encode(7, 123456, 3)
    assert len(encoded) == handles.size
    assert handles.decode(encoded) == (7, 123456, 3)


def test_plain_rejects_wrong_length():
    with pytest.raises(BadHandle):
        PlainHandles().decode(b"short")


def test_encrypted_roundtrip():
    handles = EncryptedHandles(KEY)
    encoded = handles.encode(7, 123456, 3)
    assert len(encoded) == handles.size
    assert handles.decode(encoded) == (7, 123456, 3)


def test_encrypted_is_deterministic():
    handles = EncryptedHandles(KEY)
    assert handles.encode(1, 2, 3) == handles.encode(1, 2, 3)


def test_encrypted_hides_structure():
    handles = EncryptedHandles(KEY)
    plain = PlainHandles().encode(7, 123456, 3)
    encrypted = handles.encode(7, 123456, 3)
    assert plain not in encrypted
    # Near-identical inputs produce wildly different handles.
    other = handles.encode(7, 123457, 3)
    differing = sum(a != b for a, b in zip(encrypted, other))
    assert differing > 8


def test_tampered_handle_rejected():
    handles = EncryptedHandles(KEY)
    encoded = bytearray(handles.encode(1, 2, 3))
    encoded[5] ^= 1
    with pytest.raises(BadHandle):
        handles.decode(bytes(encoded))


def test_guessed_handle_rejected():
    handles = EncryptedHandles(KEY)
    with pytest.raises(BadHandle):
        handles.decode(b"\x00" * handles.size)


def test_wrong_key_rejected():
    encoded = EncryptedHandles(KEY).encode(1, 2, 3)
    with pytest.raises(BadHandle):
        EncryptedHandles(b"x" * 20).decode(encoded)


def test_key_length_enforced():
    with pytest.raises(ValueError):
        EncryptedHandles(b"short")


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1),
       st.integers(0, 2**32 - 1))
def test_encrypted_roundtrip_property(fsid, ino, generation):
    handles = EncryptedHandles(KEY)
    assert handles.decode(handles.encode(fsid, ino, generation)) == (
        fsid, ino, generation
    )
