"""Tests for the cooperative task scheduler (repro.sim.sched)."""

import pytest

from repro.sim.clock import Clock
from repro.sim.sched import Future, Scheduler, SchedulerStalled, Sleep


def make() -> Scheduler:
    return Scheduler(Clock(), seed=0)


# --- futures -------------------------------------------------------------

def test_future_first_resolution_wins():
    future = Future()
    assert future.resolve(1) is True
    assert future.resolve(2) is False
    assert future.fail(RuntimeError("late")) is False
    assert future.value == 1
    assert future.exception is None


def test_future_first_failure_wins():
    future = Future()
    error = RuntimeError("boom")
    assert future.fail(error) is True
    assert future.resolve(7) is False
    assert future.exception is error


def test_future_done_callback_fires_immediately_when_done():
    future = Future()
    future.resolve("x")
    seen = []
    future.add_done_callback(lambda f: seen.append(f.value))
    assert seen == ["x"]


# --- basic task lifecycle ------------------------------------------------

def test_task_returns_value():
    sched = make()

    def job():
        yield Sleep(0.5)
        return 42

    task = sched.spawn(job())
    assert sched.run() == []
    assert task.finished and not task.failed
    assert task.result == 42
    assert sched.clock.now == pytest.approx(0.5)


def test_sleep_orders_tasks_by_deadline():
    sched = make()
    order = []

    def sleeper(name, seconds):
        yield Sleep(seconds)
        order.append((name, sched.clock.now))

    sched.spawn(sleeper("late", 2.0))
    sched.spawn(sleeper("early", 1.0))
    sched.run()
    assert [name for name, _ in order] == ["early", "late"]
    assert order[0][1] == pytest.approx(1.0)
    assert order[1][1] == pytest.approx(2.0)


def test_yielding_plain_number_sleeps():
    sched = make()

    def job():
        yield 0.25

    sched.spawn(job())
    sched.run()
    assert sched.clock.now == pytest.approx(0.25)


def test_bad_yield_fails_task_with_type_error():
    sched = make()

    def job():
        yield "nonsense"

    task = sched.spawn(job())
    sched.run()
    assert task.failed
    assert isinstance(task.exception, TypeError)


def test_task_receives_future_value_and_exception():
    sched = make()
    ok, bad = Future(), Future()
    seen = {}

    def job():
        seen["value"] = yield ok
        try:
            yield bad
        except RuntimeError as exc:
            seen["error"] = str(exc)

    def driver():
        yield Sleep(0.1)
        ok.resolve("reply")
        yield Sleep(0.1)
        bad.fail(RuntimeError("down"))

    sched.spawn(job())
    sched.spawn(driver())
    assert sched.run() == []
    assert seen == {"value": "reply", "error": "down"}


# --- determinism ---------------------------------------------------------

def _interleaving(seed):
    sched = Scheduler(Clock(), seed=seed)
    order = []

    def worker(name):
        for _ in range(4):
            order.append(name)
            yield Sleep(0.0)

    for name in ("a", "b", "c"):
        sched.spawn(worker(name))
    sched.run()
    return order


def test_same_seed_same_interleaving():
    assert _interleaving(7) == _interleaving(7)


def test_different_seeds_differ_somewhere():
    runs = {tuple(_interleaving(seed)) for seed in range(8)}
    assert len(runs) > 1


# --- liveness, daemons, drain --------------------------------------------

def test_run_returns_blocked_tasks():
    sched = make()
    never = Future("never")

    def stuck():
        yield never

    task = sched.spawn(stuck(), name="stuck")
    blocked = sched.run()
    assert blocked == [task]


def test_drain_raises_on_hung_task():
    sched = make()

    def stuck():
        yield Future()

    sched.spawn(stuck(), name="hung-one")
    with pytest.raises(AssertionError, match="hung-one"):
        sched.drain()


def test_daemons_do_not_hold_the_loop_open():
    sched = make()
    served = []
    wakeup = Future()

    def daemon():
        while True:
            yield Sleep(0.1)
            served.append(sched.clock.now)

    def job():
        yield Sleep(0.35)

    sched.spawn(daemon(), daemon=True)
    sched.spawn(job())
    assert sched.run() == []
    # The daemon ran while the real task lived, then was abandoned.
    assert len(served) == 3
    assert not wakeup.done


def test_daemon_blocked_on_future_is_not_hung():
    sched = make()

    def daemon():
        yield Future("arrival")

    sched.spawn(daemon(), daemon=True)
    sched.drain()  # must not raise


# --- pump_once -----------------------------------------------------------

def test_pump_once_stalls_when_nothing_can_move():
    sched = make()
    with pytest.raises(SchedulerStalled):
        sched.pump_once()


def test_pump_once_advances_clock_to_next_deadline():
    sched = make()

    def job():
        yield Sleep(1.5)

    sched.spawn(job())
    sched.pump_once()                      # step: parks on the timer
    assert sched.clock.now == 0.0
    sched.pump_once()                      # no ready task: advance time
    assert sched.clock.now == pytest.approx(1.5)


def test_pumping_inside_a_task_step_never_resteps_self():
    """A task that pumps the scheduler mid-step (the sync handshake
    path) must only ever step *other* tasks — a generator cannot be
    resumed while it is running."""
    sched = make()
    progressed = []

    def other():
        progressed.append("other")
        yield Sleep(0.0)

    def pumper():
        while not progressed:
            sched.pump_once()
        yield Sleep(0.0)

    sched.spawn(pumper())
    sched.spawn(other())
    assert sched.run() == []
    assert progressed == ["other"]


def test_run_all_helper():
    sched = make()

    def job(value):
        yield Sleep(0.0)
        return value

    tasks = sched.run_all([job(1), job(2)], name="batch")
    assert sorted(t.result for t in tasks) == [1, 2]
    assert {t.name for t in tasks} == {"batch-0", "batch-1"}


def test_scheduler_counters():
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    sched = Scheduler(Clock(), seed=0, metrics=registry)

    def ok():
        yield Sleep(0.0)

    def bad():
        raise RuntimeError("x")
        yield  # pragma: no cover

    sched.spawn(ok())
    sched.spawn(bad())
    sched.run()
    assert registry.counter("sched.tasks_spawned").value == 2
    assert registry.counter("sched.tasks_failed").value == 1
    assert registry.counter("sched.steps").value == sched.steps > 0
