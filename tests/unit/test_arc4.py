"""Tests for ARC4 (repro.crypto.arc4), including the SFS key-schedule
variant for 20-byte keys."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.arc4 import ARC4

# RFC 6229 test vectors (single-spin keystreams).
RFC6229 = [
    (bytes.fromhex("0102030405"), 0,
     "b2396305f03dc027ccc3524a0a1118a8"),
    (bytes.fromhex("0102030405060708"), 0,
     "97ab8a1bf0afb96132f2f67258da15a8"),
    (bytes.fromhex("0102030405060708090a0b0c0d0e0f10"), 0,
     "9ac7cc9a609d1ef7b2932899cde41b97"),
    (bytes.fromhex("0102030405060708090a0b0c0d0e0f101112131415161718"
                   "191a1b1c1d1e1f20"), 0,
     "eaa6bd25880bf93d3f5d1e4ca2611d91"),
]


@pytest.mark.parametrize("key,offset,expected", RFC6229)
def test_rfc6229_keystream(key, offset, expected):
    cipher = ARC4(key, spins=1)
    cipher.keystream(offset)
    assert cipher.keystream(16).hex() == expected


def test_sfs_20_byte_key_spins_twice():
    key = b"K" * 20
    double = ARC4(key)                 # default: ceil(160/128) = 2 spins
    single = ARC4(key, spins=1)
    explicit = ARC4(key, spins=2)
    assert double.keystream(32) == explicit.keystream(32)
    assert ARC4(key).keystream(32) != single.keystream(32)


def test_16_byte_key_defaults_to_single_spin():
    key = b"k" * 16
    assert ARC4(key).keystream(16) == ARC4(key, spins=1).keystream(16)


def test_encrypt_decrypt_are_symmetric():
    data = b"the length, message, and MAC all get encrypted"
    ciphertext = ARC4(b"secret key").encrypt(data)
    assert ciphertext != data
    assert ARC4(b"secret key").decrypt(ciphertext) == data


def test_stream_is_stateful():
    cipher = ARC4(b"secret key")
    first = cipher.process(b"AAAA")
    second = cipher.process(b"AAAA")
    assert first != second  # keystream advanced


def test_empty_input():
    assert ARC4(b"k").process(b"") == b""


@pytest.mark.parametrize("key", [b"", b"x" * 257])
def test_invalid_keys_rejected(key):
    with pytest.raises(ValueError):
        ARC4(key)


@given(st.binary(min_size=1, max_size=64), st.binary(max_size=512))
def test_roundtrip_property(key, data):
    assert ARC4(key).decrypt(ARC4(key).encrypt(data)) == data


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=256))
def test_process_equals_bytewise_xor(key, data):
    stream = ARC4(key).keystream(len(data))
    expected = bytes(a ^ b for a, b in zip(data, stream))
    assert ARC4(key).process(data) == expected


@given(st.binary(min_size=1, max_size=32),
       st.lists(st.integers(min_value=0, max_value=64), max_size=6))
def test_keystream_chunking_invariance(key, chunks):
    total = sum(chunks)
    whole = ARC4(key).keystream(total)
    cipher = ARC4(key)
    pieces = b"".join(cipher.keystream(n) for n in chunks)
    assert pieces == whole
