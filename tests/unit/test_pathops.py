"""Tests for server-side path helpers (repro.fs.pathops)."""

import pytest

from repro.fs.memfs import Cred, FsError, MemFs, NF_DIR, NF_LNK
from repro.fs import pathops


@pytest.fixture
def fs():
    return MemFs()


def test_mkdirs_creates_chain(fs):
    leaf = pathops.mkdirs(fs, "/a/b/c")
    assert leaf.ftype == NF_DIR
    again = pathops.mkdirs(fs, "/a/b/c")
    assert again.ino == leaf.ino  # idempotent


def test_mkdirs_conflicts_with_file(fs):
    pathops.write_file(fs, "/a", b"file")
    with pytest.raises(FsError):
        pathops.mkdirs(fs, "/a/b")


def test_write_read_file(fs):
    pathops.write_file(fs, "/dir/file.txt", b"contents")
    assert pathops.read_file(fs, "/dir/file.txt") == b"contents"
    # overwrite truncates
    pathops.write_file(fs, "/dir/file.txt", b"x")
    assert pathops.read_file(fs, "/dir/file.txt") == b"x"


def test_symlink_resolution(fs):
    pathops.write_file(fs, "/real/data", b"1")
    pathops.symlink(fs, "/alias", "real")
    assert pathops.read_file(fs, "/alias/data") == b"1"
    pathops.symlink(fs, "/abs", "/real/data")
    assert pathops.read_file(fs, "/abs") == b"1"


def test_resolve_nofollow(fs):
    pathops.symlink(fs, "/link", "/anywhere")
    inode = pathops.resolve(fs, "/link", follow=False)
    assert inode.ftype == NF_LNK


def test_symlink_loop_detected(fs):
    pathops.symlink(fs, "/l1", "/l2")
    pathops.symlink(fs, "/l2", "/l1")
    with pytest.raises(FsError):
        pathops.resolve(fs, "/l1")


def test_listdir(fs):
    pathops.write_file(fs, "/d/a", b"")
    pathops.write_file(fs, "/d/b", b"")
    pathops.mkdirs(fs, "/d/sub")
    assert sorted(pathops.listdir(fs, "/d")) == ["a", "b", "sub"]


def test_missing_path(fs):
    with pytest.raises(FsError):
        pathops.resolve(fs, "/no/such/path")
    with pytest.raises(FsError):
        pathops.read_file(fs, "/absent")


def test_empty_path_errors(fs):
    with pytest.raises(FsError):
        pathops.write_file(fs, "", b"x")
    with pytest.raises(FsError):
        pathops.symlink(fs, "/", "target")
