"""Tests for the task-native async core (PROTOCOLS.md section 17).

Windowed RPC pipelining, pipelined link delivery, NFS3 READV/WRITEV
batching, client-side readahead / write-gathering, and the strict-pump
discipline that proves the hot paths never fall back to scheduler
re-entrancy.
"""

import random

import pytest

from repro.bench.setups import SFS, make_setup
from repro.fs.memfs import MemFs
from repro.nfs3 import const as nfs_const
from repro.nfs3.client import Nfs3Client
from repro.nfs3.server import Nfs3Server
from repro.rpc.peer import Program, RetryPolicy, RpcPeer
from repro.rpc.rpcmsg import AuthSys
from repro.rpc.xdr import Struct, UInt32
from repro.sim.clock import Clock
from repro.sim.network import (
    BurstLossAdversary,
    NetworkParameters,
    link_pair,
)
from repro.sim.sched import Future, Scheduler, SchedulerStalled

ADD_ARGS = Struct("AddArgs", [("x", UInt32), ("y", UInt32)])
WAN = NetworkParameters(latency=0.02, bandwidth=5_000_000.0,
                        per_message_overhead=100)


def make_pipelined_pair(params=WAN, adversary=None, depth=None, clock=None):
    clock = clock or Clock()
    a, b = link_pair(clock, params, adversary, pipelined=True)
    if depth is not None:
        a.link.window_depth = depth
    client = RpcPeer(a, "client")
    server = RpcPeer(b, "server")
    return client, server, clock


def counting_program():
    program = Program("demo", 400000, 2)
    calls = []

    @program.proc(1, "ADD", ADD_ARGS, UInt32)
    def add(args, ctx):
        calls.append(args.x)
        return (args.x + args.y) & 0xFFFFFFFF

    return program, calls


# --- pipelined link delivery ---------------------------------------------

def test_pipelined_link_overlaps_wire_time():
    """Back-to-back sends schedule arrivals one serialization apart;
    the sender is never charged a round trip inline."""
    clock = Clock()
    a, b = link_pair(clock, WAN, pipelined=True)
    arrivals = []
    b.on_receive(lambda record: arrivals.append(clock.now))
    payload = b"x" * 5000  # ~1 ms serialization at 5 MB/s
    t0 = clock.now
    for _ in range(4):
        a.send(payload)
    assert clock.now == t0  # nothing charged inline
    while clock.next_deadline() is not None:
        clock.advance(clock.next_deadline() - clock.now)
    assert len(arrivals) == 4
    # First record: serialization + propagation.  Each subsequent one
    # queues behind the previous transmission, not behind a full RTT.
    tx = (5000 + WAN.per_message_overhead) / WAN.bandwidth
    assert arrivals[0] == pytest.approx(tx + WAN.latency)
    for earlier, later in zip(arrivals, arrivals[1:]):
        assert later - earlier == pytest.approx(tx)
    assert arrivals[-1] < 4 * (tx + WAN.latency)  # overlapped, not serial


def test_windowed_calls_overlap_round_trips():
    """Four concurrent windowed calls cost ~one RTT, not four."""
    client, server, clock = make_pipelined_pair(depth=8)
    program, calls = counting_program()
    server.register(program)
    scheduler = Scheduler(clock, seed=0)
    results = {}

    def caller(i):
        results[i] = yield from client.call_task(
            400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

    for i in range(4):
        scheduler.spawn(caller(i), name=f"caller-{i}")
    scheduler.drain()
    assert results == {i: i + 1 for i in range(4)}
    assert sorted(calls) == [0, 1, 2, 3]
    # Serial would cost 4 round trips (>= 160 ms at 20 ms latency).
    assert clock.now < 2.5 * (2 * WAN.latency)


# --- the send window ------------------------------------------------------

def test_window_full_backpressure_parks_not_spins():
    """Callers beyond the window park on a slot future; the scheduler
    never busy-steps them while they wait."""
    client, server, clock = make_pipelined_pair(depth=2)
    program, calls = counting_program()
    server.register(program)
    scheduler = Scheduler(clock, seed=0)
    results = {}

    def caller(i):
        results[i] = yield from client.call_task(
            400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

    for i in range(6):
        scheduler.spawn(caller(i), name=f"caller-{i}")
    scheduler.drain()
    assert results == {i: i + 1 for i in range(6)}
    assert client.window_waits == 4  # callers 2..5 parked for a slot
    # Parked means yielded on a Future — a handful of steps per task,
    # not a spin loop.  6 tasks x (spawn + slot + reply) stays tiny.
    assert scheduler.steps < 40


def test_window_slot_handoff_is_fifo():
    """Completions hand their slot to the *oldest* waiter: whatever
    order the (seeded-random) scheduler lets tasks reach the window,
    admission and execution follow that same order with depth 1."""
    client, server, clock = make_pipelined_pair(depth=1)
    program, calls = counting_program()
    server.register(program)
    scheduler = Scheduler(clock, seed=0)
    attempts = []

    def caller(i):
        attempts.append(i)
        yield from client.call_task(
            400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

    for i in range(5):
        scheduler.spawn(caller(i), name=f"caller-{i}")
    scheduler.drain()
    assert client.window_waits == 4
    assert calls == attempts  # FIFO: arrival at the window == admission


# --- loss recovery inside the window --------------------------------------

@pytest.mark.parametrize("seed", [2026, 31337])
def test_in_window_retransmit_recovers_burst_loss(seed):
    """Windowed calls retransmit through a correlated-loss burst and
    the duplicate-reply cache keeps execution at-most-once."""
    adversary = BurstLossAdversary(
        enter_rate=0.15, exit_rate=0.4, rng=random.Random(seed))
    client, server, clock = make_pipelined_pair(
        adversary=adversary, depth=4)
    client.retry_policy = RetryPolicy(max_attempts=8)
    program, calls = counting_program()
    server.register(program)
    scheduler = Scheduler(clock, seed=seed)
    results = {}

    def caller(i):
        results[i] = yield from client.call_task(
            400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

    for i in range(12):
        scheduler.spawn(caller(i), name=f"caller-{i}")
    scheduler.drain()
    assert results == {i: i + 1 for i in range(12)}
    assert adversary.dropped > 0
    assert client.retransmissions > 0
    # At-most-once: every procedure ran exactly once no matter how many
    # times its record crossed the (lossy) wire.
    assert sorted(calls) == list(range(12))


def test_burst_loss_run_is_deterministic():
    """Same seed, same world: identical clock, identical retransmit
    count.  The async core must not introduce nondeterminism."""
    def run(seed):
        adversary = BurstLossAdversary(
            enter_rate=0.15, exit_rate=0.4, rng=random.Random(seed))
        client, server, clock = make_pipelined_pair(
            adversary=adversary, depth=4)
        client.retry_policy = RetryPolicy(max_attempts=8)
        program, _calls = counting_program()
        server.register(program)
        scheduler = Scheduler(clock, seed=seed)

        def caller(i):
            yield from client.call_task(
                400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

        for i in range(12):
            scheduler.spawn(caller(i), name=f"caller-{i}")
        scheduler.drain()
        return clock.now, client.retransmissions, scheduler.steps

    assert run(2026) == run(2026)
    assert run(31337) == run(31337)


# --- out-of-order completion x duplicate-reply cache ----------------------

def test_out_of_order_completion_with_duplicate_replay():
    """Replies served in reverse order resolve the right futures, and a
    replayed request is answered from the reply cache, not re-executed."""
    client, server, clock = make_pipelined_pair(depth=4)
    program, calls = counting_program()
    server.register(program)
    captured = []
    server.dispatcher = lambda header, body, request: captured.append(
        (header, body, request))
    scheduler = Scheduler(clock, seed=0)
    results = {}

    def caller(i):
        results[i] = yield from client.call_task(
            400000, 2, 1, ADD_ARGS, {"x": i, "y": 1}, UInt32)

    for i in range(3):
        scheduler.spawn(caller(i), name=f"caller-{i}")
    while len(captured) < 3:
        scheduler.pump_once()
    arrival_xs = [ADD_ARGS.unpack(body).x for _h, body, _r in captured]
    # Serve newest-first: completions come back out of send order.
    for header, body, request in reversed(captured):
        server.serve_queued(header, body, request)
    assert calls == list(reversed(arrival_xs))
    # A retransmission of the first request arrives late: the cache
    # answers it and the handler does not run again.
    server._on_record(captured[0][2])
    assert server.duplicates_served == 1
    assert calls == list(reversed(arrival_xs))
    scheduler.drain()
    assert results == {0: 1, 1: 2, 2: 3}


# --- strict pump discipline (satellites 1 and 2) --------------------------

def test_strict_pump_asserts_from_inside_a_task():
    scheduler = Scheduler(Clock(), seed=0)
    scheduler.strict_pump = True
    errors = []

    def bad():
        try:
            scheduler.legacy_pump()
        except AssertionError as exc:
            errors.append(str(exc))
        yield 0.0

    scheduler.spawn(bad(), name="hot-path-task")
    scheduler.drain()
    assert len(errors) == 1
    assert "hot-path-task" in errors[0]
    assert "task-native" in errors[0]


def test_allow_legacy_pump_scopes_the_cold_path_escape():
    """Crash recovery may pump synchronously from inside a task, but
    only inside the explicit allowance scope."""
    scheduler = Scheduler(Clock(), seed=0)
    scheduler.strict_pump = True
    progressed = []

    def background():
        yield 0.0
        progressed.append(True)

    def recovering():
        with scheduler.allow_legacy_pump():
            while not progressed:
                scheduler.legacy_pump()
        yield 0.0

    scheduler.spawn(background(), name="background")
    scheduler.spawn(recovering(), name="recovering")
    scheduler.drain()
    assert progressed == [True]
    assert scheduler._pump_allowances == 0  # scope closed


def test_stall_message_names_blocked_task_and_waited_future():
    scheduler = Scheduler(Clock(), seed=0)
    never = Future(name="reply-that-never-comes")

    def stuck():
        yield never

    scheduler.spawn(stuck(), name="stuck-client")
    with pytest.raises(SchedulerStalled) as excinfo:
        while True:
            scheduler.pump_once()
    message = str(excinfo.value)
    assert "stuck-client" in message
    assert "reply-that-never-comes" in message
    assert "oldest pending timer" in message


# --- NFS3 vectored procedures ---------------------------------------------

@pytest.fixture
def nfs_stack():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    fs = MemFs(fsid=9)
    server = Nfs3Server(fs)
    server_peer = RpcPeer(b, "nfsd")
    server_peer.register(server.program)
    client = Nfs3Client(RpcPeer(a, "kernel"), AuthSys(uid=0, gid=0))
    return server, client


def test_readv_batches_multiple_segments(nfs_stack):
    server, client = nfs_stack
    root = server.root_handle()
    fh = client.create(root, "file", mode=0o644).obj
    client.write(fh, 0, bytes(range(256)) * 64, stable=nfs_const.FILE_SYNC)
    res = client.readv(fh, [(0, 100), (1000, 100), (16000, 1000)])
    assert [seg.count for seg in res.segments] == [100, 100, 384]
    assert res.segments[0].data == (bytes(range(256)) * 64)[:100]
    assert res.segments[2].eof
    assert res.file_attributes.size == 16384


def test_writev_gathers_multiple_segments(nfs_stack):
    server, client = nfs_stack
    root = server.root_handle()
    fh = client.create(root, "file", mode=0o644).obj
    res = client.writev(
        fh, [(0, b"aaaa"), (4096, b"bbbb"), (8192, b"cc")],
        stable=nfs_const.UNSTABLE)
    assert res.count == 10
    assert res.committed == nfs_const.UNSTABLE
    client.commit(fh)
    assert client.read(fh, 4096, 4).data == b"bbbb"
    assert client.read(fh, 8192, 4).data == b"cc"
    assert client.getattr(fh).size == 8194


# --- end-to-end: readahead + write-gathering under the kernel -------------

def _large_file_pass(depth, seed=7):
    setup = make_setup(SFS, seed=seed, pipeline_depth=depth)
    proc, clock = setup.process, setup.clock
    path = setup.workdir + "/big"
    chunk = bytes(range(256)) * 32  # 8 KB, patterned
    fd = proc.open(path, "w")
    for _ in range(32):
        proc.write(fd, chunk)
    proc.fsync(fd)
    proc.close(fd)
    fd = proc.open(path, "r")
    data = bytearray()
    while True:
        piece = proc.read(fd, 8192)
        if not piece:
            break
        data.extend(piece)
    proc.close(fd)
    return bytes(data), clock.now, setup.metrics.snapshot()["metrics"]


def _count(snapshot, name):
    value = snapshot.get(name, 0)
    return value if not isinstance(value, dict) else value.get("count", 0)


def test_readahead_and_gather_preserve_file_contents():
    legacy_data, _t, legacy_metrics = _large_file_pass(depth=0)
    piped_data, _t, piped_metrics = _large_file_pass(depth=8)
    assert piped_data == legacy_data == bytes(range(256)) * 32 * 32
    assert _count(legacy_metrics, "client.readahead.hits") == 0
    assert _count(piped_metrics, "client.readahead.hits") > 0
    assert _count(piped_metrics, "client.gather.writes") == 32
    assert _count(piped_metrics, "client.gather.flushes") >= 1
    assert _count(piped_metrics, "channel.mac_reject") == 0


def test_pipelined_kernel_run_is_deterministic():
    first = _large_file_pass(depth=8, seed=11)
    second = _large_file_pass(depth=8, seed=11)
    assert first[0] == second[0]
    assert first[1] == second[1]
