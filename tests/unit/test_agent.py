"""Tests for sfsagent (repro.core.agent)."""

import random

import pytest

from repro.core import proto
from repro.core.agent import Agent, AgentRefused
from repro.core.revocation import make_revocation_certificate
from repro.crypto.rabin import generate_key
from repro.crypto.sha1 import sha1


class FakeFsReader:
    """An in-memory stand-in for the agent's file system access."""

    def __init__(self):
        self.links: dict[str, str] = {}
        self.files: dict[str, bytes] = {}
        self.reads: list[str] = []

    def readlink(self, path):
        self.reads.append(path)
        return self.links.get(path)

    def readfile(self, path):
        self.reads.append(path)
        return self.files.get(path)


@pytest.fixture(scope="module")
def user_key():
    return generate_key(768, random.Random(81))


@pytest.fixture(scope="module")
def server_key():
    return generate_key(768, random.Random(82))


def make_agent(key=None, reader=None):
    agent = Agent("alice", random.Random(83), fs_reader=reader)
    if key is not None:
        agent.add_key(key)
    return agent


# --- signing ----------------------------------------------------------------

def test_sign_request_produces_valid_authmsg(user_key):
    agent = make_agent(user_key)
    info = b"marshaled AuthInfo bytes"
    blob = agent.sign_request(info, seqno=3)
    msg = proto.AuthMsg.unpack(blob)
    assert msg.public_key == user_key.public_key.to_bytes()
    assert user_key.public_key.verify(msg.signed_req, msg.signature)
    signed = proto.SignedAuthReq.unpack(msg.signed_req)
    assert signed.authid == sha1(info)
    assert signed.seqno == 3


def test_sign_keeps_audit_trail(user_key):
    agent = make_agent(user_key)
    agent.sign_request(b"info", 1)
    agent.sign_request(b"info", 2)
    assert len(agent.audit_log) == 2
    assert all(entry.operation == "sign" for entry in agent.audit_log)


def test_sign_without_key_refused():
    agent = make_agent()
    with pytest.raises(AgentRefused):
        agent.sign_request(b"info", 1)


def test_sign_selects_key_by_index(user_key, server_key):
    agent = make_agent(user_key)
    agent.add_key(server_key)  # a second identity
    blob = agent.sign_request(b"info", 1, key_index=1)
    msg = proto.AuthMsg.unpack(blob)
    assert msg.public_key == server_key.public_key.to_bytes()
    with pytest.raises(AgentRefused):
        agent.sign_request(b"info", 1, key_index=5)


# --- resolution ----------------------------------------------------------------

def test_explicit_links_win():
    agent = make_agent()
    agent.add_link("mit", "/sfs/host:" + "2" * 32)
    assert agent.resolve("mit") == "/sfs/host:" + "2" * 32
    assert agent.resolve("absent") is None
    agent.remove_link("mit")
    assert agent.resolve("mit") is None


def test_certification_path_order():
    reader = FakeFsReader()
    reader.links["/first/name"] = "/sfs/first-target"
    reader.links["/second/name"] = "/sfs/second-target"
    agent = make_agent(reader=reader)
    agent.certpaths = ["/first", "/second"]
    assert agent.resolve("name") == "/sfs/first-target"
    agent.certpaths = ["/second", "/first"]
    assert agent.resolve("name") == "/sfs/second-target"


def test_chained_resolvers():
    agent = make_agent()
    calls = []

    def resolver_a(name):
        calls.append(("a", name))
        return None

    def resolver_b(name):
        calls.append(("b", name))
        return f"/sfs/resolved-{name}"

    agent.add_resolver(resolver_a)
    agent.add_resolver(resolver_b)
    assert agent.resolve("web.ssl") == "/sfs/resolved-web.ssl"
    assert calls == [("a", "web.ssl"), ("b", "web.ssl")]


def test_links_beat_certpaths_beat_resolvers():
    reader = FakeFsReader()
    reader.links["/ca/name"] = "/sfs/from-ca"
    agent = make_agent(reader=reader)
    agent.certpaths = ["/ca"]
    agent.add_resolver(lambda name: "/sfs/from-resolver")
    assert agent.resolve("name") == "/sfs/from-ca"
    agent.add_link("name", "/sfs/from-link")
    assert agent.resolve("name") == "/sfs/from-link"


# --- revocation -------------------------------------------------------------------

def test_blocking_is_checked_first(server_key):
    from repro.core.pathnames import compute_hostid

    agent = make_agent()
    hostid = compute_hostid("srv.com", server_key.public_key)
    disc, cert = agent.check_revoked("srv.com", hostid)
    assert disc == proto.REVCHECK_CLEAR
    agent.block_hostid(hostid)
    disc, cert = agent.check_revoked("srv.com", hostid)
    assert disc == proto.REVCHECK_BLOCKED
    agent.unblock_hostid(hostid)
    assert agent.check_revoked("srv.com", hostid)[0] == proto.REVCHECK_CLEAR


def test_revocation_directory_lookup(server_key):
    from repro.core.pathnames import compute_hostid, hostid_to_text

    hostid = compute_hostid("srv.com", server_key.public_key)
    cert = make_revocation_certificate(server_key, "srv.com")
    reader = FakeFsReader()
    reader.files[f"/revdir/{hostid_to_text(hostid)}"] = (
        proto.SignedCertificate.pack(cert)
    )
    agent = make_agent(reader=reader)
    agent.revocation_dirs = ["/revdir"]
    disc, found = agent.check_revoked("srv.com", hostid)
    assert disc == proto.REVCHECK_REVOKED
    assert found is not None


def test_bad_certificate_in_directory_ignored(server_key, user_key):
    from repro.core.pathnames import compute_hostid, hostid_to_text

    hostid = compute_hostid("srv.com", server_key.public_key)
    # A cert for a DIFFERENT key filed under srv.com's HostID: bogus.
    wrong = make_revocation_certificate(user_key, "srv.com")
    reader = FakeFsReader()
    reader.files[f"/revdir/{hostid_to_text(hostid)}"] = (
        proto.SignedCertificate.pack(wrong)
    )
    reader.files["/revdir2/" + hostid_to_text(hostid)] = b"garbage bytes"
    agent = make_agent(reader=reader)
    agent.revocation_dirs = ["/revdir", "/revdir2"]
    disc, _cert = agent.check_revoked("srv.com", hostid)
    assert disc == proto.REVCHECK_CLEAR
