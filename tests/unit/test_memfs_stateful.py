"""Stateful property testing: MemFs against a dict-of-paths model.

Hypothesis drives random sequences of file system operations against
both the real MemFs and a trivially-correct reference model, checking
they agree after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.fs.memfs import Cred, FsError, MemFs, NF_DIR, NF_REG

ROOT = Cred(0, 0)

_NAMES = st.sampled_from([f"n{i}" for i in range(8)])
_DATA = st.binary(max_size=200)


class MemFsMachine(RuleBasedStateMachine):
    """Random create/write/mkdir/remove/rename against a path model."""

    directories = Bundle("directories")

    @initialize(target=directories)
    def setup(self):
        self.fs = MemFs()
        # model: path tuple -> b"..." for files, None for directories
        self.model: dict[tuple[str, ...], bytes | None] = {(): None}
        return ()

    def _ino(self, path: tuple[str, ...]) -> int:
        ino = self.fs.root_ino
        for part in path:
            ino = self.fs.lookup(ino, part, ROOT).ino
        return ino

    @rule(target=directories, parent=directories, name=_NAMES)
    def mkdir(self, parent, name):
        if parent not in self.model:
            return parent  # the bundle may hold removed directories
        path = parent + (name,)
        if path in self.model:
            try:
                self.fs.mkdir(self._ino(parent), name, ROOT)
                raise AssertionError("mkdir over existing entry succeeded")
            except FsError:
                pass
            # keep bundle entries valid: return parent unchanged
            return parent if self.model[path] is not None else path
        self.fs.mkdir(self._ino(parent), name, ROOT)
        self.model[path] = None
        return path

    @rule(parent=directories, name=_NAMES, data=_DATA)
    def write_file(self, parent, name, data):
        if parent not in self.model:
            return
        path = parent + (name,)
        if self.model.get(path, b"") is None:
            return  # a directory occupies the name
        inode = self.fs.create(self._ino(parent), name, ROOT)
        self.fs.setattr(inode.ino, ROOT, size=0)
        self.fs.write(inode.ino, 0, data, ROOT)
        self.model[path] = data

    @rule(parent=directories, name=_NAMES)
    def remove(self, parent, name):
        if parent not in self.model:
            return
        path = parent + (name,)
        kind = self.model.get(path, b"missing")
        if kind is None or kind == b"missing" or not isinstance(kind, bytes):
            return
        self.fs.remove(self._ino(parent), name, ROOT)
        del self.model[path]

    @rule(parent=directories, name=_NAMES)
    def rmdir_nonempty_or_missing_fails(self, parent, name):
        if parent not in self.model:
            return
        path = parent + (name,)
        if path not in self.model or self.model[path] is not None:
            # missing or a file: rmdir must fail
            try:
                self.fs.rmdir(self._ino(parent), name, ROOT)
                raise AssertionError("rmdir of non-directory succeeded")
            except FsError:
                return
        children = [p for p in self.model if p[: len(path)] == path and p != path]
        if children:
            try:
                self.fs.rmdir(self._ino(parent), name, ROOT)
                raise AssertionError("rmdir of non-empty dir succeeded")
            except FsError:
                return
        self.fs.rmdir(self._ino(parent), name, ROOT)
        del self.model[path]

    @invariant()
    def model_matches_filesystem(self):
        if not hasattr(self, "fs"):
            return
        for path, content in self.model.items():
            if path in ((),):
                continue
            try:
                ino = self._ino(path)
            except FsError:
                raise AssertionError(f"model has {path} but fs lost it")
            inode = self.fs.get_inode(ino)
            if content is None:
                assert inode.ftype == NF_DIR, f"{path} should be a dir"
            else:
                assert inode.ftype == NF_REG, f"{path} should be a file"
                data, _eof = self.fs.read(ino, 0, max(1, len(content)), ROOT)
                assert data == content, f"{path} content diverged"

    @invariant()
    def listings_match(self):
        if not hasattr(self, "fs"):
            return
        for path, content in list(self.model.items()):
            if content is not None:
                continue
            expected = {
                p[len(path)]
                for p in self.model
                if len(p) == len(path) + 1 and p[: len(path)] == path
            }
            entries, _eof = self.fs.readdir(self._ino(path), ROOT)
            actual = {name for name, _i, _c in entries if name not in (".", "..")}
            assert actual == expected, f"listing of {path} diverged"


MemFsMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestMemFsStateful = MemFsMachine.TestCase
