"""Tests for the shared exponential-backoff policy (repro.core.backoff)."""

import random

import pytest

from repro.core.backoff import BackoffPolicy, NO_RETRY


def test_first_attempt_is_immediate():
    delays = list(BackoffPolicy(jitter=0.0).delays(None))
    assert delays[0] == 0.0


def test_exponential_growth_without_jitter():
    policy = BackoffPolicy(max_attempts=6, base_delay=0.05, multiplier=2.0,
                           max_delay=10.0, jitter=0.0)
    assert list(policy.delays(None)) == [0.0, 0.05, 0.1, 0.2, 0.4, 0.8]


def test_cap_applies():
    policy = BackoffPolicy(max_attempts=6, base_delay=1.0, multiplier=4.0,
                           max_delay=3.0, jitter=0.0)
    assert list(policy.delays(None)) == [0.0, 1.0, 3.0, 3.0, 3.0, 3.0]


def test_yields_exactly_max_attempts_values():
    for attempts in (1, 2, 5, 9):
        policy = BackoffPolicy(max_attempts=attempts, jitter=0.0)
        assert len(list(policy.delays(None))) == attempts


def test_jitter_bounds_and_determinism():
    policy = BackoffPolicy(max_attempts=8, base_delay=0.1, multiplier=2.0,
                           max_delay=1.0, jitter=0.25)
    exact = list(BackoffPolicy(max_attempts=8, base_delay=0.1,
                               multiplier=2.0, max_delay=1.0,
                               jitter=0.0).delays(None))
    jittered = list(policy.delays(random.Random(7)))
    assert jittered[0] == 0.0
    for ideal, actual in zip(exact[1:], jittered[1:]):
        assert ideal * 0.75 <= actual <= ideal * 1.25
    # Same seed, same delays: runs are reproducible.
    assert jittered == list(policy.delays(random.Random(7)))
    assert jittered != list(policy.delays(random.Random(8)))


def test_jitter_without_rng_fails_loudly():
    """The old behavior — silently disabling jitter when rng is None —
    put every forgetful call site into fleet-wide lockstep retries, the
    exact thundering herd the policy exists to prevent.  Now it raises."""
    policy = BackoffPolicy(max_attempts=3, base_delay=0.5, jitter=0.5)
    with pytest.raises(ValueError, match="lockstep"):
        policy.delays(None)


def test_rng_argument_is_required():
    """Forgetting the argument entirely is a TypeError at the call,
    not a degraded retry train discovered in production."""
    with pytest.raises(TypeError):
        BackoffPolicy().delays()  # noqa: deliberate wrong arity


def test_two_clients_with_different_seeds_desynchronize():
    """The thundering-herd regression: two clients retrying against the
    same dead server must not share a delay train.  Every retry (past
    the immediate first attempt) should differ between seeds."""
    policy = BackoffPolicy()  # the production default, jitter enabled
    train_a = list(policy.delays(random.Random(1)))
    train_b = list(policy.delays(random.Random(2)))
    assert train_a[0] == train_b[0] == 0.0
    for wait_a, wait_b in zip(train_a[1:], train_b[1:]):
        assert wait_a != wait_b


def test_validation():
    with pytest.raises(ValueError):
        BackoffPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        BackoffPolicy(jitter=-0.1)


def test_no_retry_policy():
    assert list(NO_RETRY.delays(None)) == [0.0]
