"""Scenario spec compilation: the chaos matrix must fail loudly.

A scenario is plain data, and a typo in that data must never silently
weaken the scenario it describes (PROTOCOLS.md §15).  These tests pin
the validation surface: unknown keys, unknown event types and checks,
bad parameter values, and cross-section references (events naming
machines the topology never builds).
"""

import json

import pytest

from repro.scenario import (
    ScenarioSpecError,
    load_spec,
    spec_from_dict,
)


def minimal(**overrides):
    data = {"name": "t"}
    data.update(overrides)
    return data


# -- shape and defaults ------------------------------------------------------


def test_minimal_spec_gets_defaults():
    spec = spec_from_dict({"name": "t"})
    assert spec.name == "t"
    assert spec.seed == 2026
    assert spec.topology.servers == 1
    assert spec.workload.clients == 4
    assert spec.workload.phases[0].name == "main"
    assert spec.events == ()
    assert spec.assertions == ()


def test_spec_needs_a_name():
    with pytest.raises(ScenarioSpecError, match="needs a name"):
        spec_from_dict({"seed": 7})


def test_spec_must_be_a_mapping():
    with pytest.raises(ScenarioSpecError, match="must be a mapping"):
        spec_from_dict(["not", "a", "dict"])


def test_unknown_top_level_key_rejected():
    with pytest.raises(ScenarioSpecError, match="workloads"):
        spec_from_dict(minimal(workloads={}))  # typo'd section name


def test_unknown_topology_key_rejected():
    with pytest.raises(ScenarioSpecError, match="serverz"):
        spec_from_dict(minimal(topology={"serverz": 3}))


def test_unknown_workload_key_rejected():
    with pytest.raises(ScenarioSpecError, match="think"):
        spec_from_dict(minimal(workload={"think": 0.01}))


def test_non_numeric_field_rejected():
    with pytest.raises(ScenarioSpecError, match="must be a number"):
        spec_from_dict(minimal(topology={"servers": "two"}))


def test_below_minimum_rejected():
    with pytest.raises(ScenarioSpecError, match=">= 1"):
        spec_from_dict(minimal(topology={"servers": 0}))


# -- phases ------------------------------------------------------------------


def test_phase_needs_name_and_ops():
    with pytest.raises(ScenarioSpecError, match="ops_per_client"):
        spec_from_dict(minimal(workload={"phases": [{"name": "p"}]}))


def test_phase_names_must_be_unique():
    phases = [{"name": "p", "ops_per_client": 1},
              {"name": "p", "ops_per_client": 2}]
    with pytest.raises(ScenarioSpecError, match="unique"):
        spec_from_dict(minimal(workload={"phases": phases}))


def test_phase_mix_weights_validated():
    phases = [{"name": "p", "ops_per_client": 1,
               "mix": {"getattr": 0.0, "read": 0.0, "write": 0.0}}]
    with pytest.raises(ScenarioSpecError):
        spec_from_dict(minimal(workload={"phases": phases}))


def test_phase_mix_unknown_op_rejected():
    phases = [{"name": "p", "ops_per_client": 1, "mix": {"readdir": 1.0}}]
    with pytest.raises(ScenarioSpecError, match="readdir"):
        spec_from_dict(minimal(workload={"phases": phases}))


# -- events ------------------------------------------------------------------


def test_unknown_event_type_rejected():
    with pytest.raises(ScenarioSpecError, match="unknown event type"):
        spec_from_dict(minimal(events=[{"at": 0.1, "type": "meteor"}]))


def test_event_needs_a_time():
    with pytest.raises(ScenarioSpecError, match="'at' time"):
        spec_from_dict(minimal(events=[{"type": "crash"}]))


def test_event_unknown_param_rejected():
    events = [{"at": 0.1, "type": "crash", "server": "primary",
               "retry_after": 0.2}]  # typo'd restart_after
    with pytest.raises(ScenarioSpecError, match="retry_after"):
        spec_from_dict(minimal(events=events))


def test_events_sorted_by_time():
    events = [{"at": 0.5, "type": "crash", "server": "primary"},
              {"at": 0.1, "type": "restart", "server": "primary"}]
    spec = spec_from_dict(minimal(events=events))
    assert [event.at for event in spec.events] == [0.1, 0.5]


# -- cross-section references ------------------------------------------------


def test_event_naming_unknown_server_rejected():
    events = [{"at": 0.1, "type": "crash", "server": "s7"}]
    with pytest.raises(ScenarioSpecError, match="unknown server 's7'"):
        spec_from_dict(minimal(events=events))


def test_extra_server_aliases_resolve():
    spec = spec_from_dict(minimal(
        topology={"extra_servers": 2, "kernel_clients": 1, "names": 1},
        events=[{"at": 0.1, "type": "crash", "server": "x1"}],
    ))
    assert spec.events[0].params["server"] == "x1"


def test_control_tick_needs_a_control_plane():
    events = [{"at": 0.1, "type": "control_tick"}]
    with pytest.raises(ScenarioSpecError, match="topology.control"):
        spec_from_dict(minimal(events=events))


def test_revoke_needs_targets():
    events = [{"at": 0.1, "type": "revoke"}]
    with pytest.raises(ScenarioSpecError, match="extra_servers"):
        spec_from_dict(minimal(events=events))


def test_crash_point_on_unknown_server_rejected():
    topology = {"crash_points": [
        {"server": "ghost", "point": "lease-fanout"}]}
    with pytest.raises(ScenarioSpecError, match="ghost"):
        spec_from_dict(minimal(topology=topology))


def test_mirrors_need_names():
    with pytest.raises(ScenarioSpecError, match="no namespace to mirror"):
        spec_from_dict(minimal(topology={"mirrors": 1,
                                         "kernel_clients": 1}))


def test_names_need_kernel_clients():
    with pytest.raises(ScenarioSpecError, match="kernel_clients"):
        spec_from_dict(minimal(topology={"names": 1}))


def test_link_profile_for_unknown_host_rejected():
    with pytest.raises(ScenarioSpecError, match="unknown host"):
        spec_from_dict(minimal(links={"nowhere": {"latency": 0.01}}))


def test_link_profile_unknown_knob_rejected():
    with pytest.raises(ScenarioSpecError, match="jitter"):
        spec_from_dict(minimal(links={"primary": {"jitter": 0.01}}))


# -- assertions --------------------------------------------------------------


def test_unknown_check_rejected():
    with pytest.raises(ScenarioSpecError, match="unknown check"):
        spec_from_dict(minimal(assertions=[{"check": "vibes"}]))


def test_assertion_unknown_param_rejected():
    assertions = [{"check": "drain", "strict": True}]
    with pytest.raises(ScenarioSpecError, match="strict"):
        spec_from_dict(minimal(assertions=assertions))


# -- file loading ------------------------------------------------------------


def test_load_spec_roundtrips_json(tmp_path):
    data = minimal(
        seed=7,
        topology={"servers": 2},
        events=[{"at": 0.1, "type": "crash", "server": "s1",
                 "restart_after": 0.05}],
        assertions=[{"check": "drain"}],
    )
    path = tmp_path / "t.json"
    path.write_text(json.dumps(data))
    spec = load_spec(str(path))
    assert spec.seed == 7
    assert spec.topology.servers == 2
    assert spec.events[0].params == {"server": "s1", "restart_after": 0.05}
    assert spec.assertions[0].check == "drain"


def test_load_spec_bad_json_is_a_spec_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioSpecError):
        load_spec(str(path))


def test_shipped_library_loads_and_validates():
    from repro.scenario import load_library

    library = load_library()
    assert len(library) >= 6
    for name, spec in library.items():
        assert spec.name == name
        assert spec.assertions, f"{name} asserts nothing"
