"""Tests for the in-memory Unix file system (repro.fs.memfs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fs.memfs import (
    ACCESS_LOOKUP,
    ACCESS_MODIFY,
    ACCESS_READ,
    ANONYMOUS,
    Cred,
    ERR_ACCES,
    ERR_EXIST,
    ERR_INVAL,
    ERR_ISDIR,
    ERR_NOENT,
    ERR_NOTDIR,
    ERR_NOTEMPTY,
    ERR_PERM,
    ERR_ROFS,
    ERR_STALE,
    FileData,
    FsError,
    MemFs,
    NF_DIR,
    NF_LNK,
    NF_REG,
)

ROOT = Cred(0, 0)
ALICE = Cred(1000, 100)
BOB = Cred(1001, 100, groups=(200,))


@pytest.fixture
def fs():
    return MemFs(fsid=42)


def err(code):
    return pytest.raises(FsError, match="") if False else pytest.raises(FsError)


# --- FileData ----------------------------------------------------------------

def test_filedata_sparse_reads_zero():
    data = FileData()
    data.write(10_000, b"tail")
    assert data.size == 10_004
    assert data.read(0, 10) == bytes(10)
    assert data.read(10_000, 4) == b"tail"
    assert data.read(9_998, 6) == b"\x00\x00tail"


def test_filedata_read_past_eof():
    data = FileData()
    data.write(0, b"abc")
    assert data.read(2, 100) == b"c"
    assert data.read(3, 10) == b""
    assert data.read(100, 10) == b""


def test_filedata_overwrite_spanning_blocks():
    data = FileData()
    data.write(0, bytes(9000))
    data.write(4090, b"X" * 12)
    assert data.read(4090, 12) == b"X" * 12
    assert data.size == 9000


def test_filedata_truncate():
    data = FileData()
    data.write(0, b"A" * 9000)
    data.truncate(4097)
    assert data.size == 4097
    assert data.read(4096, 10) == b"A"
    data.truncate(10000)
    assert data.read(4097, 10) == bytes(10)  # extended area is zeros
    data.truncate(0)
    assert data.allocated_bytes == 0


def test_filedata_allocated_in():
    data = FileData()
    data.write(8192, b"z")
    assert data.allocated_in(0, 8192) == 0
    assert data.allocated_in(8192, 1) == 4096
    assert data.allocated_in(0, 1) == 0


@given(st.lists(st.tuples(st.integers(0, 50_000), st.binary(min_size=1, max_size=500)),
                min_size=1, max_size=12))
@settings(max_examples=50)
def test_filedata_matches_reference_model(writes):
    data = FileData()
    reference = bytearray()
    for offset, chunk in writes:
        data.write(offset, chunk)
        if len(reference) < offset + len(chunk):
            reference.extend(bytes(offset + len(chunk) - len(reference)))
        reference[offset : offset + len(chunk)] = chunk
    assert data.size == len(reference)
    assert data.read(0, len(reference)) == bytes(reference)


# --- structure -----------------------------------------------------------

def test_create_lookup_read_write(fs):
    d = fs.mkdir(fs.root_ino, "home", ROOT)
    f = fs.create(d.ino, "file", ROOT)
    fs.write(f.ino, 0, b"content", ROOT)
    found = fs.lookup(d.ino, "file", ROOT)
    assert found.ino == f.ino
    data, eof = fs.read(f.ino, 0, 100, ROOT)
    assert data == b"content" and eof


def test_lookup_dot_and_dotdot(fs):
    d = fs.mkdir(fs.root_ino, "d", ROOT)
    assert fs.lookup(d.ino, ".", ROOT).ino == d.ino
    assert fs.lookup(d.ino, "..", ROOT).ino == fs.root_ino
    assert fs.lookup(fs.root_ino, "..", ROOT).ino == fs.root_ino


def test_invalid_names_rejected(fs):
    for name in ("", ".", "..", "a/b", "nul\x00byte", "x" * 256):
        with pytest.raises(FsError) as excinfo:
            fs.create(fs.root_ino, name, ROOT)
        assert excinfo.value.code in (ERR_INVAL, 63)


def test_create_exclusive(fs):
    fs.create(fs.root_ino, "f", ROOT)
    again = fs.create(fs.root_ino, "f", ROOT)  # UNCHECKED returns existing
    assert again.ino == fs.lookup(fs.root_ino, "f", ROOT).ino
    with pytest.raises(FsError) as excinfo:
        fs.create(fs.root_ino, "f", ROOT, exclusive=True)
    assert excinfo.value.code == ERR_EXIST


def test_mkdir_duplicate_rejected(fs):
    fs.mkdir(fs.root_ino, "d", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.mkdir(fs.root_ino, "d", ROOT)
    assert excinfo.value.code == ERR_EXIST


def test_symlink_and_readlink(fs):
    link = fs.symlink(fs.root_ino, "l", "/target/path", ROOT)
    assert link.ftype == NF_LNK
    assert fs.readlink(link.ino, ROOT) == "/target/path"
    f = fs.create(fs.root_ino, "f", ROOT)
    with pytest.raises(FsError):
        fs.readlink(f.ino, ROOT)


def test_hard_links(fs):
    f = fs.create(fs.root_ino, "a", ROOT)
    fs.link(f.ino, fs.root_ino, "b", ROOT)
    assert f.nlink == 2
    fs.write(f.ino, 0, b"shared", ROOT)
    b = fs.lookup(fs.root_ino, "b", ROOT)
    assert fs.read(b.ino, 0, 10, ROOT)[0] == b"shared"
    fs.remove(fs.root_ino, "a", ROOT)
    assert fs.lookup(fs.root_ino, "b", ROOT).nlink == 1
    fs.remove(fs.root_ino, "b", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.get_inode(f.ino)
    assert excinfo.value.code == ERR_STALE


def test_cannot_hard_link_directory(fs):
    d = fs.mkdir(fs.root_ino, "d", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.link(d.ino, fs.root_ino, "d2", ROOT)
    assert excinfo.value.code == ERR_ISDIR


def test_remove_and_rmdir_type_checks(fs):
    d = fs.mkdir(fs.root_ino, "d", ROOT)
    f = fs.create(fs.root_ino, "f", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.remove(fs.root_ino, "d", ROOT)
    assert excinfo.value.code == ERR_ISDIR
    with pytest.raises(FsError) as excinfo:
        fs.rmdir(fs.root_ino, "f", ROOT)
    assert excinfo.value.code == ERR_NOTDIR


def test_rmdir_requires_empty(fs):
    d = fs.mkdir(fs.root_ino, "d", ROOT)
    fs.create(d.ino, "child", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.rmdir(fs.root_ino, "d", ROOT)
    assert excinfo.value.code == ERR_NOTEMPTY
    fs.remove(d.ino, "child", ROOT)
    fs.rmdir(fs.root_ino, "d", ROOT)
    with pytest.raises(FsError):
        fs.lookup(fs.root_ino, "d", ROOT)


def test_rename_basic_and_replace(fs):
    a = fs.mkdir(fs.root_ino, "a", ROOT)
    b = fs.mkdir(fs.root_ino, "b", ROOT)
    f = fs.create(a.ino, "f", ROOT)
    fs.write(f.ino, 0, b"1", ROOT)
    fs.rename(a.ino, "f", b.ino, "g", ROOT)
    assert fs.lookup(b.ino, "g", ROOT).ino == f.ino
    with pytest.raises(FsError):
        fs.lookup(a.ino, "f", ROOT)
    # replacing an existing file
    g2 = fs.create(b.ino, "h", ROOT)
    fs.rename(b.ino, "g", b.ino, "h", ROOT)
    assert fs.lookup(b.ino, "h", ROOT).ino == f.ino
    with pytest.raises(FsError) as excinfo:
        fs.get_inode(g2.ino)
    assert excinfo.value.code == ERR_STALE


def test_rename_directory_updates_parent(fs):
    a = fs.mkdir(fs.root_ino, "a", ROOT)
    b = fs.mkdir(fs.root_ino, "b", ROOT)
    sub = fs.mkdir(a.ino, "sub", ROOT)
    fs.rename(a.ino, "sub", b.ino, "sub", ROOT)
    assert fs.lookup(sub.ino, "..", ROOT).ino == b.ino
    assert a.nlink == 2 and b.nlink == 3


def test_rename_into_own_subtree_rejected(fs):
    a = fs.mkdir(fs.root_ino, "a", ROOT)
    sub = fs.mkdir(a.ino, "sub", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.rename(fs.root_ino, "a", sub.ino, "oops", ROOT)
    assert excinfo.value.code == ERR_INVAL


def test_rename_noop_same_entry(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    fs.rename(fs.root_ino, "f", fs.root_ino, "f", ROOT)
    assert fs.lookup(fs.root_ino, "f", ROOT).ino == f.ino


# --- permissions ----------------------------------------------------------

def test_permission_read_denied(fs):
    f = fs.create(fs.root_ino, "secret", ROOT, mode=0o600)
    fs.write(f.ino, 0, b"top", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.read(f.ino, 0, 3, ALICE)
    assert excinfo.value.code == ERR_ACCES


def test_permission_group(fs):
    d = fs.mkdir(fs.root_ino, "shared", ROOT, mode=0o770)
    fs.setattr(d.ino, ROOT, gid=200)
    fs.create(d.ino, "ok", BOB)  # bob is in group 200
    with pytest.raises(FsError):
        fs.create(d.ino, "nope", ALICE)


def test_permission_write_into_readonly_dir(fs):
    d = fs.mkdir(fs.root_ino, "ro", ROOT, mode=0o555)
    with pytest.raises(FsError) as excinfo:
        fs.create(d.ino, "f", ALICE)
    assert excinfo.value.code == ERR_ACCES


def test_chmod_chown_permission_rules(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    fs.setattr(f.ino, ROOT, uid=ALICE.uid)
    fs.setattr(f.ino, ALICE, mode=0o640)  # owner may chmod
    with pytest.raises(FsError) as excinfo:
        fs.setattr(f.ino, BOB, mode=0o777)  # non-owner may not
    assert excinfo.value.code == ERR_PERM
    with pytest.raises(FsError) as excinfo:
        fs.setattr(f.ino, ALICE, uid=BOB.uid)  # chown needs root
    assert excinfo.value.code == ERR_PERM
    fs.setattr(f.ino, ROOT, uid=BOB.uid)
    assert fs.get_inode(f.ino).uid == BOB.uid


def test_chgrp_owner_in_group(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    fs.setattr(f.ino, ROOT, uid=BOB.uid)
    fs.setattr(f.ino, BOB, gid=200)  # bob belongs to 200
    with pytest.raises(FsError):
        fs.setattr(f.ino, BOB, gid=999)  # not a member


def test_truncate_via_setattr(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    fs.write(f.ino, 0, b"0123456789", ROOT)
    fs.setattr(f.ino, ROOT, size=4)
    assert fs.read(f.ino, 0, 10, ROOT)[0] == b"0123"


def test_access_mask(fs):
    f = fs.create(fs.root_ino, "f", ROOT, mode=0o640)
    assert fs.access(f.ino, ROOT, ACCESS_READ | ACCESS_MODIFY) == (
        ACCESS_READ | ACCESS_MODIFY
    )
    fs.setattr(f.ino, ROOT, gid=ALICE.gid)
    assert fs.access(f.ino, ALICE, ACCESS_READ | ACCESS_MODIFY) == ACCESS_READ
    assert fs.access(f.ino, Cred(5, 5), ACCESS_READ) == 0


def test_anonymous_follows_other_bits(fs):
    f = fs.create(fs.root_ino, "f", ROOT, mode=0o644)
    fs.write(f.ino, 0, b"public", ROOT)
    assert fs.read(f.ino, 0, 6, ANONYMOUS)[0] == b"public"
    with pytest.raises(FsError):
        fs.write(f.ino, 0, b"x", ANONYMOUS)


def test_read_only_fs(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    fs.read_only = True
    with pytest.raises(FsError) as excinfo:
        fs.write(f.ino, 0, b"x", ROOT)
    assert excinfo.value.code == ERR_ROFS
    with pytest.raises(FsError):
        fs.create(fs.root_ino, "g", ROOT)


# --- readdir ------------------------------------------------------------------

def test_readdir_includes_dot_entries(fs):
    fs.create(fs.root_ino, "a", ROOT)
    fs.create(fs.root_ino, "b", ROOT)
    entries, eof = fs.readdir(fs.root_ino, ROOT)
    names = [name for name, _ino, _cookie in entries]
    assert names[:2] == [".", ".."]
    assert set(names[2:]) == {"a", "b"}
    assert eof


def test_readdir_cookie_pagination(fs):
    for index in range(10):
        fs.create(fs.root_ino, f"f{index}", ROOT)
    collected = []
    cookie = 0
    while True:
        entries, eof = fs.readdir(fs.root_ino, ROOT, cookie=cookie, count=100)
        assert entries, "must make progress"
        collected.extend(name for name, _i, _c in entries)
        cookie = entries[-1][2]
        if eof:
            break
    assert set(collected) == {".", ".."} | {f"f{i}" for i in range(10)}
    assert len(collected) == 12  # no duplicates


def test_readdir_on_file_rejected(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    with pytest.raises(FsError) as excinfo:
        fs.readdir(f.ino, ROOT)
    assert excinfo.value.code == ERR_NOTDIR


# --- misc -----------------------------------------------------------------------

def test_statfs_accounts_usage(fs):
    before = fs.statfs()
    f = fs.create(fs.root_ino, "big", ROOT)
    fs.write(f.ino, 0, b"x" * 100_000, ROOT)
    after = fs.statfs()
    assert after["fbytes"] < before["fbytes"]
    assert after["ffiles"] == before["ffiles"] - 1


def test_write_quota(fs):
    fs.total_bytes = 1000
    f = fs.create(fs.root_ino, "f", ROOT)
    with pytest.raises(FsError):
        fs.write(f.ino, 0, b"x" * 2000, ROOT)


def test_times_advance(fs):
    f = fs.create(fs.root_ino, "f", ROOT)
    before = f.mtime
    fs.write(f.ino, 0, b"x", ROOT)
    assert f.mtime > before


def test_dir_size_and_nlink(fs):
    d = fs.mkdir(fs.root_ino, "d", ROOT)
    assert d.nlink == 2
    assert fs.get_inode(fs.root_ino).nlink == 3
    assert d.size > 0
