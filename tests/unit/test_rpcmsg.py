"""Tests for Sun RPC message framing (repro.rpc.rpcmsg)."""

import pytest

from repro.rpc import rpcmsg
from repro.rpc.rpcmsg import (
    AuthSys,
    CallHeader,
    NULL_AUTH,
    OpaqueAuth,
    ReplyHeader,
    RpcMsgError,
    pack_call,
    pack_reply,
    parse_message,
)


def test_call_roundtrip():
    header = CallHeader(xid=7, prog=100003, vers=3, proc=1)
    parsed = parse_message(pack_call(header, b"ARGS"))
    assert parsed.mtype == rpcmsg.CALL
    assert parsed.call == header
    assert parsed.body == b"ARGS"


def test_call_with_authsys():
    cred = AuthSys(stamp=5, machinename="host", uid=10, gid=20,
                   gids=(30, 40)).to_auth()
    header = CallHeader(xid=1, prog=2, vers=3, proc=4, cred=cred)
    parsed = parse_message(pack_call(header, b""))
    decoded = AuthSys.from_auth(parsed.call.cred)
    assert decoded == AuthSys(5, "host", 10, 20, (30, 40))


def test_authsys_rejects_wrong_flavor():
    with pytest.raises(RpcMsgError):
        AuthSys.from_auth(NULL_AUTH)


def test_authsys_group_limit():
    auth = AuthSys(gids=tuple(range(20))).to_auth()
    decoded = AuthSys.from_auth(auth)
    assert len(decoded.gids) == 16


def test_success_reply_roundtrip():
    reply = ReplyHeader(xid=9)
    parsed = parse_message(pack_reply(reply, b"RESULT"))
    assert parsed.mtype == rpcmsg.REPLY
    assert parsed.reply.successful
    assert parsed.body == b"RESULT"


@pytest.mark.parametrize("accept_stat", [
    rpcmsg.PROG_UNAVAIL, rpcmsg.PROC_UNAVAIL,
    rpcmsg.GARBAGE_ARGS, rpcmsg.SYSTEM_ERR,
])
def test_error_replies(accept_stat):
    reply = ReplyHeader(xid=3, accept_stat=accept_stat)
    parsed = parse_message(pack_reply(reply))
    assert not parsed.reply.successful
    assert parsed.reply.accept_stat == accept_stat
    assert parsed.body == b""


def test_prog_mismatch_carries_versions():
    reply = ReplyHeader(xid=3, accept_stat=rpcmsg.PROG_MISMATCH,
                        mismatch_low=2, mismatch_high=4)
    parsed = parse_message(pack_reply(reply))
    assert parsed.reply.mismatch_low == 2
    assert parsed.reply.mismatch_high == 4


def test_denied_reply():
    reply = ReplyHeader(xid=5, reply_stat=rpcmsg.MSG_DENIED,
                        reject_stat=rpcmsg.AUTH_ERROR, auth_stat=1)
    parsed = parse_message(pack_reply(reply))
    assert parsed.reply.reply_stat == rpcmsg.MSG_DENIED
    assert parsed.reply.auth_stat == 1


def test_wrong_rpc_version_rejected():
    header = CallHeader(xid=1, prog=2, vers=3, proc=4)
    raw = bytearray(pack_call(header, b""))
    raw[11] = 9  # rpcvers field
    with pytest.raises(RpcMsgError):
        parse_message(bytes(raw))


def test_garbage_rejected():
    with pytest.raises(Exception):
        parse_message(b"\x00\x01")
    bad_mtype = (1).to_bytes(4, "big") + (5).to_bytes(4, "big")
    with pytest.raises(RpcMsgError):
        parse_message(bad_mtype)
