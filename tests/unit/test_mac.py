"""Tests for HMAC-SHA1 and the SFS session MAC (repro.crypto.mac)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import backend
from repro.crypto.mac import MAC_LEN, SessionMAC, hmac_sha1

# RFC 2202 HMAC-SHA1 test vectors.
RFC2202 = [
    (b"\x0b" * 20, b"Hi There",
     "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50,
     "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
    (b"\xaa" * 80, b"Test Using Larger Than Block-Size Key - Hash Key First",
     "aa4ae5e15272d00e95705637ce8a3b55ed402112"),
]


@pytest.mark.parametrize("key,message,expected", RFC2202)
def test_rfc2202_vectors(key, message, expected):
    assert hmac_sha1(key, message).hex() == expected


@pytest.mark.parametrize("key,message,expected", RFC2202)
def test_rfc2202_vectors_pure_backend(key, message, expected):
    backend.set_fast(False)
    try:
        assert hmac_sha1(key, message).hex() == expected
    finally:
        backend.set_fast(True)


@given(st.binary(min_size=1, max_size=100), st.binary(max_size=200))
def test_backends_agree(key, message):
    fast = hmac_sha1(key, message)
    backend.set_fast(False)
    try:
        pure = hmac_sha1(key, message)
    finally:
        backend.set_fast(True)
    assert fast == pure


def test_session_mac_lockstep():
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    for index in range(10):
        message = f"record {index}".encode()
        tag = sender.compute(message)
        assert len(tag) == MAC_LEN
        assert receiver.verify(message, tag)


def test_session_mac_rekeys_per_message():
    mac = SessionMAC(b"k" * 20)
    tag1 = mac.compute(b"same")
    tag2 = mac.compute(b"same")
    assert tag1 != tag2  # a fresh 32-byte key per message


def test_session_mac_detects_tampering():
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    tag = sender.compute(b"payload")
    assert not receiver.verify(b"payloaX", tag)


def test_session_mac_detects_replay():
    # Replaying an old (message, tag) fails: the receiver's stream has
    # advanced, so the re-keyed MAC no longer matches.
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    message, tag = b"first", sender.compute(b"first")
    assert receiver.verify(message, tag)
    assert not receiver.verify(message, tag)


def test_session_mac_detects_reordering():
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    tag1 = sender.compute(b"one")
    tag2 = sender.compute(b"two")
    assert not receiver.verify(b"two", tag2)  # out of order


def test_session_mac_length_framing():
    # The MAC covers the length: message a||b with split (1,2) differs
    # from (2,1) even when concatenations match.
    m1 = SessionMAC(b"k" * 20).compute(b"abc")
    m2 = SessionMAC(b"k" * 20).compute(b"ab")
    assert m1 != m2


def test_different_keys_differ():
    t1 = SessionMAC(b"a" * 20).compute(b"m")
    t2 = SessionMAC(b"b" * 20).compute(b"m")
    assert t1 != t2


def test_session_mac_failed_verify_consumes_slot():
    # Regression for the docstring's promise: a failed verify burns the
    # message slot too, keeping both endpoints in lock-step afterwards.
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    tag1 = sender.compute(b"one")
    assert not receiver.verify(b"tampered", tag1)
    tag2 = sender.compute(b"two")
    assert receiver.verify(b"two", tag2)


def test_session_mac_skip_keeps_lockstep():
    # skip() stands in for a record rejected before verification: the
    # receiver burns the slot and the next record still checks out.
    sender = SessionMAC(b"k" * 20)
    receiver = SessionMAC(b"k" * 20)
    sender.compute(b"record the receiver rejected early")
    receiver.skip()
    tag = sender.compute(b"next")
    assert receiver.verify(b"next", tag)


def test_session_mac_counts_slots():
    mac = SessionMAC(b"k" * 20)
    mac.compute(b"a")
    mac.verify(b"b", b"\x00" * MAC_LEN)  # fails, still a slot
    mac.skip()
    assert mac.slots_consumed == 3
