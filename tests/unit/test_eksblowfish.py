"""Tests for eksblowfish / bcrypt (repro.crypto.eksblowfish)."""

import pytest

from repro.crypto.eksblowfish import (
    bcrypt_b64decode,
    bcrypt_b64encode,
    bcrypt_hash,
    bcrypt_raw,
    eksblowfish_setup,
    harden_password,
)

# Published OpenBSD bcrypt test vectors.
BCRYPT_VECTORS = [
    (b"U*U", "$2a$05$CCCCCCCCCCCCCCCCCCCCC.E5YPO9kmyuRGyh0XouQYb4YMJKvyOeW"),
    (b"U*U*", "$2a$05$CCCCCCCCCCCCCCCCCCCCC.VGOzA784oUp/Z0DY336zx7pLYAy0lwK"),
    (b"U*U*U", "$2a$05$XXXXXXXXXXXXXXXXXXXXXOAcXxm9kjPGEMsLznoKqmqw7tc8WCx4a"),
]


@pytest.mark.parametrize("password,expected", BCRYPT_VECTORS)
def test_bcrypt_vectors(password, expected):
    salt_string = expected[:29]
    assert bcrypt_hash(password, salt_string) == expected


def test_bcrypt_b64_roundtrip():
    data = bytes(range(16))
    assert bcrypt_b64decode(bcrypt_b64encode(data), 16) == data


def test_bcrypt_b64_rejects_bad_chars():
    with pytest.raises(ValueError):
        bcrypt_b64decode("!!!", 2)


def test_bcrypt_requires_2a():
    with pytest.raises(ValueError):
        bcrypt_hash(b"pw", "$2b$05$CCCCCCCCCCCCCCCCCCCCC.")


def test_cost_changes_output():
    salt = b"0123456789abcdef"
    assert bcrypt_raw(b"pw\x00", salt, 2) != bcrypt_raw(b"pw\x00", salt, 3)


def test_salt_changes_output():
    assert (
        bcrypt_raw(b"pw\x00", b"a" * 16, 2)
        != bcrypt_raw(b"pw\x00", b"b" * 16, 2)
    )


def test_setup_parameter_validation():
    with pytest.raises(ValueError):
        eksblowfish_setup(-1, b"s" * 16, b"k")
    with pytest.raises(ValueError):
        eksblowfish_setup(32, b"s" * 16, b"k")
    with pytest.raises(ValueError):
        eksblowfish_setup(2, b"short", b"k")
    with pytest.raises(ValueError):
        eksblowfish_setup(2, b"s" * 16, b"")
    with pytest.raises(ValueError):
        eksblowfish_setup(2, b"s" * 16, b"x" * 73)


def test_harden_password_properties():
    key = harden_password(b"hunter2", b"salty", cost=2)
    assert len(key) == 20
    assert key == harden_password(b"hunter2", b"salty", cost=2)
    assert key != harden_password(b"hunter2", b"other", cost=2)
    assert key != harden_password(b"hunter3", b"salty", cost=2)
    assert key != harden_password(b"hunter2", b"salty", cost=3)


def test_harden_password_accepts_any_salt_length():
    assert harden_password(b"pw", b"", cost=2)
    assert harden_password(b"pw", b"x" * 100, cost=2)
