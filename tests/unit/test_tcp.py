"""Tests for the real TCP transport (repro.rpc.tcp)."""

import threading

import pytest

from repro.rpc.peer import Program, RpcPeer
from repro.rpc.tcp import (
    TcpListener,
    TcpPipe,
    attach_peer,
    connect,
    recv_record,
    send_record,
)
from repro.rpc.xdr import Struct, UInt32

ADD_ARGS = Struct("AddArgs", [("x", UInt32), ("y", UInt32)])


def add_program():
    program = Program("demo", 400000, 2)

    @program.proc(1, "ADD", ADD_ARGS, UInt32)
    def add(args, ctx):
        return args.x + args.y

    return program


def test_record_marking_over_socketpair():
    import socket

    a, b = socket.socketpair()
    send_record(a, b"hello record")
    assert recv_record(b) == b"hello record"
    send_record(a, b"")
    assert recv_record(b) == b""
    big = bytes(range(256)) * 100
    send_record(b, big)
    assert recv_record(a) == big
    a.close()
    b.close()


def test_rpc_over_real_tcp():
    ready = threading.Event()

    def session(pipe: TcpPipe) -> None:
        peer = RpcPeer(pipe, "tcp-server")
        peer.register(add_program())
        ready.set()

    listener = TcpListener("127.0.0.1", 0, session)
    try:
        pipe = connect("127.0.0.1", listener.port)
        client = RpcPeer(pipe, "tcp-client")
        attach_peer(pipe, client)
        result = client.call(400000, 2, 1, ADD_ARGS,
                             {"x": 20, "y": 22}, UInt32)
        assert result == 42
        # multiple sequential calls on one connection
        assert client.call(400000, 2, 1, ADD_ARGS,
                           {"x": 1, "y": 2}, UInt32) == 3
        pipe.close()
    finally:
        listener.close()


def test_fragment_length_guard(monkeypatch):
    import repro.rpc.tcp as tcp_module
    import socket

    a, b = socket.socketpair()
    monkeypatch.setattr(tcp_module, "_MAX_FRAGMENT", 8)
    with pytest.raises(ValueError):
        tcp_module.send_record(a, b"123456789")
    a.close()
    b.close()
