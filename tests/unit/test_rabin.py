"""Tests for the Rabin-Williams cryptosystem (repro.crypto.rabin)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import rabin
from repro.crypto.numtheory import jacobi


@pytest.fixture(scope="module")
def key():
    return rabin.generate_key(768, random.Random(42))


@pytest.fixture(scope="module")
def other_key():
    return rabin.generate_key(768, random.Random(43))


def test_key_structure(key):
    assert key.p % 8 == 3
    assert key.q % 8 == 7
    assert key.n == key.p * key.q
    assert key.public_key.n == key.n
    assert key.public_key.bits in (767, 768)


def test_private_key_validates_congruences():
    with pytest.raises(rabin.RabinError):
        rabin.PrivateKey(7, 7)  # 7 % 8 == 7, but p must be 3 mod 8


def test_encrypt_decrypt_roundtrip(key):
    rng = random.Random(1)
    for size in (0, 1, 20, 54):
        message = bytes(rng.getrandbits(8) for _ in range(size))
        ciphertext = key.public_key.encrypt(message, rng)
        assert key.decrypt(ciphertext) == message


def test_encryption_is_randomized(key):
    rng = random.Random(2)
    c1 = key.public_key.encrypt(b"same message", rng)
    c2 = key.public_key.encrypt(b"same message", rng)
    assert c1 != c2
    assert key.decrypt(c1) == key.decrypt(c2) == b"same message"


def test_message_too_long_rejected(key):
    rng = random.Random(3)
    limit = key.public_key.size - 42
    key.public_key.encrypt(b"x" * limit, rng)  # exactly at the limit
    with pytest.raises(rabin.RabinError):
        key.public_key.encrypt(b"x" * (limit + 1), rng)


def test_tampered_ciphertext_rejected(key):
    rng = random.Random(4)
    ciphertext = bytearray(key.public_key.encrypt(b"secret", rng))
    ciphertext[10] ^= 1
    with pytest.raises(rabin.RabinError):
        key.decrypt(bytes(ciphertext))


def test_wrong_key_cannot_decrypt(key, other_key):
    rng = random.Random(5)
    ciphertext = key.public_key.encrypt(b"secret", rng)
    padded = other_key.public_key.encrypt(b"x", rng)  # right length source
    with pytest.raises(rabin.RabinError):
        other_key.decrypt(ciphertext[: other_key.public_key.size]
                          if len(ciphertext) != other_key.public_key.size
                          else ciphertext)


def test_sign_verify(key):
    signature = key.sign(b"a message")
    assert key.public_key.verify(b"a message", signature)
    assert not key.public_key.verify(b"another message", signature)


def test_signature_tamper_rejected(key):
    signature = bytearray(key.sign(b"m"))
    signature[5] ^= 1
    assert not key.public_key.verify(b"m", bytes(signature))


def test_signature_wrong_key_rejected(key, other_key):
    signature = key.sign(b"m")
    assert not other_key.public_key.verify(b"m", signature)


def test_signature_malformed_rejected(key):
    assert not key.public_key.verify(b"m", b"")
    assert not key.public_key.verify(b"m", b"\x07" + b"\x00" * key.public_key.size)
    too_big = bytes([0]) + b"\xff" * key.public_key.size
    assert not key.public_key.verify(b"m", too_big)


def test_signing_is_deterministic(key):
    assert key.sign(b"stable") == key.sign(b"stable")


def test_tweak_covers_all_jacobi_cases(key):
    # Find messages hitting each (jp, jq) combination and check each
    # signature verifies (the e/f tweak logic must handle all four).
    seen = set()
    counter = 0
    while len(seen) < 4 and counter < 200:
        message = f"msg{counter}".encode()
        m = rabin._fdh_encode(message, key.n)
        case = (jacobi(m % key.p, key.p), jacobi(m % key.q, key.q))
        if case not in seen:
            seen.add(case)
            assert key.public_key.verify(message, key.sign(message))
        counter += 1
    assert len(seen) == 4, f"only exercised {seen}"


def test_serialization_roundtrip(key):
    assert rabin.PublicKey.from_bytes(key.public_key.to_bytes()) == key.public_key
    assert rabin.PrivateKey.from_bytes(key.to_bytes()) == key


def test_public_key_deserialization_errors():
    with pytest.raises(rabin.RabinError):
        rabin.PublicKey.from_bytes(b"")
    with pytest.raises(rabin.RabinError):
        rabin.PublicKey.from_bytes((99).to_bytes(4, "big") + b"xx")
    even = (1).to_bytes(4, "big") + bytes([4])
    with pytest.raises(rabin.RabinError):
        rabin.PublicKey.from_bytes(even)


def test_mgf1_expands_deterministically():
    out1 = rabin.mgf1(b"seed", 100)
    out2 = rabin.mgf1(b"seed", 100)
    assert out1 == out2
    assert len(out1) == 100
    assert rabin.mgf1(b"seed", 50) == out1[:50]
    assert rabin.mgf1(b"other", 100) != out1


def test_fdh_below_modulus_and_odd(key):
    for counter in range(20):
        value = rabin._fdh_encode(f"m{counter}".encode(), key.n)
        assert 0 < value < key.n
        assert value % 2 == 1


@given(st.binary(max_size=40))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property(message):
    key = _cached_key()
    rng = random.Random(7)
    assert key.decrypt(key.public_key.encrypt(message, rng)) == message
    assert key.public_key.verify(message, key.sign(message))


_KEY_CACHE = []


def _cached_key():
    if not _KEY_CACHE:
        _KEY_CACHE.append(rabin.generate_key(768, random.Random(99)))
    return _KEY_CACHE[0]
