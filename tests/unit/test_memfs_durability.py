"""Crash-consistency tests for MemFs: undo log, journal, torn writes.

The durability contract this file pins down:

* metadata operations and FILE_SYNC/COMMIT-ed data survive a crash;
* un-committed (UNSTABLE) writes are rolled back, and the loss is
  counted;
* journal recovery after any crash reports ``mismatched == 0`` — the
  durable state always agrees with the last thing a flush promised;
* a torn flush (power fails mid-sync) keeps the undo log alive, and its
  journal record is discarded at recovery instead of trusted.
"""

import pytest

from repro.fs.memfs import Cred, MemFs
from repro.sim.clock import Clock
from repro.sim.disk import Disk, DiskParameters

ROOT = Cred(0, 0)


def make_fs(with_disk: bool = False) -> MemFs:
    disk = Disk(Clock(), DiskParameters.ibm_18es()) if with_disk else None
    return MemFs(fsid=1, disk=disk)


def make_file(fs: MemFs, name: str = "f", data: bytes = b"") -> int:
    inode = fs.create(fs.root_ino, name, ROOT)
    if data:
        fs.write(inode.ino, 0, data, ROOT)
        fs.commit(inode.ino)
    return inode.ino


def read_all(fs: MemFs, ino: int) -> bytes:
    data, _eof = fs.read(ino, 0, 1 << 20, ROOT)
    return data


def test_uncommitted_write_rolls_back_on_crash():
    fs = make_fs()
    ino = make_file(fs, data=b"durable base")
    fs.write(ino, 0, b"DOOMED", ROOT)
    assert ino in fs.dirty_inodes
    report = fs.crash()
    assert report["lost_writes"] == 1
    assert report["lost_bytes"] == len(b"DOOMED")
    assert read_all(fs, ino) == b"durable base"
    assert fs.dirty_inodes == frozenset()
    assert fs.recover()["mismatched"] == 0


def test_committed_write_survives_crash():
    fs = make_fs(with_disk=True)
    ino = make_file(fs)
    fs.write(ino, 0, b"committed contents", ROOT)
    fs.commit(ino)
    report = fs.crash()
    assert report["lost_writes"] == 0
    assert read_all(fs, ino) == b"committed contents"
    recovery = fs.recover()
    assert recovery["mismatched"] == 0
    assert recovery["verified"] >= 1


def test_file_sync_write_survives_crash():
    fs = make_fs()
    ino = make_file(fs)
    fs.write(ino, 0, b"stable", ROOT, sync=True)
    assert ino not in fs.dirty_inodes
    fs.crash()
    assert read_all(fs, ino) == b"stable"
    assert fs.recover()["mismatched"] == 0


def test_overlapping_writes_unwind_in_reverse_order():
    fs = make_fs()
    ino = make_file(fs, data=b"AAAAAAAAAA")
    fs.write(ino, 0, b"BBBB", ROOT)
    fs.write(ino, 2, b"CCCC", ROOT)
    fs.write(ino, 8, b"DDDDDD", ROOT)  # extends the file
    fs.crash()
    assert read_all(fs, ino) == b"AAAAAAAAAA"
    assert fs.recover()["mismatched"] == 0


def test_appending_write_rolls_back_to_old_size():
    fs = make_fs()
    ino = make_file(fs, data=b"12345")
    fs.write(ino, 5, b"67890", ROOT)
    fs.crash()
    assert read_all(fs, ino) == b"12345"


def test_truncate_is_durable():
    fs = make_fs(with_disk=True)
    ino = make_file(fs, data=b"long original contents")
    fs.write(ino, 0, b"uncommitted scribble", ROOT)
    fs.setattr(ino, ROOT, size=4)
    fs.crash()
    # The truncate flushed: the post-truncate prefix survives and the
    # un-committed write before it does not resurrect anything.
    assert read_all(fs, ino) == b"unco"[:4]
    assert fs.recover()["mismatched"] == 0


def test_commit_clears_disk_dirty_set():
    fs = make_fs(with_disk=True)
    ino = make_file(fs)
    fs.write(ino, 0, b"x" * 9000, ROOT)
    assert fs.disk.dirty_writes(ino) > 0
    fs.commit(ino)
    assert fs.disk.dirty_writes(ino) == 0
    assert fs.disk.dirty_writes() == 0


def test_disk_crash_counts_lost_cached_writes():
    fs = make_fs(with_disk=True)
    ino = make_file(fs)
    fs.write(ino, 0, b"y" * 5000, ROOT)
    report = fs.crash()
    assert report["disk_lost_writes"] > 0
    assert fs.disk.lost_writes > 0
    assert fs.disk.dirty_writes() == 0


def test_torn_flush_keeps_undo_and_recovery_drops_record():
    fs = make_fs(with_disk=True)
    ino = make_file(fs, data=b"before the storm")
    fs.write(ino, 0, b"half-flushed data!!", ROOT)
    fs.disk.arm_torn_write()
    fs.commit(ino)  # the flush tears: journal record untrustworthy
    assert fs.torn_flushes == 1
    assert fs.disk.torn_syncs == 1
    assert ino in fs.dirty_inodes  # undo survives a torn flush
    fs.crash()
    assert read_all(fs, ino) == b"before the storm"
    recovery = fs.recover()
    assert recovery["dropped_torn"] == 1
    assert recovery["mismatched"] == 0


def test_removed_file_forgets_its_undo_log():
    fs = make_fs()
    ino = make_file(fs, data=b"short-lived")
    fs.write(ino, 0, b"scratch", ROOT)
    fs.remove(fs.root_ino, "f", ROOT)
    assert ino not in fs.dirty_inodes
    report = fs.crash()
    assert report["lost_writes"] == 0
    assert fs.recover()["mismatched"] == 0


def test_recovery_ignores_records_for_replaced_generations():
    fs = make_fs()
    ino = make_file(fs, data=b"first life")
    fs.remove(fs.root_ino, "f", ROOT)
    ino2 = make_file(fs, data=b"second life")
    fs.crash()
    recovery = fs.recover()
    assert recovery["mismatched"] == 0
    assert read_all(fs, ino2) == b"second life"


def test_crash_counters_accumulate():
    fs = make_fs()
    ino = make_file(fs, data=b"base")
    fs.write(ino, 0, b"one", ROOT)
    fs.crash()
    fs.write(ino, 0, b"twoo", ROOT)
    fs.crash()
    assert fs.lost_writes == 2
    assert fs.lost_bytes == len(b"one") + len(b"twoo")
