"""Tests for the XDR codec layer (repro.rpc.xdr)."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc.xdr import (
    Array,
    Bool,
    Enum,
    FixedArray,
    FixedOpaque,
    Hyper,
    Int32,
    Opaque,
    Optional,
    Packer,
    Record,
    String,
    Struct,
    UHyper,
    UInt32,
    Union,
    Unpacker,
    VOID,
    XdrError,
)


def roundtrip(codec, value):
    return codec.unpack(codec.pack(value))


# --- primitives --------------------------------------------------------------

@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_uint32_roundtrip(value):
    assert roundtrip(UInt32, value) == value


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_int32_roundtrip(value):
    assert roundtrip(Int32, value) == value


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uhyper_roundtrip(value):
    assert roundtrip(UHyper, value) == value


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_hyper_roundtrip(value):
    assert roundtrip(Hyper, value) == value


def test_out_of_range_rejected():
    with pytest.raises(XdrError):
        UInt32.pack(-1)
    with pytest.raises(XdrError):
        UInt32.pack(2**32)
    with pytest.raises(XdrError):
        Int32.pack(2**31)


def test_bool_strictness():
    assert roundtrip(Bool, True) is True
    assert roundtrip(Bool, False) is False
    with pytest.raises(XdrError):
        Bool.unpack((2).to_bytes(4, "big"))


def test_void():
    assert VOID.pack(None) == b""
    assert VOID.unpack(b"") is None
    with pytest.raises(XdrError):
        VOID.pack("something")


# --- opaque / string ---------------------------------------------------------

@given(st.binary(max_size=100))
def test_opaque_roundtrip(data):
    assert roundtrip(Opaque(), data) == data


def test_opaque_padding_to_four():
    packed = Opaque().pack(b"abcde")
    assert len(packed) == 4 + 8  # length word + 5 bytes padded to 8
    assert packed.endswith(b"\x00\x00\x00")


def test_opaque_nonzero_padding_rejected():
    packed = bytearray(Opaque().pack(b"a"))
    packed[-1] = 1
    with pytest.raises(XdrError):
        Opaque().unpack(bytes(packed))


def test_opaque_maximum_enforced():
    with pytest.raises(XdrError):
        Opaque(4).pack(b"12345")
    with pytest.raises(XdrError):
        Opaque(4).unpack(Opaque().pack(b"12345"))


def test_fixed_opaque():
    codec = FixedOpaque(5)
    assert roundtrip(codec, b"12345") == b"12345"
    with pytest.raises(XdrError):
        codec.pack(b"1234")


@given(st.text(max_size=50))
def test_string_roundtrip(text):
    assert roundtrip(String(), text) == text


def test_string_invalid_utf8_rejected():
    packed = Opaque().pack(b"\xff\xfe")
    with pytest.raises(XdrError):
        String().unpack(packed)


def test_truncated_data_rejected():
    with pytest.raises(XdrError):
        UInt32.unpack(b"\x00\x00")
    with pytest.raises(XdrError):
        Opaque().unpack((10).to_bytes(4, "big") + b"short")


def test_trailing_bytes_rejected():
    with pytest.raises(XdrError):
        UInt32.unpack(b"\x00" * 8)


# --- compound ---------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=20))
def test_array_roundtrip(values):
    assert roundtrip(Array(UInt32), values) == values


def test_array_maximum():
    with pytest.raises(XdrError):
        Array(UInt32, 2).pack([1, 2, 3])


def test_fixed_array():
    codec = FixedArray(UInt32, 3)
    assert roundtrip(codec, [1, 2, 3]) == [1, 2, 3]
    with pytest.raises(XdrError):
        codec.pack([1, 2])


@given(st.one_of(st.none(), st.integers(min_value=0, max_value=100)))
def test_optional_roundtrip(value):
    assert roundtrip(Optional(UInt32), value) == value


def test_enum():
    codec = Enum(1, 2, 5)
    assert roundtrip(codec, 5) == 5
    with pytest.raises(XdrError):
        codec.pack(3)
    with pytest.raises(XdrError):
        codec.unpack(Int32.pack(4))


POINT = Struct("point", [("x", UInt32), ("y", UInt32), ("label", String())])


def test_struct_roundtrip():
    record = roundtrip(POINT, {"x": 1, "y": 2, "label": "origin-ish"})
    assert (record.x, record.y, record.label) == (1, 2, "origin-ish")


def test_struct_accepts_records_and_mappings():
    record = POINT.make(x=1, y=2, label="a")
    assert POINT.pack(record) == POINT.pack({"x": 1, "y": 2, "label": "a"})


def test_struct_missing_field():
    with pytest.raises(XdrError):
        POINT.pack({"x": 1, "y": 2})
    with pytest.raises(XdrError):
        POINT.make(x=1, y=2)
    with pytest.raises(XdrError):
        POINT.make(x=1, y=2, label="a", extra=3)


def test_record_equality_and_repr():
    a = Record(x=1)
    assert a == Record(x=1)
    assert a != Record(x=2)
    assert "x=1" in repr(a)
    assert a._asdict() == {"x": 1}


RESULT = Union("result", {0: UInt32, 1: None}, default=String())


def test_union_arms():
    assert roundtrip(RESULT, (0, 42)) == (0, 42)
    assert roundtrip(RESULT, (1, None)) == (1, None)
    assert roundtrip(RESULT, (7, "error text")) == (7, "error text")


def test_union_void_arm_rejects_body():
    with pytest.raises(XdrError):
        RESULT.pack((1, "not allowed"))


def test_union_without_default_rejects_unknown():
    strict = Union("strict", {0: UInt32})
    with pytest.raises(XdrError):
        strict.pack((1, None))
    with pytest.raises(XdrError):
        strict.unpack(UInt32.pack(9))


NESTED = Struct("nested", [
    ("points", Array(POINT, 10)),
    ("maybe", Optional(POINT)),
    ("tag", Union("tag", {0: None, 1: UInt32})),
])


@given(
    st.lists(
        st.tuples(st.integers(0, 999), st.integers(0, 999), st.text(max_size=8)),
        max_size=5,
    ),
    st.booleans(),
)
def test_nested_composition_roundtrip(points, with_maybe):
    value = NESTED.make(
        points=[POINT.make(x=x, y=y, label=s) for x, y, s in points],
        maybe=POINT.make(x=1, y=2, label="m") if with_maybe else None,
        tag=(1, 7),
    )
    decoded = NESTED.unpack(NESTED.pack(value))
    assert len(decoded.points) == len(points)
    assert decoded.tag == (1, 7)
    assert (decoded.maybe is not None) == with_maybe


def test_packer_unpacker_low_level():
    packer = Packer()
    packer.pack_uint32(7)
    packer.pack_string("hi", 10)
    unpacker = Unpacker(packer.data())
    assert unpacker.unpack_uint32() == 7
    assert unpacker.unpack_string(10) == "hi"
    unpacker.done()
