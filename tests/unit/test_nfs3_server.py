"""Tests for the NFS3 server over MemFs, through real RPC."""

import pytest

from repro.fs.memfs import Cred, MemFs
from repro.fs import pathops
from repro.nfs3 import const
from repro.nfs3.client import Nfs3Client, Nfs3Error
from repro.nfs3.handles import EncryptedHandles
from repro.nfs3.server import Nfs3Server, authsys_cred_mapper
from repro.rpc.peer import RpcPeer
from repro.rpc.rpcmsg import AuthSys, NULL_AUTH
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair

ROOT = AuthSys(uid=0, gid=0)
ALICE = AuthSys(uid=1000, gid=100)


@pytest.fixture
def stack():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    fs = MemFs(fsid=9)
    server = Nfs3Server(fs)
    server_peer = RpcPeer(b, "nfsd")
    server_peer.register(server.program)
    client = Nfs3Client(RpcPeer(a, "kernel"), ROOT)
    return fs, server, client


def test_null(stack):
    _fs, _server, client = stack
    client.null()


def test_getattr_root(stack):
    _fs, server, client = stack
    attrs = client.getattr(server.root_handle())
    assert attrs.type == const.NF3DIR
    assert attrs.fsid == 9
    assert attrs.fileid == 2


def test_create_write_read(stack):
    _fs, server, client = stack
    root = server.root_handle()
    created = client.create(root, "file", mode=0o640)
    fh = created.obj
    assert created.obj_attributes.mode == 0o640
    write_res = client.write(fh, 0, b"hello world", stable=const.FILE_SYNC)
    assert write_res.count == 11
    assert write_res.committed != const.UNSTABLE
    read_res = client.read(fh, 6, 100)
    assert read_res.data == b"world"
    assert read_res.eof


def test_wcc_data_present(stack):
    _fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "f").obj
    res = client.write(fh, 0, b"data")
    assert res.file_wcc.before is not None
    assert res.file_wcc.after is not None
    assert res.file_wcc.after.size == 4


def test_lookup_and_noent(stack):
    _fs, server, client = stack
    root = server.root_handle()
    client.mkdir(root, "dir")
    found = client.lookup(root, "dir")
    assert found.obj_attributes.type == const.NF3DIR
    with pytest.raises(Nfs3Error) as excinfo:
        client.lookup(root, "missing")
    assert excinfo.value.status == const.NFS3ERR_NOENT
    # the failure arm decodes to the LOOKUP3resfail shape (post-op
    # attributes are optional and this server omits them)
    assert hasattr(excinfo.value.body, "dir_attributes")


def test_exclusive_create(stack):
    _fs, server, client = stack
    root = server.root_handle()
    client.create(root, "f", exclusive=True)
    with pytest.raises(Nfs3Error) as excinfo:
        client.create(root, "f", exclusive=True)
    assert excinfo.value.status == const.NFS3ERR_EXIST


def test_setattr_guard(stack):
    fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "f").obj
    attrs = client.getattr(fh)
    from repro.nfs3.types import sattr
    client.setattr(fh, sattr(mode=0o600), guard_ctime=attrs.ctime.seconds)
    stale_guard = attrs.ctime.seconds  # ctime moved; guard now stale
    with pytest.raises(Nfs3Error) as excinfo:
        client.setattr(fh, sattr(mode=0o644), guard_ctime=stale_guard)
    assert excinfo.value.status == const.NFS3ERR_NOT_SYNC


def test_symlink_readlink(stack):
    _fs, server, client = stack
    root = server.root_handle()
    res = client.symlink(root, "link", "/somewhere/else")
    assert client.readlink(res.obj) == "/somewhere/else"


def test_remove_rename_link(stack):
    _fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "a").obj
    client.link(fh, root, "b")
    assert client.getattr(fh).nlink == 2
    client.rename(root, "a", root, "c")
    client.remove(root, "b")
    assert client.getattr(fh).nlink == 1
    assert client.lookup(root, "c").object == fh


def test_rmdir_notempty(stack):
    _fs, server, client = stack
    root = server.root_handle()
    dir_fh = client.mkdir(root, "d").obj
    client.create(dir_fh, "child")
    with pytest.raises(Nfs3Error) as excinfo:
        client.rmdir(root, "d")
    assert excinfo.value.status == const.NFS3ERR_NOTEMPTY


def test_readdir_and_readdirplus(stack):
    _fs, server, client = stack
    root = server.root_handle()
    for index in range(5):
        client.create(root, f"f{index}")
    plain = client.readdir(root)
    names = {entry.name for entry in plain.entries}
    assert names == {".", ".."} | {f"f{i}" for i in range(5)}
    plus = client.readdirplus(root)
    for entry in plus.entries:
        assert entry.name_attributes is not None
        assert entry.name_handle is not None
        assert client.getattr(entry.name_handle).fileid == entry.fileid


def test_access_respects_credentials(stack):
    _fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "private", mode=0o600).obj
    mask = const.ACCESS3_READ | const.ACCESS3_MODIFY
    assert client.access(fh, mask) == mask
    alice_view = client.with_cred(ALICE)
    assert alice_view.access(fh, mask) == 0
    with pytest.raises(Nfs3Error) as excinfo:
        alice_view.read(fh, 0, 10)
    assert excinfo.value.status == const.NFS3ERR_ACCES


def test_anonymous_without_authsys(stack):
    _fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "public", mode=0o644).obj
    client.write(fh, 0, b"visible")
    anon = client.with_cred(NULL_AUTH)
    assert anon.read(fh, 0, 10).data == b"visible"
    with pytest.raises(Nfs3Error):
        anon.write(fh, 0, b"nope")


def test_stale_handle(stack):
    _fs, server, client = stack
    root = server.root_handle()
    fh = client.create(root, "gone").obj
    client.remove(root, "gone")
    with pytest.raises(Nfs3Error) as excinfo:
        client.getattr(fh)
    assert excinfo.value.status == const.NFS3ERR_STALE


def test_bad_handle(stack):
    _fs, _server, client = stack
    with pytest.raises(Nfs3Error) as excinfo:
        client.getattr(b"\x01" * 16)
    assert excinfo.value.status in (const.NFS3ERR_BADHANDLE, const.NFS3ERR_STALE)


def test_fsstat_fsinfo_pathconf_commit(stack):
    _fs, server, client = stack
    root = server.root_handle()
    stat = client.fsstat(root)
    assert stat.tbytes > 0
    info = client.fsinfo(root)
    assert info.rtpref == 8192
    conf = client.pathconf(root)
    assert conf.name_max == 255
    fh = client.create(root, "f").obj
    client.write(fh, 0, b"x" * 100)
    commit = client.commit(fh)
    assert len(commit.verf) == 8


def test_encrypted_handles_end_to_end():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    fs = MemFs(fsid=3)
    server = Nfs3Server(fs, handles=EncryptedHandles(b"h" * 20))
    RpcPeer(b, "nfsd").register(server.program)
    client = Nfs3Client(RpcPeer(a, "kernel"), ROOT)
    root = server.root_handle()
    assert len(root) == 24
    fh = client.create(root, "f").obj
    client.write(fh, 0, b"enc handles")
    assert client.read(fh, 0, 100).data == b"enc handles"
    with pytest.raises(Nfs3Error) as excinfo:
        client.getattr(bytes(24))
    assert excinfo.value.status == const.NFS3ERR_BADHANDLE


def test_mutation_hook_fires():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    fs = MemFs()
    events = []
    server = Nfs3Server(fs, mutation_hook=events.append)
    RpcPeer(b, "nfsd").register(server.program)
    client = Nfs3Client(RpcPeer(a, "kernel"), ROOT)
    root = server.root_handle()
    fh = client.create(root, "f").obj
    assert events[-1] == root  # directory changed
    client.write(fh, 0, b"x")
    assert events[-1] == fh
    client.read(fh, 0, 1)
    assert events[-1] == fh  # reads do not notify
    assert len(events) == 2
