"""Golden wire vectors: the fast lane never changes a protocol byte.

The wire-path optimizations (block ARC4 kernels, flat NFS3 marshals, the
single-buffer channel seal) are sound only if they are bit-identical to
the reference implementations — that is the invariant
:mod:`repro.crypto.backend` documents and docs/PERFORMANCE.md leans on.
This suite pins it three ways:

* **Golden digests** — seeded channel transcripts and the hot NFS3
  encodings must match constants frozen from the reference path, so a
  regression against *history* is caught even if both paths drift
  together.
* **Cross-path equality** — every vector is produced under
  ``set_fast(True)`` and ``set_fast(False)`` and compared bit for bit,
  with the marshal counters checked to prove the fast path actually ran.
* **Kernel equivalence** — the block ARC4 kernels advance the same
  (state, i, j) machine as the reference per-byte loop, including across
  a mid-stream flip of the backend flag.

Regenerate the golden constants (after a *deliberate* wire format
change) with ``PYTHONPATH=src:. python tests/unit/test_wire_vectors.py``.
"""

import hashlib
import random

import pytest

from repro.core.channel import SecureChannel
from repro.crypto import arc4kernel, backend
from repro.crypto.arc4 import ARC4
from repro.nfs3 import const, types
from repro.rpc import xdr
from repro.rpc.xdr import Record, XdrError

K_CS = bytes(range(1, 21))
K_SC = bytes(range(101, 121))

CHANNEL_PAYLOADS = [
    b"",
    b"x",
    b"NFS3 over a secure channel",
    bytes(range(256)),
    b"\x00" * 1000,
    bytes((i * 7 + 3) & 0xFF for i in range(8192)),
]

#: sha256 over len(record) ‖ record for every record of the seeded
#: transcript, both directions.  Frozen from the reference path.
GOLDEN_CHANNEL = (
    "129dd7f1900fa1928be597b90ba6f704db1715496d6662d9c8c31ffc08c7b0b9"
)

_FH = bytes(range(1, 33))
_FH2 = bytes(range(200, 240))
_VERF = bytes(range(8))


def _time(seconds):
    return types.NfsTime.make(seconds=seconds, nseconds=seconds * 1000 + 1)


def _fattr():
    return types.Fattr.make(
        type=const.NF3REG, mode=0o644, nlink=2, uid=10, gid=20,
        size=0x1_2345_6789, used=4096,
        rdev=types.SpecData.make(major=1, minor=2),
        fsid=7, fileid=42,
        atime=_time(1), mtime=_time(2), ctime=_time(3),
    )


def _wcc():
    return Record(
        before=types.WccAttr.make(size=100, mtime=_time(2), ctime=_time(3)),
        after=_fattr(),
    )


def nfs3_vectors():
    """(name, codec, value) for each hot codec, OK and failure arms."""
    payload = bytes((i * 13 + 5) & 0xFF for i in range(1025))
    return [
        ("getattr_args", types.GetAttrArgs, Record(object=_FH)),
        ("getattr_res_ok", types.GetAttrRes,
         (const.NFS3_OK, Record(obj_attributes=_fattr()))),
        ("getattr_res_fail", types.GetAttrRes, (const.NFS3ERR_NOENT, None)),
        ("lookup_args", types.LookupArgs,
         Record(what=Record(dir=_FH, name="file.txt"))),
        ("lookup_res_ok", types.LookupRes,
         (const.NFS3_OK, Record(object=_FH2, obj_attributes=_fattr(),
                                dir_attributes=None))),
        ("lookup_res_fail", types.LookupRes,
         (const.NFS3ERR_NOENT, Record(dir_attributes=_fattr()))),
        ("read_args", types.ReadArgs,
         Record(file=_FH, offset=0x1_0000_0001, count=8192)),
        ("read_res_ok", types.ReadRes,
         (const.NFS3_OK, Record(file_attributes=_fattr(),
                                count=len(payload), eof=True,
                                data=payload))),
        ("read_res_fail", types.ReadRes,
         (const.NFS3ERR_IO, Record(file_attributes=None))),
        ("write_args", types.WriteArgs,
         Record(file=_FH, offset=4096, count=11,
                stable=const.FILE_SYNC, data=b"hello world")),
        ("write_res_ok", types.WriteRes,
         (const.NFS3_OK, Record(file_wcc=_wcc(), count=11,
                                committed=const.FILE_SYNC, verf=_VERF))),
        ("write_res_fail", types.WriteRes,
         (const.NFS3ERR_IO, Record(file_wcc=Record(before=None,
                                                   after=None)))),
    ]


#: sha256 of each vector's encoding, frozen from the reference path.
GOLDEN_NFS3 = {
    "getattr_args":
        "004625dac81b0e938512c786ac38ce24501d5781bd114ac99b1842e2076490ca",
    "getattr_res_ok":
        "7afeb8996404de5e898988dbf0d29cbf97a4829f36d16b09c20ab3faf39e2e3d",
    "getattr_res_fail":
        "433ebf5bc03dffa38536673207a21281612cef5faa9bc7a4d5b9be2fdb12cf1a",
    "lookup_args":
        "ba9383526963e2ca128ac98a051043c840abb97583b2b8202592a3e87c8f7c71",
    "lookup_res_ok":
        "48ff72d6a105089ad9c25c03ba68221b5582c225c9e6f1f947262406d2314616",
    "lookup_res_fail":
        "246693d7dda43ec36bf46f7c3db1d0f915b8a959c4a74310630a96b481450d50",
    "read_args":
        "b2fa13a7e3f00b50f2959b8913e458811b500b8266b5e8bcbc993ae64287c0af",
    "read_res_ok":
        "d17444816735f663431971eb580cae4947bad230f4ca9b8897824fc936eec7d1",
    "read_res_fail":
        "0af69fc776f69eec4b68853316a041d0fdaea4665ec299fbc9283560a0a6f667",
    "write_args":
        "1a50a08970007140879081e2e654d1aa8a14b4cba4c12bdf79a83367dfebdb18",
    "write_res_ok":
        "a6d24f3cb51cba89b44db0a166a0a3a560fd5ce430d986512cc51b299cd3311a",
    "write_res_fail":
        "fa236c53c3c620a6d7a96ab6389430820cdbc0b22e73932bd36d3b5bc86df6c6",
}


@pytest.fixture(autouse=True)
def _fast_flags_restored():
    yield
    backend.set_fast(True)


class _CapturePipe:
    """Minimal Pipe: records sends, hand-delivers on demand."""

    def __init__(self):
        self.sent = []
        self.handler = None

    def send(self, data):
        self.sent.append(bytes(data))

    def on_receive(self, handler):
        self.handler = handler


def channel_transcript():
    """Wire records of the seeded two-way conversation."""
    client_pipe, server_pipe = _CapturePipe(), _CapturePipe()
    client = SecureChannel(client_pipe, send_key=K_CS, recv_key=K_SC)
    server = SecureChannel(server_pipe, send_key=K_SC, recv_key=K_CS)
    for payload in CHANNEL_PAYLOADS:
        client.send(payload)
        server.send(payload[::-1])
    return client_pipe.sent + server_pipe.sent, client, server


def _digest(records):
    acc = hashlib.sha256()
    for record in records:
        acc.update(len(record).to_bytes(4, "big"))
        acc.update(record)
    return acc.hexdigest()


# ---------------------------------------------------------------------------
# Channel records
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fast", [True, False])
def test_channel_transcript_matches_golden(fast):
    backend.set_fast(fast)
    records, _client, _server = channel_transcript()
    assert _digest(records) == GOLDEN_CHANNEL


def test_channel_records_identical_across_backends():
    backend.set_fast(True)
    fast_records, _c, _s = channel_transcript()
    backend.set_fast(False)
    slow_records, _c, _s = channel_transcript()
    assert fast_records == slow_records


@pytest.mark.parametrize("fast", [True, False])
def test_fast_sealed_records_decrypt_on_reference_receiver(fast):
    """Sender and receiver may disagree about the flag: same bytes."""
    backend.set_fast(fast)
    records, _client, _server = channel_transcript()
    backend.set_fast(not fast)
    pipe = _CapturePipe()
    receiver = SecureChannel(pipe, send_key=K_SC, recv_key=K_CS)
    delivered = []
    receiver.on_receive(lambda p: delivered.append(bytes(p)))
    for record in records[:len(CHANNEL_PAYLOADS)]:  # client->server half
        pipe.handler(record)
    assert delivered == CHANNEL_PAYLOADS
    assert receiver.rejected_records == 0


# ---------------------------------------------------------------------------
# Hot NFS3 marshals
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fast", [True, False])
def test_nfs3_encodings_match_golden(fast):
    backend.set_fast(fast)
    for name, codec, value in nfs3_vectors():
        encoded = codec.pack(value)
        assert hashlib.sha256(encoded).hexdigest() == GOLDEN_NFS3[name], name
        assert codec.unpack(encoded) == value, name


def test_nfs3_fast_and_slow_encodings_identical():
    for name, codec, value in nfs3_vectors():
        backend.set_fast(True)
        fast_bytes = codec.pack(value)
        backend.set_fast(False)
        slow_bytes = codec.pack(value)
        assert fast_bytes == slow_bytes, name
        # Cross-decode: each path reads the other's bytes.
        assert codec.unpack(fast_bytes) == value, name
        backend.set_fast(True)
        assert codec.unpack(slow_bytes) == value, name


def test_fast_marshal_path_actually_runs():
    """Guard against the fast path silently never installing."""
    backend.set_fast(True)
    before = xdr.STATS.snapshot()
    for name, codec, value in nfs3_vectors():
        codec.unpack(codec.pack(value))
    delta = {k: xdr.STATS.snapshot()[k] - before[k] for k in before}
    count = len(nfs3_vectors())
    assert delta["fast_packs"] == count
    assert delta["fast_unpacks"] == count


def test_slow_marshal_path_counts_when_disabled():
    backend.set_fast(False)
    before = xdr.STATS.snapshot()
    vector = nfs3_vectors()[0]
    vector[1].unpack(vector[1].pack(vector[2]))
    delta = {k: xdr.STATS.snapshot()[k] - before[k] for k in before}
    assert delta["fast_packs"] == 0 and delta["slow_packs"] == 1
    assert delta["fast_unpacks"] == 0 and delta["slow_unpacks"] == 1


def test_non_canonical_values_fall_back_to_codec():
    """DECLINED is an implementation detail: odd values still marshal."""
    backend.set_fast(True)
    # memoryview file handle: fast path wants real bytes, codec copes.
    value = Record(object=memoryview(_FH))
    encoded = types.GetAttrArgs.pack(value)
    assert encoded == types.GetAttrArgs.pack(Record(object=_FH))


# ---------------------------------------------------------------------------
# XDR strictness: identical on both paths (the bugfix regression tests)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fast", [True, False])
def test_nonzero_string_padding_rejected(fast):
    backend.set_fast(fast)
    value = Record(what=Record(dir=_FH, name="abc"))
    encoded = bytearray(types.LookupArgs.pack(value))
    assert encoded[-1] == 0  # "abc" pads with one zero byte
    encoded[-1] = 0xAA
    with pytest.raises(XdrError):
        types.LookupArgs.unpack(bytes(encoded))


@pytest.mark.parametrize("fast", [True, False])
def test_nonzero_opaque_padding_rejected(fast):
    backend.set_fast(fast)
    ok = (const.NFS3_OK,
          Record(file_attributes=None, count=3, eof=False, data=b"abc"))
    encoded = bytearray(types.ReadRes.pack(ok))
    assert encoded[-1] == 0
    encoded[-1] = 0x01
    with pytest.raises(XdrError):
        types.ReadRes.unpack(bytes(encoded))


@pytest.mark.parametrize("fast", [True, False])
@pytest.mark.parametrize("tail", [b"\x00" * 4, b"junk"])
def test_trailing_garbage_rejected(fast, tail):
    backend.set_fast(fast)
    encoded = types.GetAttrArgs.pack(Record(object=_FH)) + tail
    with pytest.raises(XdrError):
        types.GetAttrArgs.unpack(encoded)


@pytest.mark.parametrize("fast", [True, False])
def test_truncated_record_rejected(fast):
    backend.set_fast(fast)
    encoded = types.ReadArgs.pack(
        Record(file=_FH, offset=0, count=4096)
    )
    with pytest.raises(XdrError):
        types.ReadArgs.unpack(encoded[:-3])


# ---------------------------------------------------------------------------
# ARC4 kernels
# ---------------------------------------------------------------------------

def _random_draws(rng, total):
    sizes = []
    while total:
        n = min(total, rng.choice([1, 3, 20, 32, 64, 333, 1024, 4096]))
        sizes.append(n)
        total -= n
    return sizes


@pytest.mark.parametrize(
    "crank", [arc4kernel.fast_crank, arc4kernel.pyblock_crank],
    ids=[arc4kernel.FAST_KERNEL, "pyblock"],
)
def test_block_kernels_match_reference(crank):
    rng = random.Random(20260805)
    for _trial in range(10):
        key = bytes(rng.randrange(256)
                    for _ in range(rng.choice([1, 5, 16, 20, 24])))
        spins = max(1, (len(key) * 8 + 127) // 128)
        ref_state = arc4kernel.key_schedule(key, spins)
        fast_state = list(ref_state)
        ri = rj = fi = fj = 0
        for n in _random_draws(rng, 6000):
            expected, ri, rj = arc4kernel.reference_crank(ref_state, ri,
                                                          rj, n)
            got, fi, fj = crank(fast_state, fi, fj, n)
            assert got == expected
            assert (fi, fj) == (ri, rj)
        assert fast_state == ref_state


def test_sfs_spin_rule_selects_two_spins_for_20_byte_keys():
    key = K_CS
    assert ARC4(key).keystream(64) == ARC4(key, spins=2).keystream(64)
    assert ARC4(key).keystream(64) != ARC4(key, spins=1).keystream(64)
    # Classic 128-bit keys keep the single-spin schedule.
    key16 = bytes(range(16))
    assert ARC4(key16).keystream(64) == ARC4(key16, spins=1).keystream(64)


def test_midstream_backend_flip_keeps_stream_continuous():
    key = b"flip-test-session-key"[:20]
    sizes = [5, 37, 1000, 64, 3, 2048, 31, 1, 1500]
    flipping = ARC4(key)
    out = bytearray()
    for index, n in enumerate(sizes):
        backend.set_fast(index % 2 == 0)
        out += flipping.keystream(n)
    backend.set_fast(False)
    assert bytes(out) == ARC4(key).keystream(sum(sizes))


def test_keystream_lookahead_buffer_is_exact():
    """Many small draws equal one big draw (buffered refill is seamless)."""
    backend.set_fast(True)
    key = K_SC
    small = ARC4(key)
    chunks = [small.keystream(n) for n in [1, 31, 32, 33, 900, 100, 1024]]
    backend.set_fast(False)
    assert b"".join(chunks) == ARC4(key).keystream(sum(
        [1, 31, 32, 33, 900, 100, 1024]))


def _regenerate():
    """Print fresh golden constants (reference path)."""
    backend.set_fast(False)
    records, _c, _s = channel_transcript()
    print(f'GOLDEN_CHANNEL = "{_digest(records)}"')
    print("GOLDEN_NFS3 = {")
    for name, codec, value in nfs3_vectors():
        digest = hashlib.sha256(codec.pack(value)).hexdigest()
        print(f'    "{name}":\n        "{digest}",')
    print("}")


if __name__ == "__main__":
    _regenerate()
