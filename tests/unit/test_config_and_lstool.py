"""Tests for sfssd.conf parsing and the sfsls tool."""

import pytest

from repro.core import proto
from repro.core.config import DispatchConfig
from repro.core.pathnames import hostid_to_text
from repro.fs import pathops
from repro.fs.memfs import Cred
from repro.kernel.lstool import sfsls
from repro.core.libsfs import LocalAccounts
from repro.kernel.world import World


# --- config file parsing -----------------------------------------------------

def test_load_basic_rule():
    config = DispatchConfig()
    config.add_export("default", b"H" * 20, proto.DIALECT_RW)
    added = config.load("rule catchall export special\n")
    assert added == 1
    assert config.dispatch(1, b"X" * 20, []) == "special"


def test_load_conditions_and_priority():
    config = DispatchConfig()
    config.add_export("default", b"H" * 20, proto.DIALECT_RW)
    hostid_text = hostid_to_text(b"Z" * 20)
    text = f"""
    # experimental protocol v2 by extension
    rule v2 export experimental extension=v2
    rule pinned export pinned-export hostid={hostid_text} service=1
    """
    assert config.load(text) == 2
    # file order: the first line wins over later lines and older rules
    assert config.dispatch(1, b"Z" * 20, ["v2"]) == "experimental"
    assert config.dispatch(1, b"Z" * 20, []) == "pinned-export"
    # service/hostid conditions must both hold for the pinned rule
    assert config.dispatch(2, b"Z" * 20, []) is None
    assert config.dispatch(1, b"Y" * 20, []) is None


def test_load_service_condition():
    config = DispatchConfig()
    config.load("rule authonly export auth service=2\n")
    assert config.dispatch(2, b"A" * 20, []) == "auth"
    assert config.dispatch(1, b"A" * 20, []) is None


def test_load_rejects_bad_syntax():
    config = DispatchConfig()
    with pytest.raises(ValueError):
        config.load("this is not a rule\n")
    with pytest.raises(ValueError):
        config.load("rule x export y badcondition\n")
    with pytest.raises(ValueError):
        config.load("rule x export y color=red\n")


def test_load_comments_and_blanks():
    config = DispatchConfig()
    assert config.load("\n# only comments here\n   \n") == 0


def test_loaded_rules_drive_a_real_server():
    """End to end: a conf line routes an unknown HostID to an export."""
    world = World(seed=131)
    server = world.add_server("conf.example.com")
    path = server.export_fs(name="main")
    pathops.write_file(server.exports["main"][1], "/x", b"routed by conf")
    server.master.config.load("rule hijack export main\n")
    # A client asking for a *different* HostID now reaches the export --
    # and correctly rejects it for failing the HostID check.
    from repro.core.client import SecurityError, ServerSession
    from repro.core.keyneg import EphemeralKeyCache
    from repro.core.pathnames import SelfCertifyingPath

    bogus = SelfCertifyingPath("conf.example.com", b"\x01" * 20)
    link = world.connector("conf.example.com", proto.SERVICE_FILESERVER)
    with pytest.raises(SecurityError):
        ServerSession.connect(link, bogus, EphemeralKeyCache(world.rng),
                              world.rng)


# --- sfsls ---------------------------------------------------------------------

@pytest.fixture
def ls_world():
    world = World(seed=132)
    server = world.add_server("ls.example.com")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)
    client = world.add_client("box")
    proc = client.login_user("alice", alice.key, uid=1000)
    return world, server, path, proc


def test_sfsls_local_directory(ls_world):
    _world, _server, _path, proc = ls_world
    root = proc  # alice can list /
    lines = sfsls(root, "/", LocalAccounts(users={0: "root"}))
    assert any(line.endswith(" sfs") for line in lines)
    assert all(line[0] in "d-l" for line in lines)


def test_sfsls_remote_shows_remote_names(ls_world):
    _world, _server, path, proc = ls_world
    proc.write_file(f"{path}/home/alice/mine.txt", b"x" * 42)
    # Locally, uid 1000 is "al"; remotely it is "alice" -> %alice.
    accounts = LocalAccounts(users={1000: "al"})
    lines = sfsls(proc, f"{path}/home/alice", accounts)
    line = next(l for l in lines if l.endswith("mine.txt"))
    assert "%alice" in line
    assert "        42" in line or " 42 " in line


def test_sfsls_remote_same_name_unprefixed(ls_world):
    _world, _server, path, proc = ls_world
    proc.write_file(f"{path}/home/alice/f", b"1")
    accounts = LocalAccounts(users={1000: "alice"})
    lines = sfsls(proc, f"{path}/home/alice", accounts)
    line = next(l for l in lines if l.endswith(" f"))
    assert " alice " in line
    assert "%alice" not in line


def test_sfsls_mode_strings(ls_world):
    _world, _server, path, proc = ls_world
    proc.write_file(f"{path}/home/alice/x", b"1", mode=0o640)
    proc.mkdir(f"{path}/home/alice/d", mode=0o750)
    proc.symlink("x", f"{path}/home/alice/lnk")
    lines = {l.rsplit(" ", 1)[1]: l for l in
             sfsls(proc, f"{path}/home/alice")}
    assert lines["x"].startswith("-rw-r-----")
    assert lines["d"].startswith("drwxr-x---")
    assert lines["lnk"].startswith("l")
