"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    LayerTracker,
    MetricsRegistry,
    NULL_REGISTRY,
    NullLayerTracker,
    NullRegistry,
    Tracer,
)
from repro.obs.export import (
    SnapshotCollector,
    format_attribution,
    format_metrics,
    format_snapshot,
    load_snapshot,
    ordered_layers,
    write_snapshot,
)
from repro.sim.clock import Clock


# --- registry instruments ----------------------------------------------------

def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("rpc.calls")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = registry.gauge("queue.depth")
    gauge.set(3)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 2


def test_instruments_are_get_or_create():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")
    assert registry.histogram("h") is registry.histogram("h")
    assert registry.family("f") is registry.family("f")


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_histogram_buckets_are_deterministic():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    assert histogram.bounds == DEFAULT_BUCKETS
    histogram.observe(0.5e-6)   # below first bound -> bucket 0
    histogram.observe(1e-6)     # == first bound (inclusive) -> bucket 0
    histogram.observe(3e-6)     # -> bucket 1 (bound 4e-6)
    histogram.observe(1e9)      # beyond every bound -> overflow
    assert histogram.count == 4
    assert histogram.bucket_counts[0] == 2
    assert histogram.bucket_counts[1] == 1
    assert histogram.bucket_counts[-1] == 1
    assert histogram.mean == pytest.approx(
        (0.5e-6 + 1e-6 + 3e-6 + 1e9) / 4
    )
    snap = histogram.snapshot()
    assert snap["type"] == "histogram"
    assert snap["buckets"][-1] == [None, 1]


def test_counter_family_keeps_raw_label_keys():
    registry = MetricsRegistry()
    family = registry.family("rpc.peer.x.calls")
    family.labels((100003, 4)).inc()
    family.labels((100003, 4)).inc()
    family.labels((100003, 7)).inc()
    assert dict(family.items()) != {}
    assert {key: c.value for key, c in family.items()} == {
        (100003, 4): 2, (100003, 7): 1,
    }
    assert family.total() == 3
    assert family.snapshot() == {
        "type": "family",
        "values": {"(100003, 4)": 2, "(100003, 7)": 1},
    }


def test_scope_uniquifies_prefixes():
    registry = MetricsRegistry()
    first = registry.scope("rpc.peer.redialed")
    second = registry.scope("rpc.peer.redialed")
    assert first.prefix == "rpc.peer.redialed"
    assert second.prefix == "rpc.peer.redialed#2"
    first.counter("calls").inc()
    second.counter("calls").inc(2)
    metrics = registry.snapshot()["metrics"]
    assert metrics["rpc.peer.redialed.calls"] == 1
    assert metrics["rpc.peer.redialed#2.calls"] == 2


def test_scopes_nest():
    registry = MetricsRegistry()
    inner = registry.scope("a").scope("b")
    inner.counter("c").inc()
    assert registry.snapshot()["metrics"] == {"a.b.c": 1}


def test_snapshot_is_json_serializable_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc()
    registry.histogram("h").observe(0.001)
    registry.family("f").labels("k").inc()
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must not raise
    assert list(snapshot["metrics"]) == sorted(snapshot["metrics"])


# --- the disabled configuration ----------------------------------------------

def test_null_registry_is_inert():
    assert NULL_REGISTRY.enabled is False
    counter = NULL_REGISTRY.counter("anything")
    counter.inc()
    counter.inc(100)
    assert counter.value == 0
    NULL_REGISTRY.histogram("h").observe(1.0)
    NULL_REGISTRY.family("f").labels("x").inc()
    assert NULL_REGISTRY.scope("p") is NULL_REGISTRY
    assert NULL_REGISTRY.snapshot() == {"metrics": {}, "layers": {}}
    assert isinstance(NULL_REGISTRY.layers, NullLayerTracker)
    with NULL_REGISTRY.layers.layer("crypto"):
        pass
    assert NULL_REGISTRY.layers.breakdown() == {}
    assert isinstance(NullRegistry(), NullRegistry)


# --- layer tracker -----------------------------------------------------------

def test_layer_tracker_charges_sim_time_exclusively():
    clock = Clock()
    layers = LayerTracker(clock)
    layers.reset()
    clock.advance(1.0)            # root time
    layers.push("rpc")
    clock.advance(2.0)            # rpc exclusive
    layers.push("network")
    clock.advance(3.0)            # network, suspends rpc
    layers.pop()
    clock.advance(4.0)            # rpc resumes
    layers.pop()
    clock.advance(0.5)            # root again
    breakdown = layers.breakdown()
    assert breakdown["rpc"][1] == pytest.approx(6.0)
    assert breakdown["network"][1] == pytest.approx(3.0)
    assert breakdown[LayerTracker.ROOT][1] == pytest.approx(1.5)
    # Exclusive components sum to the elapsed window.
    assert sum(sim for _cpu, sim in breakdown.values()) == pytest.approx(10.5)


def test_layer_tracker_sums_to_elapsed_cpu():
    layers = LayerTracker()
    layers.reset()
    import time
    cpu_start = time.perf_counter()
    with layers.layer("crypto"):
        sum(range(20000))
    with layers.layer("rpc"):
        sum(range(20000))
    elapsed = time.perf_counter() - cpu_start
    breakdown = layers.breakdown()
    total = sum(cpu for cpu, _sim in breakdown.values())
    assert total == pytest.approx(elapsed, rel=0.25, abs=5e-3)
    assert breakdown["crypto"][0] > 0
    assert breakdown["rpc"][0] > 0


def test_layer_tracker_reset_preserves_stack():
    clock = Clock()
    layers = LayerTracker(clock)
    layers.push("rpc")
    clock.advance(1.0)
    layers.reset()                # mid-flight reset, e.g. bench warmup
    clock.advance(2.0)
    layers.pop()
    breakdown = layers.breakdown()
    assert "rpc" in breakdown
    assert breakdown["rpc"][1] == pytest.approx(2.0)


def test_registry_snapshot_includes_layers():
    clock = Clock()
    registry = MetricsRegistry(clock)
    registry.layers.reset()
    with registry.layers.layer("disk"):
        clock.advance(0.25)
    layers = registry.snapshot()["layers"]
    assert layers["disk"]["sim"] == pytest.approx(0.25)
    assert layers["disk"]["total"] == pytest.approx(
        layers["disk"]["cpu"] + layers["disk"]["sim"]
    )


# --- tracer ------------------------------------------------------------------

def test_tracer_nests_spans():
    clock = Clock()
    tracer = Tracer(clock)
    with tracer.span("outer", kind="test"):
        clock.advance(1.0)
        with tracer.span("inner"):
            clock.advance(2.0)
    (outer,) = tracer.roots
    assert outer.name == "outer"
    assert outer.tags == {"kind": "test"}
    (inner,) = outer.children
    # Inclusive times: the parent covers the child.
    assert outer.sim_seconds == pytest.approx(3.0)
    assert inner.sim_seconds == pytest.approx(2.0)
    dicts = tracer.to_dicts()
    assert dicts[0]["name"] == "outer"
    assert dicts[0]["children"][0]["name"] == "inner"
    json.dumps(dicts)


def test_tracer_measure_returns_finished_span():
    tracer = Tracer()
    span = tracer.measure("work", lambda: sum(range(1000)))
    assert span.cpu_seconds >= 0
    assert span.total == span.cpu_seconds + span.sim_seconds
    assert tracer.roots == [span]


# --- exporter ----------------------------------------------------------------

def test_snapshot_round_trips_through_json(tmp_path):
    clock = Clock()
    registry = MetricsRegistry(clock)
    registry.counter("rpc.calls").inc(3)
    with registry.layers.layer("network"):
        clock.advance(0.5)
    path = tmp_path / "snap.json"
    written = write_snapshot(str(path), registry, meta={"figure": "fig5"})
    loaded = load_snapshot(str(path))
    assert loaded == written
    assert loaded["meta"] == {"figure": "fig5"}
    assert loaded["metrics"]["rpc.calls"] == 3
    assert loaded["layers"]["network"]["sim"] == pytest.approx(0.5)


def test_snapshot_collector_gathers_named_runs(tmp_path):
    collector = SnapshotCollector()
    for name in ("fig5/SFS", "fig5/NFS 3 (UDP)"):
        registry = MetricsRegistry()
        registry.counter("rpc.calls").inc()
        collector.add(name, registry, meta={"config": name})
    path = tmp_path / "collection.json"
    collector.write(str(path))
    loaded = load_snapshot(str(path))
    assert set(loaded["snapshots"]) == {"fig5/SFS", "fig5/NFS 3 (UDP)"}
    assert loaded["snapshots"]["fig5/SFS"]["metrics"]["rpc.calls"] == 1


def test_ordered_layers_puts_known_layers_first():
    layers = {"zebra": (0, 0), "disk": (0, 0), "crypto": (0, 0)}
    assert ordered_layers(layers) == ["crypto", "disk", "zebra"]


def test_format_attribution_renders_totals_and_headline():
    text = format_attribution(
        {"crypto": (0.5, 0.0), "network": (0.0, 1.5)}, headline=2.0
    )
    assert "crypto" in text
    assert "total" in text
    assert "headline" in text
    assert "2.000" in text


def test_format_snapshot_renders_every_instrument_kind():
    clock = Clock()
    registry = MetricsRegistry(clock)
    registry.counter("rpc.calls").inc(7)
    registry.histogram("rpc.call_seconds").observe(0.001)
    registry.family("rpc.peer.x.calls").labels((100003, 4)).inc()
    with registry.layers.layer("rpc"):
        clock.advance(0.1)
    text = format_snapshot(
        registry.snapshot() | {"meta": {"figure": "fig5"}},
        heading="fig5/SFS",
    )
    assert "=== fig5/SFS ===" in text
    assert "meta: figure = fig5" in text
    assert "rpc.calls" in text
    assert "count=1" in text                       # histogram summary
    assert "rpc.peer.x.calls{(100003, 4)}" in text  # family row
    assert "Per-layer latency attribution" in text


def test_obs_cli_renders_both_shapes(tmp_path, capsys):
    from repro.obs.__main__ import main

    registry = MetricsRegistry()
    registry.counter("rpc.calls").inc()
    single = tmp_path / "single.json"
    write_snapshot(str(single), registry)
    assert main([str(single)]) == 0
    assert "rpc.calls" in capsys.readouterr().out

    collector = SnapshotCollector()
    collector.add("run-a", registry)
    collector.add("run-b", registry)
    collection = tmp_path / "collection.json"
    collector.write(str(collection))
    assert main([str(collection)]) == 0
    out = capsys.readouterr().out
    assert "=== run-a ===" in out and "=== run-b ===" in out


# --- histogram quantiles -------------------------------------------------

from bisect import bisect_left  # noqa: E402

from repro.obs.registry import Histogram  # noqa: E402


def test_quantile_empty_histogram_is_zero():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    assert histogram.quantile(0.5) == 0.0


def test_quantile_rejects_out_of_range():
    histogram = Histogram("h", bounds=(1.0,))
    for q in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            histogram.quantile(q)


def test_quantile_interpolates_within_bucket():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    # 4 observations, all landing in the (1, 2] bucket.
    for value in (1.2, 1.4, 1.6, 1.8):
        histogram.observe(value)
    # Median rank 2 of 4 → halfway through the bucket's span.
    assert histogram.quantile(0.5) == pytest.approx(1.5)
    assert histogram.quantile(1.0) == pytest.approx(2.0)


def test_quantile_first_bucket_interpolates_from_zero():
    histogram = Histogram("h", bounds=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(0.6)
    assert histogram.quantile(0.5) == pytest.approx(0.5)


def test_quantile_walks_cumulative_counts():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for _ in range(90):
        histogram.observe(0.5)      # bucket (0, 1]
    for _ in range(10):
        histogram.observe(3.0)      # bucket (2, 4]
    # p50 falls well inside the first bucket...
    assert histogram.quantile(0.50) <= 1.0
    # ...while p95 lands in the (2, 4] tail bucket.
    assert 2.0 < histogram.quantile(0.95) <= 4.0


def test_quantile_overflow_reports_last_finite_bound():
    histogram = Histogram("h", bounds=(1.0, 2.0))
    histogram.observe(100.0)
    assert histogram.quantile(0.99) == pytest.approx(2.0)


def test_quantile_tracks_exact_percentiles_within_bucket_width():
    """The estimator against ground truth: for a spread of samples the
    interpolated p95 must land within one bucket's span of the exact
    nearest-rank value."""
    import random

    rng = random.Random(11)
    histogram = Histogram("h")  # default exponential buckets
    samples = [rng.uniform(0.0001, 0.05) for _ in range(500)]
    for sample in samples:
        histogram.observe(sample)
    exact = sorted(samples)[int(0.95 * len(samples)) - 1]
    estimate = histogram.quantile(0.95)
    index = bisect_left(histogram.bounds, exact)
    lo = histogram.bounds[index - 1] if index else 0.0
    hi = histogram.bounds[index]
    assert lo <= estimate <= hi


def test_snapshot_includes_percentiles():
    registry = MetricsRegistry()
    histogram = registry.histogram("load.op_seconds")
    for value in (0.001, 0.002, 0.004, 0.100):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["p50"] == histogram.quantile(0.50)
    assert snapshot["p95"] == histogram.quantile(0.95)
    assert snapshot["p99"] == histogram.quantile(0.99)
    assert snapshot["p50"] <= snapshot["p95"] <= snapshot["p99"]


def test_format_metrics_renders_percentiles():
    from repro.obs.export import format_metrics

    registry = MetricsRegistry()
    histogram = registry.histogram("rpc.call_seconds")
    histogram.observe(0.010)
    text = format_metrics(registry.snapshot())
    line = next(l for l in text.splitlines() if "rpc.call_seconds" in l)
    assert "p50=" in line and "p95=" in line and "p99=" in line


def test_format_metrics_tolerates_pre_percentile_snapshots():
    from repro.obs.export import format_metrics

    registry = MetricsRegistry()
    registry.histogram("old.hist").observe(1.0)
    snapshot = registry.snapshot()
    for value in snapshot.values():
        if isinstance(value, dict):
            for key in ("p50", "p95", "p99"):
                value.pop(key, None)
    assert "old.hist" in format_metrics(snapshot)


# --- gauge high-watermarks -----------------------------------------------

from repro.obs.registry import Gauge, TeeRegistry  # noqa: E402


def test_plain_gauge_snapshots_as_float():
    gauge = Gauge("g")
    gauge.set(3.5)
    assert gauge.snapshot() == 3.5


def test_peaked_gauge_tracks_high_watermark():
    gauge = Gauge("g", track_peak=True)
    gauge.set(2.0)
    gauge.set(9.0)
    gauge.set(4.0)
    assert gauge.value == 4.0
    assert gauge.peak == 9.0
    assert gauge.snapshot() == {"type": "gauge", "value": 4.0, "peak": 9.0}
    gauge.reset_peak()
    # The peak restarts from the *current* value, not zero: the level
    # that exists right now was certainly reached.
    assert gauge.peak == 4.0
    gauge.set(0.0)
    gauge.reset_peak()
    assert gauge.snapshot() == {"type": "gauge", "value": 0.0, "peak": 0.0}


def test_enable_peak_upgrades_in_place():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(5.0)
    assert registry.gauge("depth", track_peak=True) is gauge
    assert gauge.track_peak
    gauge.set(7.0)
    gauge.set(1.0)
    assert gauge.snapshot()["peak"] == 7.0


def test_inc_dec_respect_the_peak():
    gauge = Gauge("g", track_peak=True)
    gauge.inc(3.0)
    gauge.dec(2.0)
    assert gauge.value == 1.0 and gauge.peak == 3.0


# --- snapshot merge / diff -----------------------------------------------

from repro.obs.merge import (  # noqa: E402
    diff_snapshots,
    merge_metric,
    merge_snapshots,
)


def registry_with(counter=0, wait=(), depth=None):
    registry = MetricsRegistry()
    if counter:
        registry.counter("ops").inc(counter)
    for value in wait:
        registry.histogram("wait").observe(value)
    if depth is not None:
        registry.gauge("depth", track_peak=True).set(depth)
    return registry


def test_merge_sums_counters_and_maxes_gauge_peaks():
    a = registry_with(counter=3, depth=2.0).snapshot()
    b = registry_with(counter=4, depth=7.0).snapshot()
    merged = merge_snapshots([a, b])
    assert merged["metrics"]["ops"] == 7
    assert merged["metrics"]["depth"] == {
        "type": "gauge", "value": 7.0, "peak": 7.0}
    assert merged["meta"]["merged_from"] == 2


def test_merge_combines_histograms_bucket_wise():
    a = registry_with(wait=[0.001] * 50).snapshot()
    b = registry_with(wait=[0.5] * 50).snapshot()
    merged = merge_snapshots([a, b])
    hist = merged["metrics"]["wait"]
    assert hist["count"] == 100
    assert hist["sum"] == pytest.approx(0.001 * 50 + 0.5 * 50)
    # The merged p99 sees both populations: it lands in the slow half.
    assert hist["p99"] > 0.1
    assert hist["p50"] <= 0.5


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
    b = MetricsRegistry()
    b.histogram("h", bounds=(1.0, 4.0)).observe(1.5)
    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_merge_sums_families_per_label():
    a = MetricsRegistry()
    a.family("errs").labels("busy").inc(2)
    b = MetricsRegistry()
    b.family("errs").labels("busy").inc(3)
    b.family("errs").labels("gone").inc(1)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["metrics"]["errs"]["values"] == {"busy": 5, "gone": 1}


def test_merge_named_snapshots_records_sources():
    merged = merge_snapshots({
        "alpha": registry_with(counter=1).snapshot(),
        "beta": registry_with(counter=1).snapshot(),
    })
    assert merged["meta"]["sources"] == ["alpha", "beta"]


def test_merge_metric_rejects_incompatible_shapes():
    with pytest.raises(ValueError):
        merge_metric(3, {"type": "family", "values": {}}, "x")


def test_merge_sums_layers():
    from repro.obs.export import registry_snapshot

    clock_a, clock_b = Clock(), Clock()
    a = MetricsRegistry(clock_a)
    with a.layers.layer("crypto"):
        clock_a.advance(0.25)
    b = MetricsRegistry(clock_b)
    with b.layers.layer("crypto"):
        clock_b.advance(0.50)
    merged = merge_snapshots([registry_snapshot(a), registry_snapshot(b)])
    assert merged["layers"]["crypto"]["sim"] == pytest.approx(0.75)


def test_diff_subtracts_monotonic_instruments():
    registry = MetricsRegistry()
    registry.counter("ops").inc(10)
    registry.histogram("wait").observe(0.001)
    before = registry.snapshot()
    registry.counter("ops").inc(5)
    registry.histogram("wait").observe(0.5)
    registry.gauge("depth").set(3.0)
    after = registry.snapshot()
    delta = diff_snapshots(before, after)
    assert delta["metrics"]["ops"] == 5
    assert delta["metrics"]["wait"]["count"] == 1
    # The windowed histogram's quantiles describe only the new sample.
    assert delta["metrics"]["wait"]["p99"] > 0.1
    # Metrics that appeared between snapshots pass through unchanged.
    assert delta["metrics"]["depth"] == 3.0


# --- tee registries ------------------------------------------------------


def test_tee_registry_writes_both_reads_primary():
    primary = MetricsRegistry()
    secondary = MetricsRegistry()
    tee = TeeRegistry(primary, secondary)
    tee.counter("ops").inc(3)
    tee.histogram("wait").observe(0.1)
    tee.gauge("depth", track_peak=True).set(4.0)
    tee.family("errs").labels("busy").inc()
    for registry in (primary, secondary):
        assert registry.counter("ops").value == 3
        assert registry.histogram("wait").count == 1
        assert registry.gauge("depth").peak == 4.0
        assert registry.family("errs").labels("busy").value == 1
    # Reads delegate to the primary.
    assert tee.counter("ops").value == 3
    primary.counter("solo").inc()             # write around the tee
    assert tee.counter("solo").value == 1


def test_tee_reset_peak_clears_both_watermarks():
    primary = MetricsRegistry()
    secondary = MetricsRegistry()
    tee = TeeRegistry(primary, secondary)
    gauge = tee.gauge("depth", track_peak=True)
    gauge.set(9.0)
    gauge.set(1.0)
    gauge.reset_peak()
    assert primary.gauge("depth").peak == 1.0
    assert secondary.gauge("depth").peak == 1.0


# --- obs CLI merge / diff ------------------------------------------------


def test_obs_cli_merge_writes_fleet_snapshot(tmp_path, capsys):
    from repro.obs.__main__ import main

    paths = []
    for index in (1, 2):
        registry = MetricsRegistry()
        registry.counter("ops").inc(index)
        path = tmp_path / f"s{index}.json"
        write_snapshot(str(path), registry)
        paths.append(str(path))
    out = tmp_path / "merged.json"
    assert main(["merge", *paths, "-o", str(out)]) == 0
    merged = load_snapshot(str(out))
    assert merged["metrics"]["ops"] == 3
    assert merged["meta"]["merged_from"] == 2
    # Without -o it prints the table instead.
    assert main(["merge", *paths]) == 0
    assert "ops" in capsys.readouterr().out


def test_obs_cli_merge_expands_collections(tmp_path):
    from repro.obs.__main__ import main

    collector = SnapshotCollector()
    for name in ("run-a", "run-b"):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        collector.add(name, registry)
    collection = tmp_path / "collection.json"
    collector.write(str(collection))
    out = tmp_path / "merged.json"
    assert main(["merge", str(collection), "-o", str(out)]) == 0
    assert load_snapshot(str(out))["metrics"]["ops"] == 2


def test_obs_cli_diff_subtracts_snapshots(tmp_path, capsys):
    from repro.obs.__main__ import main

    registry = MetricsRegistry()
    registry.counter("ops").inc(2)
    before = tmp_path / "before.json"
    write_snapshot(str(before), registry)
    registry.counter("ops").inc(5)
    after = tmp_path / "after.json"
    write_snapshot(str(after), registry)
    out = tmp_path / "delta.json"
    assert main(["diff", str(before), str(after), "-o", str(out)]) == 0
    assert load_snapshot(str(out))["metrics"]["ops"] == 5
    assert main(["diff", str(before), str(after)]) == 0
    assert "ops" in capsys.readouterr().out


def test_obs_cli_diff_refuses_collections(tmp_path):
    from repro.obs.__main__ import main

    collector = SnapshotCollector()
    collector.add("run", MetricsRegistry())
    collection = tmp_path / "collection.json"
    collector.write(str(collection))
    single = tmp_path / "single.json"
    write_snapshot(str(single), MetricsRegistry())
    with pytest.raises(SystemExit):
        main(["diff", str(collection), str(single)])


def test_format_metrics_renders_gauge_peaks():
    from repro.obs.export import format_metrics

    registry = MetricsRegistry()
    registry.gauge("depth", track_peak=True).set(3.0)
    text = format_metrics(registry.snapshot())
    assert "depth" in text and "peak" in text
