"""Unit tests for sfscd internals (repro.core.client): the synthetic
/sfs program, SwitchablePipe, and fsid rewriting."""

import pytest

from repro.core.client import SfsClientDaemon, _rewrite_fsids
from repro.core.server import SwitchablePipe
from repro.core.channel import SecureChannel
from repro.nfs3 import const as nfs_const
from repro.nfs3 import types as nfs_types
from repro.rpc.peer import CallContext, RpcPeer
from repro.rpc.rpcmsg import AuthSys, CallHeader
from repro.rpc.xdr import Record
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair


class _NoMounter:
    def mount(self, *args): ...
    def unmount(self, *args): ...


def make_daemon():
    import random

    clock = Clock()
    return SfsClientDaemon(
        clock, random.Random(5),
        connector=lambda location, service: (_ for _ in ()).throw(
            ConnectionError("unreachable in unit tests")
        ),
        mounter=_NoMounter(),
    )


def ctx_for(daemon, uid):
    cred = AuthSys(uid=uid, gid=100).to_auth()
    header = CallHeader(xid=1, prog=nfs_const.NFS3_PROGRAM,
                        vers=3, proc=3, cred=cred)
    return CallContext(peer=None, header=header)


def test_root_getattr():
    daemon = make_daemon()
    args = Record(object=daemon.root_handle())
    status, body = daemon._getattr(args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3_OK
    assert body.obj_attributes.type == nfs_const.NF3DIR


def test_lookup_in_non_root_rejected():
    daemon = make_daemon()
    args = Record(what=Record(dir=b"SOMETHINGELSE", name="x"))
    status, _body = daemon._lookup(args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3ERR_NOTDIR


def test_lookup_unreachable_mount_is_noent():
    daemon = make_daemon()
    name = "unreachable.example.com:" + "2" * 32
    args = Record(what=Record(dir=daemon.root_handle(), name=name))
    status, _body = daemon._lookup(args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3ERR_NOENT


def test_lookup_plain_name_without_agent_is_noent():
    daemon = make_daemon()
    args = Record(what=Record(dir=daemon.root_handle(), name="plainname"))
    status, _body = daemon._lookup(args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3ERR_NOENT


def test_agent_symlink_manufactured_and_scoped():
    import random
    from repro.core.agent import Agent

    daemon = make_daemon()
    agent = Agent("u", random.Random(6))
    agent.add_link("mit", "/sfs/target:" + "2" * 32)
    daemon.attach_agent(1000, agent)
    args = Record(what=Record(dir=daemon.root_handle(), name="mit"))
    status, body = daemon._lookup(args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3_OK
    assert body.obj_attributes.type == nfs_const.NF3LNK
    # readlink through the daemon
    link_args = Record(symlink=body.object)
    status, link_body = daemon._readlink(link_args, ctx_for(daemon, 1000))
    assert status == nfs_const.NFS3_OK
    assert link_body.data == "/sfs/target:" + "2" * 32
    # another uid does not see it
    status, _ = daemon._lookup(args, ctx_for(daemon, 2000))
    assert status == nfs_const.NFS3ERR_NOENT


def test_readdir_lists_per_agent_views():
    import random
    from repro.core.agent import Agent

    daemon = make_daemon()
    agent = Agent("u", random.Random(7))
    agent.add_link("work", "/sfs/x:" + "3" * 32)
    daemon.attach_agent(1000, agent)
    args = Record(what=Record(dir=daemon.root_handle(), name="work"))
    daemon._lookup(args, ctx_for(daemon, 1000))
    rd_args = Record(dir=daemon.root_handle(), cookie=0,
                     cookieverf=b"\x00" * 8, count=4096)
    status, body = daemon._readdir(rd_args, ctx_for(daemon, 1000))
    names = [e.name for e in body.entries]
    assert "work" in names
    status, body = daemon._readdir(rd_args, ctx_for(daemon, 2000))
    assert "work" not in [e.name for e in body.entries]


def test_fsinfo_and_access():
    daemon = make_daemon()
    status, body = daemon._fsinfo(
        Record(fsroot=daemon.root_handle()), ctx_for(daemon, 1000)
    )
    assert status == nfs_const.NFS3_OK
    assert body.rtpref == 8192
    status, body = daemon._access(
        Record(object=daemon.root_handle(),
               access=nfs_const.ACCESS3_READ | nfs_const.ACCESS3_MODIFY),
        ctx_for(daemon, 1000),
    )
    assert body.access == nfs_const.ACCESS3_READ  # read-only namespace


# --- _rewrite_fsids -----------------------------------------------------------

def _fattr(fsid):
    zero = nfs_types.NfsTime.make(seconds=0, nseconds=0)
    return nfs_types.Fattr.make(
        type=1, mode=0o644, nlink=1, uid=0, gid=0, size=0, used=0,
        rdev=nfs_types.SpecData.make(major=0, minor=0),
        fsid=fsid, fileid=9, atime=zero, mtime=zero, ctime=zero,
    )


def test_rewrite_fsids_deep():
    body = Record(
        obj_attributes=_fattr(111),
        dir_wcc=nfs_types.WccData.make(before=None, after=_fattr(222)),
        entries=[Record(name_attributes=_fattr(333), name_handle=None,
                        fileid=1, name="x", cookie=1)],
    )
    _rewrite_fsids(body, 777)
    assert body.obj_attributes.fsid == 777
    assert body.dir_wcc.after.fsid == 777
    assert body.entries[0].name_attributes.fsid == 777
    assert body.entries[0].name_attributes.fileid == 9  # untouched


def test_rewrite_fsids_handles_unions_and_none():
    _rewrite_fsids(None, 7)
    _rewrite_fsids((0, Record(obj_attributes=_fattr(5))), 7)
    value = (nfs_const.NFS3_OK, Record(obj_attributes=_fattr(5)))
    _rewrite_fsids(value, 7)
    assert value[1].obj_attributes.fsid == 7


# --- SwitchablePipe -----------------------------------------------------------

def test_switchable_pipe_switch_after_reply():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    pipe_a = SwitchablePipe(a)
    received_b = []
    b.on_receive(received_b.append)
    pipe_a.on_receive(lambda d: None)
    channel = SecureChannel.__new__(SecureChannel)  # placeholder w/ api
    sent = []

    class FakeChannel:
        def __init__(self):
            self.sent = []

        def send(self, data):
            sent.append(data)

        def on_receive(self, handler):
            self.handler = handler

        def attach(self): ...

    fake = FakeChannel()
    pipe_a.switch_after_reply(fake)
    pipe_a.send(b"the plaintext reply")      # goes out raw, then switch
    assert received_b == [b"the plaintext reply"]
    pipe_a.send(b"now encrypted")
    assert sent == [b"now encrypted"]


def test_switchable_pipe_switch_now():
    clock = Clock()
    a, _b = link_pair(clock, NetworkParameters.instant())
    pipe = SwitchablePipe(a)
    seen = []
    pipe.on_receive(seen.append)

    class FakeChannel:
        def send(self, data): ...
        def on_receive(self, handler):
            self.handler = handler

        def attach(self): ...

    fake = FakeChannel()
    pipe.switch_now(fake)
    fake.handler(b"via channel")
    assert seen == [b"via channel"]
