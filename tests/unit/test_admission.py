"""Tests for server request queueing and admission control."""

import pytest

from repro.core.admission import FAIR_SHARE, FIFO, RequestQueue
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import Clock
from repro.sim.sched import Scheduler, SchedulerStalled, Sleep


def pump_all(sched):
    """Run until stalled.  The queue's workers are daemons, so they do
    not hold ``Scheduler.run`` open on their own — real deployments
    always have live client tasks; these tests do not."""
    while True:
        try:
            sched.pump_once()
        except SchedulerStalled:
            return


def make(max_depth=4, workers=1, policy=FIFO, service_time=0.0):
    clock = Clock()
    registry = MetricsRegistry()
    sched = Scheduler(clock, seed=0, metrics=registry)
    queue = RequestQueue(clock, max_depth=max_depth, workers=workers,
                         policy=policy, metrics=registry,
                         service_time=service_time)
    return clock, sched, registry, queue


def test_rejects_bad_configuration():
    clock = Clock()
    with pytest.raises(ValueError):
        RequestQueue(clock, policy="lifo")
    with pytest.raises(ValueError):
        RequestQueue(clock, max_depth=0)
    with pytest.raises(ValueError):
        RequestQueue(clock, workers=0)


def test_submit_bounded_by_max_depth():
    _clock, _sched, registry, queue = make(max_depth=2)
    assert queue.submit("c1", lambda: None) is True
    assert queue.submit("c1", lambda: None) is True
    assert queue.submit("c1", lambda: None) is False
    assert queue.depth == 2
    assert queue.peak_depth == 2
    assert registry.counter("server.queue.admitted").value == 2
    assert registry.counter("server.queue.rejected").value == 1
    assert registry.gauge("server.queue.depth").value == 2


def test_workers_drain_fifo_in_arrival_order():
    _clock, sched, _registry, queue = make()
    queue.start(sched, name="q")
    served = []
    for index in range(3):
        queue.submit("c1", lambda i=index: served.append(i))
    pump_all(sched)
    assert served == [0, 1, 2]
    assert queue.depth == 0


def test_fair_share_round_robins_across_connections():
    """An aggressive connection cannot monopolize the workers: service
    alternates across connections no matter the arrival pattern."""
    _clock, sched, _registry, queue = make(max_depth=16, policy=FAIR_SHARE)
    queue.start(sched, name="q")
    served = []
    for index in range(6):                    # greedy client first
        queue.submit("greedy", lambda i=index: served.append(("g", i)))
    queue.submit("meek", lambda: served.append(("m", 0)))
    queue.submit("meek", lambda: served.append(("m", 1)))
    pump_all(sched)
    # Round-robin: g0 m0 g1 m1 g2 g3 g4 g5 — the meek connection's two
    # requests are served 2nd and 4th, not behind all six greedy ones.
    assert served.index(("m", 0)) == 1
    assert served.index(("m", 1)) == 3
    assert [entry for entry in served if entry[0] == "g"] == [
        ("g", i) for i in range(6)
    ]


def test_fifo_makes_the_meek_wait():
    """The contrast case: under FIFO the greedy client's backlog is
    served first."""
    _clock, sched, _registry, queue = make(max_depth=16, policy=FIFO)
    queue.start(sched, name="q")
    served = []
    for index in range(6):
        queue.submit("greedy", lambda i=index: served.append(("g", i)))
    queue.submit("meek", lambda: served.append(("m", 0)))
    pump_all(sched)
    assert served.index(("m", 0)) == 6


def test_service_time_occupies_workers():
    clock, sched, _registry, queue = make(workers=2, service_time=0.010)
    queue.start(sched, name="q")
    done = []
    for index in range(4):
        queue.submit("c", lambda i=index: done.append((i, clock.now)))
    pump_all(sched)
    # 4 requests, 2 workers, 10 ms each: two service waves.
    assert [t for _i, t in done] == pytest.approx([0.01, 0.01, 0.02, 0.02])


def test_wait_histogram_measures_queueing_delay():
    clock, sched, registry, queue = make(workers=1, service_time=0.005)
    queue.start(sched, name="q")
    queue.submit("c", lambda: None)
    queue.submit("c", lambda: None)
    pump_all(sched)
    snapshot = registry.histogram("server.queue.wait_seconds").snapshot()
    assert snapshot["count"] == 2
    # First request waited 0; second waited one service time.
    assert snapshot["sum"] == pytest.approx(0.005)


def test_worker_survives_failing_jobs():
    _clock, sched, registry, queue = make()
    queue.start(sched, name="q")
    served = []
    queue.submit("c", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
    queue.submit("c", lambda: served.append("after"))
    pump_all(sched)
    assert served == ["after"]
    assert registry.counter("server.queue.job_failures").value == 1


def test_workers_wake_for_requests_submitted_later():
    clock, sched, _registry, queue = make()
    queue.start(sched, name="q")
    served = []

    def late_submitter():
        yield Sleep(1.0)
        queue.submit("c", lambda: served.append(clock.now))

    sched.spawn(late_submitter())
    pump_all(sched)
    assert served == pytest.approx([1.0])


def test_clear_drops_waiting_requests():
    _clock, sched, registry, queue = make(max_depth=8)
    queue.start(sched, name="q")
    served = []
    for index in range(3):
        queue.submit("c", lambda i=index: served.append(i))
    assert queue.clear() == 3
    pump_all(sched)
    assert served == []
    assert queue.depth == 0
    assert registry.gauge("server.queue.depth").value == 0
    # The queue still works after a clear (server restart).
    queue.submit("c", lambda: served.append("fresh"))
    pump_all(sched)
    assert served == ["fresh"]


def test_fair_share_clear_resets_rotation():
    _clock, sched, _registry, queue = make(max_depth=8, policy=FAIR_SHARE)
    queue.start(sched, name="q")
    queue.submit("a", lambda: None)
    queue.submit("b", lambda: None)
    queue.clear()
    served = []
    queue.submit("c", lambda: served.append("c"))
    pump_all(sched)
    assert served == ["c"]


def test_crash_with_deep_fair_share_queue_leaves_no_stale_state():
    """Regression: a server crash (clear) mid-rotation must drop every
    piece of volatile accounting — per-connection queues, the rotation,
    the depth gauge AND its peak — or a restarted server inherits
    phantom connections and a watermark from its previous life."""
    _clock, sched, registry, queue = make(max_depth=16, policy=FAIR_SHARE)
    for conn in ("a", "b", "c"):
        for index in range(3):
            queue.submit(conn, lambda: None)
    # Serve a couple so the rotation is mid-cycle when the crash hits.
    assert queue._pop() is not None
    assert queue._pop() is not None
    assert queue.peak_depth == 9
    assert queue.clear() == 7
    assert queue.depth == 0
    assert queue._per_conn == {}
    assert len(queue._rotation) == 0
    assert queue.peak_depth == 0              # watermark died with the box
    snapshot = registry.gauge("server.queue.depth").snapshot()
    assert snapshot == {"type": "gauge", "value": 0.0, "peak": 0.0}
    # The reborn server serves fresh connections and re-tracks its peak
    # from scratch.
    queue.start(sched, name="q")
    served = []
    queue.submit("d", lambda: served.append("d"))
    assert queue.peak_depth == 1
    pump_all(sched)
    assert served == ["d"]


def test_fair_share_drain_drops_empty_connection_queues():
    """Serving a connection dry removes its per-conn entry, so conn_ids
    from long-gone dials do not accumulate on a long-lived server."""
    _clock, sched, _registry, queue = make(max_depth=16, policy=FAIR_SHARE)
    queue.start(sched, name="q")
    queue.submit("a", lambda: None)
    queue.submit("a", lambda: None)
    queue.submit("b", lambda: None)
    pump_all(sched)
    assert queue.depth == 0
    assert queue._per_conn == {}
    assert len(queue._rotation) == 0


def test_set_max_depth_retunes_admission_at_runtime():
    _clock, _sched, registry, queue = make(max_depth=2)
    assert queue.submit("c", lambda: None)
    assert queue.submit("c", lambda: None)
    assert not queue.submit("c", lambda: None)
    # Raise the bound: the very next submit is admitted.
    assert queue.set_max_depth(4) == 4
    assert registry.gauge("server.queue.max_depth").value == 4
    assert queue.submit("c", lambda: None)
    # Shrink below the current depth: existing requests stay queued,
    # new ones are rejected until the queue drains under the bound.
    assert queue.set_max_depth(1) == 1
    assert queue.depth == 3
    assert not queue.submit("c", lambda: None)
    # Values below 1 clamp (an admission bound of 0 would deadlock).
    assert queue.set_max_depth(0) == 1
    assert queue.set_max_depth(-7) == 1


# -- bind: the peer dispatcher hook -----------------------------------------


class FakeHeader:
    def __init__(self, prog, proc, xid=1):
        self.prog = prog
        self.proc = proc
        self.xid = xid


class FakePeer:
    """Records what bind()'s dispatcher did with each call."""

    def __init__(self):
        self.dispatcher = None
        self.served = []
        self.busied = []

    def serve_queued(self, header, body, request):
        self.served.append((header.prog, header.proc))

    def send_busy(self, xid):
        self.busied.append(xid)


def test_bind_queues_calls_and_busies_overflow():
    _clock, sched, _registry, queue = make(max_depth=1)
    queue.start(sched)
    peer = FakePeer()
    queue.bind(peer, "conn")
    peer.dispatcher(FakeHeader(100, 1, xid=1), b"", None)
    peer.dispatcher(FakeHeader(100, 2, xid=2), b"", None)   # over depth
    assert peer.served == []                # nothing ran inline
    assert peer.busied == [2]
    pump_all(sched)
    assert peer.served == [(100, 1)]


def test_bind_absorbs_retransmits_of_queued_calls():
    """Regression: a client whose retransmit timer is shorter than the
    queue wait re-sends a call that is still *waiting*.  The peer's
    duplicate-reply cache only covers completed calls, so without the
    dedup set the retransmit would be admitted as a second queue entry
    and executed twice — breaking at-most-once under load."""
    _clock, sched, registry, queue = make(max_depth=4)
    queue.start(sched)
    peer = FakePeer()
    queue.bind(peer, "conn")
    peer.dispatcher(FakeHeader(100, 1, xid=5), b"", None)
    peer.dispatcher(FakeHeader(100, 1, xid=5), b"", None)   # retransmit
    peer.dispatcher(FakeHeader(100, 1, xid=5), b"", None)   # and again
    assert registry.counter(
        "server.queue.retransmits_absorbed").value == 2
    assert peer.busied == []                # absorbed, not rejected
    pump_all(sched)
    assert peer.served == [(100, 1)]        # executed exactly once
    # The dedup slot is per *queued* call: once executed, responsibility
    # passes to the peer's duplicate-reply cache, and a later call
    # reusing the xid (a new connection epoch) queues normally.
    peer.dispatcher(FakeHeader(100, 1, xid=5), b"", None)
    pump_all(sched)
    assert peer.served == [(100, 1), (100, 1)]


def test_clear_also_drops_retransmit_dedup_state():
    _clock, sched, _registry, queue = make(max_depth=4)
    queue.start(sched)
    peer = FakePeer()
    queue.bind(peer, "conn")
    peer.dispatcher(FakeHeader(100, 1, xid=9), b"", None)
    assert queue.clear() == 1
    assert queue._queued_xids == set()
    # A post-restart retransmit of the dropped call is a fresh request.
    peer.dispatcher(FakeHeader(100, 1, xid=9), b"", None)
    pump_all(sched)
    assert peer.served == [(100, 1)]


def test_bind_inline_calls_bypass_the_queue():
    """The REKEY deadlock regression: a channel-state call listed in
    inline_calls must execute during record delivery — even with the
    queue full and every worker wedged — because the worker may itself
    be blocked on the desynchronized client that sent it."""
    _clock, _sched, registry, queue = make(max_depth=1)
    # No workers pumping: the queue is wedged on purpose.
    peer = FakePeer()
    queue.bind(peer, "conn", inline_calls=frozenset({(344440, 3)}))
    assert queue.submit("other", lambda: None)      # fill the queue
    peer.dispatcher(FakeHeader(344440, 3, xid=7), b"", None)
    assert peer.served == [(344440, 3)]             # served immediately
    assert peer.busied == []
    assert registry.counter("server.queue.admitted").value == 1
    # A non-listed call still goes through admission (and is rejected).
    peer.dispatcher(FakeHeader(100, 1, xid=8), b"", None)
    assert peer.busied == [8]
