"""Tests for Blowfish (repro.crypto.blowfish), whose tables are derived
from pi computed at runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.blowfish import Blowfish, pi_hex_digits

# Published Blowfish test vectors: (key, plaintext, ciphertext).
VECTORS = [
    ("0000000000000000", "0000000000000000", "4ef997456198dd78"),
    ("ffffffffffffffff", "ffffffffffffffff", "51866fd5b85ecb8a"),
    ("3000000000000000", "1000000000000001", "7d856f9a613063f2"),
    ("1111111111111111", "1111111111111111", "2466dd878b963c9d"),
    ("0123456789abcdef", "1111111111111111", "61f9c3802281b096"),
    ("fedcba9876543210", "0123456789abcdef", "0aceab0fc6a0a28d"),
    ("7ca110454a1a6e57", "01a1d6d039776742", "59c68245eb05282b"),
]


@pytest.mark.parametrize("key,plain,cipher", VECTORS)
def test_published_vectors(key, plain, cipher):
    bf = Blowfish(bytes.fromhex(key))
    assert bf.encrypt_block(bytes.fromhex(plain)).hex() == cipher
    assert bf.decrypt_block(bytes.fromhex(cipher)).hex() == plain


def test_pi_digits_known_prefix():
    # pi = 3.243f6a8885a308d31319... in hex
    assert pi_hex_digits(24) == "243f6a8885a308d313198a2e"


def test_variable_key_lengths():
    # Variable-length key vectors from Schneier's distribution.
    key = bytes.fromhex("f0e1d2c3b4a59687786a")  # 10 bytes
    bf = Blowfish(key)
    plain = bytes.fromhex("fedcba9876543210")
    assert bf.decrypt_block(bf.encrypt_block(plain)) == plain


@pytest.mark.parametrize("key", [b"", b"x" * 57])
def test_key_length_limits(key):
    with pytest.raises(ValueError):
        Blowfish(key)


def test_block_size_enforced():
    bf = Blowfish(b"key")
    with pytest.raises(ValueError):
        bf.encrypt_block(b"short")
    with pytest.raises(ValueError):
        bf.decrypt_block(b"way too long!")


def test_cbc_roundtrip_and_chaining():
    bf = Blowfish(b"cbc key")
    iv = b"12345678"
    data = b"A" * 32
    ct = bf.encrypt_cbc(data, iv)
    assert bf.decrypt_cbc(ct, iv) == data
    # identical plaintext blocks must produce distinct ciphertext blocks
    blocks = [ct[i : i + 8] for i in range(0, len(ct), 8)]
    assert len(set(blocks)) == len(blocks)


def test_cbc_iv_sensitivity():
    bf = Blowfish(b"cbc key")
    data = b"B" * 16
    assert bf.encrypt_cbc(data, b"11111111") != bf.encrypt_cbc(data, b"22222222")


def test_cbc_rejects_bad_sizes():
    bf = Blowfish(b"k")
    with pytest.raises(ValueError):
        bf.encrypt_cbc(b"odd length", b"12345678")
    with pytest.raises(ValueError):
        bf.encrypt_cbc(b"8bytes!!", b"short")


@given(st.binary(min_size=1, max_size=56), st.binary(min_size=8, max_size=8))
@settings(max_examples=40)
def test_block_roundtrip_property(key, block):
    bf = Blowfish(key)
    assert bf.decrypt_block(bf.encrypt_block(block)) == block


@given(
    st.binary(min_size=1, max_size=56),
    st.binary(min_size=8, max_size=8),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=25)
def test_cbc_roundtrip_property(key, iv, nblocks):
    bf = Blowfish(key)
    data = bytes(range(8)) * nblocks
    assert bf.decrypt_cbc(bf.encrypt_cbc(data, iv), iv) == data
