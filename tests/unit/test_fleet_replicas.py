"""Replica-tier tests: latency-ranked selection, demotion, tamper bans.

All transports are fakes — a "mirror" is a dict of blobs plus a
simulated fetch latency — so these tests pin the *policy*: who gets
selected, who gets sidelined vs banned, and the invariant that a
tampering mirror never gets a wrong byte past the set.
"""

import random

import pytest

from repro.core.backoff import BackoffPolicy
from repro.core.readonly import ReadOnlyError
from repro.crypto.sha1 import sha1
from repro.fleet.replicas import (
    Replica,
    ReplicaMisconductError,
    ReplicaSet,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.clock import Clock

BLOB = b"the signed namespace blob"
DIGEST = sha1(BLOB)
ROOT = object()  # ReplicaSet passes GETROOT results through untouched


class FakeMirror:
    """A scriptable mirror: latency, payload overrides, dial failures."""

    def __init__(self, clock, latency=0.001, blob=BLOB,
                 dial_errors=0, missing=False):
        self.clock = clock
        self.latency = latency
        self.blob = blob
        self.dial_errors = dial_errors
        self.missing = missing
        self.dials = 0

    def dial(self):
        self.dials += 1
        if self.dial_errors > 0:
            self.dial_errors -= 1
            raise ConnectionError("mirror down")

        def fetch_root():
            self.clock.advance(self.latency)
            return ROOT

        def fetch_data(digest):
            self.clock.advance(self.latency)
            if self.missing:
                return None
            return self.blob

        return fetch_root, fetch_data


def make_set(mirrors, seed=7, **kwargs):
    clock = mirrors[0].clock
    replicas = [Replica(name, mirror.dial, clock)
                for name, mirror in mirrors_named(mirrors)]
    metrics = MetricsRegistry(clock=clock)
    replica_set = ReplicaSet(replicas, clock, random.Random(seed),
                             metrics=metrics, **kwargs)
    return replica_set, metrics


def mirrors_named(mirrors):
    return [(f"m{index}", mirror) for index, mirror in enumerate(mirrors)]


def test_empty_set_rejected():
    with pytest.raises(ValueError):
        ReplicaSet([], Clock(), random.Random(1))


def test_selection_prefers_measured_latency():
    clock = Clock()
    fast = FakeMirror(clock, latency=0.001)
    slow = FakeMirror(clock, latency=0.100)
    replica_set, _ = make_set([fast, slow])
    # Unprobed replicas rank first, so both get measured once.
    for _ in range(2):
        assert replica_set.fetch_data(DIGEST) == BLOB
    assert fast.dials == 1 and slow.dials == 1
    # From here on the fast mirror wins every selection.
    chosen = replica_set.select()
    assert chosen.name == "m0"
    before = fast.dials
    for _ in range(5):
        assert replica_set.fetch_data(DIGEST) == BLOB
    assert fast.dials == before  # same connection, same mirror
    assert slow.dials == 1


def test_tampering_mirror_banned_never_a_wrong_byte():
    clock = Clock()
    evil = FakeMirror(clock, latency=0.001,
                      blob=bytes([BLOB[0] ^ 1]) + BLOB[1:])
    honest = FakeMirror(clock, latency=0.050)
    replica_set, metrics = make_set([evil, honest])
    # m0 (evil) is probed first and answers fastest — and is banned the
    # moment its blob fails the digest check, without the caller ever
    # seeing the corrupt bytes.
    assert replica_set.fetch_data(DIGEST) == BLOB
    stats = {entry["name"]: entry for entry in replica_set.stats()}
    assert stats["m0"]["banned"] and not stats["m1"]["banned"]
    assert metrics.counter("fleet.replica.corrupt_blobs").value == 1
    assert metrics.counter("fleet.replica.bans").value == 1
    assert metrics.counter("fleet.replica.failovers").value == 1
    # A ban is permanent: time does not rehabilitate a tamperer.
    clock.advance(3600.0)
    assert not replica_set.replicas[0].usable()
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert evil.dials == 1


def test_missing_blob_sidelines_not_bans():
    clock = Clock()
    stale = FakeMirror(clock, latency=0.001, missing=True)
    full = FakeMirror(clock, latency=0.050)
    replica_set, metrics = make_set([stale, full])
    assert replica_set.fetch_data(DIGEST) == BLOB
    stats = {entry["name"]: entry for entry in replica_set.stats()}
    assert not stats["m0"]["banned"]  # stale, not malicious
    assert not stats["m0"]["usable"]  # but in cooldown right now
    assert metrics.counter("fleet.replica.demotions").value == 1
    assert metrics.counter("fleet.replica.bans").value == 0
    clock.advance(2.0)  # cooldown elapses
    assert replica_set.replicas[0].usable()


def test_dead_mirror_waits_out_cooldown_under_backoff():
    clock = Clock()
    flaky = FakeMirror(clock, latency=0.001, dial_errors=1)
    replica_set, metrics = make_set([flaky])
    # The only replica fails to dial, gets sidelined, and the set backs
    # off (advancing the clock) until the cooldown expires — then the
    # redial succeeds and the fetch completes.
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert flaky.dials == 2
    assert metrics.counter("fleet.replica.backoff_waits").value > 0
    assert clock.now >= 1.0  # waited at least the cooldown


def test_all_mirrors_banned_is_an_error_not_garbage():
    clock = Clock()
    evil = FakeMirror(clock, blob=b"x" * len(BLOB))
    replica_set, metrics = make_set([evil])
    with pytest.raises(ReadOnlyError):
        replica_set.fetch_data(DIGEST)
    assert metrics.counter("fleet.replica.corrupt_blobs").value == 1
    # Still dead after any amount of time: bans are permanent.
    clock.advance(3600.0)
    with pytest.raises(ReadOnlyError):
        replica_set.fetch_data(DIGEST)


def test_misconduct_on_dial_is_banned():
    clock = Clock()
    honest = FakeMirror(clock, latency=0.050)

    def impostor_dial():
        raise ReplicaMisconductError("key does not hash to HostID")

    replicas = [Replica("m0", impostor_dial, clock),
                Replica("m1", honest.dial, clock)]
    metrics = MetricsRegistry(clock=clock)
    replica_set = ReplicaSet(replicas, clock, random.Random(3),
                             metrics=metrics)
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert replicas[0].banned
    assert metrics.counter("fleet.replica.bans").value == 1


def test_fetch_root_fails_over_past_dead_mirror():
    clock = Clock()
    dead = FakeMirror(clock, latency=0.001, dial_errors=99)
    alive = FakeMirror(clock, latency=0.050)
    replica_set, metrics = make_set([dead, alive])
    assert replica_set.fetch_root() is ROOT
    assert metrics.counter("fleet.replica.failovers").value == 1
    assert metrics.counter("fleet.replica.fetches").value == 1


def test_cooldown_expiry_reprobes_a_sidelined_mirror():
    clock = Clock()
    flaky = FakeMirror(clock, latency=0.001, dial_errors=1)
    steady = FakeMirror(clock, latency=0.050)
    replica_set, _metrics = make_set([flaky, steady])
    # m0 is probed first, fails its dial, and is sidelined; the fetch
    # fails over to m1.
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert flaky.dials == 1
    assert not replica_set.replicas[0].usable()
    # Inside the cooldown the set leaves the sidelined mirror alone.
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert flaky.dials == 1
    # Cooldown elapses: the mirror is re-probed with a *fresh* dial —
    # and, being fast, wins the ranking back.
    clock.advance(1.5)
    assert replica_set.replicas[0].usable()
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert flaky.dials == 2
    assert replica_set.select().name == "m0"


def test_ewma_reranks_when_the_fast_mirror_degrades():
    clock = Clock()
    fickle = FakeMirror(clock, latency=0.001)
    steady = FakeMirror(clock, latency=0.050)
    replica_set, _ = make_set([fickle, steady])
    for _ in range(2):                        # probe both once
        assert replica_set.fetch_data(DIGEST) == BLOB
    assert replica_set.select().name == "m0"
    # The fast mirror turns slow; its EWMA absorbs the new latency and
    # selection flips to the mirror whose old measurement now wins.
    fickle.latency = 0.500
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert replica_set.select().name == "m1"
    # ...and recovery is symmetric: once it is fast again, fetches it
    # does serve (none right now) would pull its EWMA back down.  The
    # demoted rank persists until re-measured — ranking uses memory,
    # not wishes.
    fickle.latency = 0.001
    assert replica_set.select().name == "m1"


def test_steering_bias_flips_selection_between_healthy_mirrors():
    clock = Clock()
    fast = FakeMirror(clock, latency=0.001)
    slow = FakeMirror(clock, latency=0.050)
    replica_set, metrics = make_set([fast, slow])
    for _ in range(2):
        assert replica_set.fetch_data(DIGEST) == BLOB
    assert replica_set.select().name == "m0"
    # Bias the fast mirror away (control plane saw its shard breaching).
    replica_set.set_steering_bias("m0", 1.0)
    assert replica_set.select().name == "m1"
    assert metrics.counter("fleet.replica.steering_updates").value == 1
    # Same bias again is a no-op, not another update.
    replica_set.set_steering_bias("m0", 1.0)
    assert metrics.counter("fleet.replica.steering_updates").value == 1
    replica_set.clear_steering()
    assert replica_set.select().name == "m0"
    with pytest.raises(KeyError):
        replica_set.set_steering_bias("nonesuch", 0.5)


def test_steering_bias_composes_with_permanent_ban():
    clock = Clock()
    evil = FakeMirror(clock, latency=0.001,
                      blob=bytes([BLOB[0] ^ 1]) + BLOB[1:])
    honest = FakeMirror(clock, latency=0.050)
    replica_set, _ = make_set([evil, honest])
    assert replica_set.fetch_data(DIGEST) == BLOB   # bans m0
    assert replica_set.replicas[0].banned
    # No amount of bias in the banned mirror's favor (or against the
    # honest one) re-admits it: bias tunes ranking among usable
    # replicas, it never overrides the health machinery.
    replica_set.set_steering_bias("m1", 100.0)
    assert replica_set.select().name == "m1"
    assert replica_set.fetch_data(DIGEST) == BLOB
    assert evil.dials == 1                    # never dialed again


def test_backoff_policy_is_shared_and_jittered():
    """Two sets with different seeds do not advance in lockstep while
    waiting out the same outage — the thundering-herd satellite, seen
    from the replica tier."""
    waits = []
    for seed in (1, 2):
        clock = Clock()
        down = FakeMirror(clock, dial_errors=2)
        replicas = [Replica("m0", down.dial, clock)]
        replica_set = ReplicaSet(
            replicas, clock, random.Random(seed),
            backoff=BackoffPolicy(),  # jittered by default
        )
        assert replica_set.fetch_data(DIGEST) == BLOB
        waits.append(clock.now)
    assert waits[0] != waits[1]
