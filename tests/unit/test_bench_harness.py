"""Sanity coverage of the benchmark harness itself (tiny workloads), so
`pytest tests/` exercises the figure-generation code paths."""

import pytest

from repro.bench import (
    ALL_CONFIGS,
    LOCAL,
    NFS_UDP,
    SFS,
    make_setup,
)
from repro.bench.compile import run_compile
from repro.bench.mab import PHASES, make_source_tree, run_mab
from repro.bench.micro import measure_latency, measure_throughput
from repro.bench.sprite import run_large_file, run_small_file
from repro.bench.timing import Measurement, Timer, format_table
from repro.sim.clock import Clock


@pytest.mark.parametrize("name", ALL_CONFIGS)
def test_every_setup_builds_and_works(name):
    setup = make_setup(name)
    proc = setup.process
    proc.write_file(f"{setup.workdir}/probe", b"alive")
    assert proc.read_file(f"{setup.workdir}/probe") == b"alive"


def test_unknown_setup_rejected():
    with pytest.raises(ValueError):
        make_setup("VMS")


def test_timer_accumulates_cpu_and_sim():
    clock = Clock()
    timer = Timer(clock)

    def work():
        clock.advance(0.5)

    measurement = timer.measure("phase", work)
    assert measurement.sim_seconds == pytest.approx(0.5)
    assert measurement.cpu_seconds >= 0
    assert measurement.total >= 0.5
    assert timer.total() == measurement.total
    assert timer.by_name()["phase"] is measurement
    assert "phase" in str(measurement)


def test_format_table_alignment():
    table = format_table("Title", ["a", "bbbb"], [("x", 1.5), ("yy", 20.0)])
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert "1.500" in table and "20.000" in table
    # all data lines equally wide columns
    assert lines[2].startswith("-")


def test_micro_benchmarks_tiny():
    setup = make_setup(NFS_UDP)
    latency = measure_latency(setup, ops=5)
    assert latency > 0
    rate = measure_throughput(setup, size=64 * 1024)
    assert rate > 0


def test_mab_tiny_runs_all_phases():
    setup = make_setup(LOCAL)
    result = run_mab(setup)
    assert list(result.phases) == PHASES
    assert result.total > 0


def test_mab_source_tree_is_deterministic():
    import random

    t1 = make_source_tree(random.Random(3))
    t2 = make_source_tree(random.Random(3))
    assert t1 == t2
    assert len(t1) == 70


def test_compile_tiny():
    setup = make_setup(LOCAL)
    result = run_compile(setup)
    assert result.seconds > 0
    # the build artifacts exist on the measured fs
    assert setup.process.stat(f"{setup.workdir}/kernel/kernel.bin").size > 0


def test_sprite_small_tiny():
    setup = make_setup(LOCAL)
    result = run_small_file(setup, count=10)
    assert set(result.phases) == {"create", "read", "unlink"}
    # after unlink the directory is empty
    assert setup.process.readdir(f"{setup.workdir}/small") == []


def test_sprite_large_tiny():
    setup = make_setup(LOCAL)
    result = run_large_file(setup, size=64 * 1024)
    assert len(result.phases) == 5
    assert setup.process.stat(f"{setup.workdir}/large").size == 64 * 1024


def test_sfs_setup_uses_secure_channel():
    setup = make_setup(SFS)
    proc = setup.process
    proc.write_file(f"{setup.workdir}/f", b"x")
    client = next(iter(setup.world.clients.values()))
    assert client.sfscd._mounts, "SFS setup must actually mount over SFS"


def test_bench_main_module_quick(capsys):
    from repro.bench.__main__ import main

    assert main(["fig5", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "SFS" in out
