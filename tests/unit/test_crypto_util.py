"""Tests for repro.crypto.util, especially the SFS base-32 encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.util import (
    SFS_BASE32_ALPHABET,
    bytes_to_int,
    constant_time_eq,
    int_to_bytes,
    sfs_base32_decode,
    sfs_base32_encode,
    xor_bytes,
)


def test_alphabet_omits_confusable_characters():
    # "the encoding omits the characters 'l', '1', '0' and 'o'"
    assert len(SFS_BASE32_ALPHABET) == 32
    for forbidden in "l1Oo0":
        assert forbidden not in SFS_BASE32_ALPHABET
    assert len(set(SFS_BASE32_ALPHABET)) == 32


def test_hostid_encodes_to_32_chars():
    hostid = bytes(range(20))
    text = sfs_base32_encode(hostid)
    assert len(text) == 32
    assert sfs_base32_decode(text, 20) == hostid


def test_empty():
    assert sfs_base32_encode(b"") == ""
    assert sfs_base32_decode("", 0) == b""


def test_known_encoding():
    assert sfs_base32_encode(b"\x00") == "22"  # 8 bits -> 2 digits of zero
    assert sfs_base32_encode(b"\xff") == "9z"[0:0] or True
    # deterministic, distinct values
    assert sfs_base32_encode(b"\x01") != sfs_base32_encode(b"\x02")


def test_decode_rejects_bad_characters():
    with pytest.raises(ValueError):
        sfs_base32_decode("l234", 2)
    with pytest.raises(ValueError):
        sfs_base32_decode("0000", 2)


def test_decode_rejects_overflow():
    text = sfs_base32_encode(b"\xff\xff")
    with pytest.raises(ValueError):
        sfs_base32_decode(text, 1)


@given(st.binary(max_size=64))
def test_base32_roundtrip(data):
    assert sfs_base32_decode(sfs_base32_encode(data), len(data)) == data


@given(st.binary(max_size=64))
def test_base32_inferred_length_roundtrip(data):
    text = sfs_base32_encode(data)
    assert sfs_base32_decode(text) == data


def test_int_bytes_roundtrip():
    for value in (0, 1, 255, 256, 2**64, 2**160 - 1):
        assert bytes_to_int(int_to_bytes(value)) == value


def test_int_to_bytes_fixed_length():
    assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"
    assert int_to_bytes(0) == b"\x00"
    with pytest.raises(ValueError):
        int_to_bytes(-1)


def test_constant_time_eq():
    assert constant_time_eq(b"abc", b"abc")
    assert not constant_time_eq(b"abc", b"abd")
    assert not constant_time_eq(b"abc", b"ab")


def test_xor_bytes():
    assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
    with pytest.raises(ValueError):
        xor_bytes(b"a", b"ab")
