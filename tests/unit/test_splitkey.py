"""Tests for split private keys (repro.core.splitkey)."""

import random

import pytest

from repro.core import proto
from repro.core.agent import AgentRefused
from repro.core.splitkey import (
    KeyHalfServer,
    SplitKeyAgent,
    SplitKeyError,
    SplitKeyPair,
)
from repro.crypto.rabin import generate_key
from repro.crypto.sha1 import sha1


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(111))


@pytest.fixture
def rng():
    return random.Random(112)


def test_split_and_combine(key, rng):
    pair = SplitKeyPair.split(key, rng)
    assert pair.combine() == key


def test_shares_individually_reveal_nothing(key, rng):
    pair = SplitKeyPair.split(key, rng)
    raw = key.to_bytes()
    assert pair.agent_share != raw
    assert pair.server_share != raw
    # XOR split: each share alone is uniform noise w.r.t. the key.
    assert raw not in pair.agent_share
    assert raw not in pair.server_share


def test_refresh_changes_shares_not_key(key, rng):
    pair = SplitKeyPair.split(key, rng)
    old_agent, old_server = pair.agent_share, pair.server_share
    pair.refresh(rng)
    assert pair.agent_share != old_agent
    assert pair.server_share != old_server
    assert pair.combine() == key
    # A stale agent share no longer pairs with the fresh server share.
    stale = SplitKeyPair(old_agent, pair.server_share, len(old_agent))
    try:
        combined = stale.combine()
        assert combined != key
    except Exception:
        pass  # deserialization of noise may simply fail — also fine


def test_split_key_agent_signs_valid_requests(key, rng):
    pair = SplitKeyPair.split(key, rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    agent = SplitKeyAgent("alice", pair.agent_share, half_server)
    blob = agent.sign_request(b"authinfo", 7)
    msg = proto.AuthMsg.unpack(blob)
    assert msg.public_key == key.public_key.to_bytes()
    assert key.public_key.verify(msg.signed_req, msg.signature)
    signed = proto.SignedAuthReq.unpack(msg.signed_req)
    assert signed.authid == sha1(b"authinfo")
    assert half_server.requests == 1
    assert agent.audit_log[-1].operation == "sign-split"


def test_half_server_revocation_disables_agent(key, rng):
    pair = SplitKeyPair.split(key, rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    agent = SplitKeyAgent("alice", pair.agent_share, half_server)
    agent.sign_request(b"x", 1)
    half_server.drop(pair.agent_share)
    with pytest.raises(AgentRefused):
        agent.sign_request(b"x", 2)


def test_wrong_share_gets_nothing(key, rng):
    pair = SplitKeyPair.split(key, rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    with pytest.raises(SplitKeyError):
        half_server.fetch(b"not the agent share")


def test_split_key_agent_single_key(key, rng):
    pair = SplitKeyPair.split(key, rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    agent = SplitKeyAgent("alice", pair.agent_share, half_server)
    assert agent.key_count == 1
    with pytest.raises(AgentRefused):
        agent.sign_request(b"x", 1, key_index=1)


def test_split_key_agent_in_full_stack(key, rng):
    """The client master uses a SplitKeyAgent exactly like a normal one."""
    from repro.fs import pathops
    from repro.fs.memfs import Cred
    from repro.kernel.world import World

    world = World(seed=113)
    server = world.add_server("split.example.com")
    path = server.export_fs()
    record = server.authserver.add_account("alice", 1000, 100)
    record.public_key_bytes = key.public_key.to_bytes()
    server.authserver.local_db.add_user(record)
    home = pathops.mkdirs(server.fs, "/home/alice")
    server.fs.setattr(home.ino, Cred(0, 0), uid=1000, gid=100)

    pair = SplitKeyPair.split(key, world.rng)
    half_server = KeyHalfServer()
    half_server.store(pair)
    agent = SplitKeyAgent("alice", pair.agent_share, half_server)

    client = world.add_client("laptop")
    client.sfscd.attach_agent(1000, agent)
    proc = client.process(uid=1000)
    proc.write_file(f"{path}/home/alice/f", b"signed by a split key")
    assert proc.stat(f"{path}/home/alice/f").uid == 1000
    assert half_server.requests >= 1
