"""Tests for self-certifying pathnames (repro.core.pathnames)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pathnames import (
    HOSTID_B32_LEN,
    PathnameError,
    SelfCertifyingPath,
    compute_hostid,
    hostid_from_text,
    hostid_to_text,
    make_path,
    parse_mount_name,
    parse_path,
)
from repro.crypto.rabin import generate_key
from repro.crypto.sha1 import SHA1


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(77)).public_key


def test_hostid_is_20_bytes(key):
    hostid = compute_hostid("example.com", key)
    assert len(hostid) == 20


def test_hostid_binds_location_and_key(key):
    other_key = generate_key(768, random.Random(78)).public_key
    base = compute_hostid("example.com", key)
    assert compute_hostid("other.com", key) != base
    assert compute_hostid("example.com", other_key) != base


def test_hostid_input_is_duplicated(key):
    """Paper footnote 1: the SHA-1 input is deliberately fed twice."""
    hostid = compute_hostid("example.com", key)
    location = "example.com"
    key_bytes = key.to_bytes()
    part = (
        b"HostInfo"
        + len(location).to_bytes(4, "big") + location.encode()
        + len(key_bytes).to_bytes(4, "big") + key_bytes
    )
    assert SHA1(part + part).digest() == hostid
    assert SHA1(part).digest() != hostid


def test_invalid_location_rejected(key):
    for bad in ("", "-leading-dash", "spaces here", "slash/inside", "colon:in"):
        with pytest.raises(PathnameError):
            compute_hostid(bad, key)


def test_hostid_text_roundtrip(key):
    hostid = compute_hostid("example.com", key)
    text = hostid_to_text(hostid)
    assert len(text) == HOSTID_B32_LEN
    assert hostid_from_text(text) == hostid


def test_hostid_text_validation():
    with pytest.raises(PathnameError):
        hostid_to_text(b"short")
    with pytest.raises(PathnameError):
        hostid_from_text("tooshort")
    with pytest.raises(PathnameError):
        hostid_from_text("l" * 32)  # 'l' is not in the alphabet


def test_make_and_parse_path(key):
    path = make_path("sfs.lcs.mit.edu", key, "home/alice")
    text = str(path)
    assert text.startswith("/sfs/sfs.lcs.mit.edu:")
    parsed = parse_path(text)
    assert parsed == path
    assert parsed.location == "sfs.lcs.mit.edu"
    assert parsed.rest == "home/alice"


def test_path_without_rest(key):
    path = make_path("example.com", key)
    assert str(path) == f"/sfs/{path.mount_name}"
    assert parse_path(str(path)).rest == ""


def test_matches_key(key):
    other = generate_key(768, random.Random(79)).public_key
    path = make_path("example.com", key)
    assert path.matches_key(key)
    assert not path.matches_key(other)


def test_parse_mount_name(key):
    path = make_path("a.example.com", key)
    parsed = parse_mount_name(path.mount_name)
    assert parsed is not None
    assert parsed.location == "a.example.com"
    assert parsed.hostid == path.hostid


@pytest.mark.parametrize("name", [
    "no-colon-here",
    ":missinglocation22222222222222222222222222222222",
    "host:tooshort",
    "host:" + "l" * 32,       # invalid character
    "bad host:" + "2" * 32,   # invalid location
])
def test_parse_mount_name_rejects(name):
    assert parse_mount_name(name) is None


@pytest.mark.parametrize("path", [
    "/not/sfs/path",
    "/sfs",
    "/sfs/",
    "/sfs/plainname",
    "/sfs/host:short",
])
def test_parse_path_rejects(path):
    with pytest.raises(PathnameError):
        parse_path(path)


def test_two_keys_same_host_distinct_paths(key):
    """The AFS-conundrum property: disagreeing about a server's key means
    accessing different names (section 5.1)."""
    other = generate_key(768, random.Random(80)).public_key
    p1 = make_path("shared.example.com", key)
    p2 = make_path("shared.example.com", other)
    assert p1.mount_name != p2.mount_name


@given(st.binary(min_size=20, max_size=20))
def test_hostid_text_roundtrip_property(hostid):
    assert hostid_from_text(hostid_to_text(hostid)) == hostid


@given(st.from_regex(r"[a-z][a-z0-9.\-]{0,30}", fullmatch=True),
       st.binary(min_size=20, max_size=20),
       st.from_regex(r"([a-z0-9]{1,8}(/[a-z0-9]{1,8}){0,3})?", fullmatch=True))
@settings(max_examples=50)
def test_parse_format_roundtrip_property(location, hostid, rest):
    path = SelfCertifyingPath(location, hostid, rest)
    assert parse_path(str(path)) == path
