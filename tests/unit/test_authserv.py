"""Tests for the authserver (repro.core.authserv) and figure 4's
validation logic."""

import random

import pytest

from repro.core import proto
from repro.core.authserv import (
    AuthServer,
    KeyDatabase,
    PrivateRecord,
    SrpSession,
    UserRecord,
)
from repro.core.sealing import unseal
from repro.crypto.rabin import generate_key
from repro.crypto.sha1 import sha1
from repro.crypto.srp import SRPClient, Verifier


@pytest.fixture(scope="module")
def user_key():
    return generate_key(768, random.Random(70))


@pytest.fixture
def authserver():
    return AuthServer(random.Random(71), pathname="/sfs/host:" + "2" * 32)


def make_authmsg(key, authid: bytes, seqno: int) -> bytes:
    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SignedAuthReq", authid=authid, seqno=seqno,
    ))
    return proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=key.public_key.to_bytes(),
        signature=key.sign(signed),
    ))


def register_user(authserver, key, user="alice", uid=1000):
    record = UserRecord(user, uid, 100, (), key.public_key.to_bytes())
    authserver.local_db.add_user(record)
    return record


def test_validate_accepts_good_request(authserver, user_key):
    register_user(authserver, user_key)
    authid = sha1(b"some-authinfo")
    msg = make_authmsg(user_key, authid, 7)
    record = authserver.validate(authid, 7, msg)
    assert record is not None
    assert record.user == "alice"
    assert record.uid == 1000
    assert authserver.failed_validations == 0


def test_validate_rejects_unknown_key(authserver, user_key):
    authid = sha1(b"info")
    msg = make_authmsg(user_key, authid, 1)
    assert authserver.validate(authid, 1, msg) is None
    assert authserver.failed_validations == 1


def test_validate_rejects_wrong_authid(authserver, user_key):
    register_user(authserver, user_key)
    msg = make_authmsg(user_key, sha1(b"session A"), 1)
    assert authserver.validate(sha1(b"session B"), 1, msg) is None


def test_validate_rejects_wrong_seqno(authserver, user_key):
    register_user(authserver, user_key)
    authid = sha1(b"info")
    msg = make_authmsg(user_key, authid, 5)
    assert authserver.validate(authid, 6, msg) is None


def test_validate_rejects_bad_signature(authserver, user_key):
    register_user(authserver, user_key)
    authid = sha1(b"info")
    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SignedAuthReq", authid=authid, seqno=1,
    ))
    msg = proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=user_key.public_key.to_bytes(),
        signature=bytes(user_key.public_key.size + 1),
    ))
    assert authserver.validate(authid, 1, msg) is None


def test_validate_rejects_garbage(authserver):
    assert authserver.validate(sha1(b"x"), 1, b"not an authmsg") is None


def test_validate_rejects_wrong_req_type(authserver, user_key):
    register_user(authserver, user_key)
    authid = sha1(b"info")
    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SomethingElse", authid=authid, seqno=1,
    ))
    msg = proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=user_key.public_key.to_bytes(),
        signature=user_key.sign(signed),
    ))
    assert authserver.validate(authid, 1, msg) is None


def test_multiple_databases_searched(authserver, user_key):
    remote = KeyDatabase("imported", writable=False)
    remote.add_user(UserRecord("bob", 2000, 100, (),
                               user_key.public_key.to_bytes()))
    authserver.attach_database(remote)
    authid = sha1(b"info")
    msg = make_authmsg(user_key, authid, 3)
    record = authserver.validate(authid, 3, msg)
    assert record is not None and record.user == "bob"


def test_public_copy_strips_private_data(user_key):
    db = KeyDatabase("local")
    record = UserRecord("alice", 1000, 100, (), user_key.public_key.to_bytes())
    private = PrivateRecord(b"salt", 12345, 2, b"encrypted-key")
    db.add_user(record, private)
    public = db.public_copy()
    assert public.lookup_user("alice") is not None
    assert public.lookup_private("alice") is None
    assert not public.writable


def test_register_requires_unix_password(authserver, user_key):
    authserver._unix_passwords["newbie"] = "pw123"
    args = proto.RegisterArgs.make(
        user="newbie", public_key=user_key.public_key.to_bytes(),
        srp_salt=b"s" * 16, srp_verifier=b"\x01\x02", srp_cost=2,
        encrypted_privkey=b"blob", unix_password="pw123",
    )
    decoded = proto.RegisterArgs.unpack(proto.RegisterArgs.pack(args))
    assert authserver.register(decoded)
    assert authserver.local_db.lookup_user("newbie") is not None
    bad = proto.RegisterArgs.unpack(proto.RegisterArgs.pack(
        proto.RegisterArgs.make(
            user="stranger", public_key=b"k", srp_salt=b"s",
            srp_verifier=b"v", srp_cost=2, encrypted_privkey=b"",
            unix_password="wrong",
        )
    ))
    assert not authserver.register(bad)


def test_existing_user_can_update_keys(authserver, user_key):
    register_user(authserver, user_key)
    new_key = generate_key(768, random.Random(72))
    args = proto.RegisterArgs.unpack(proto.RegisterArgs.pack(
        proto.RegisterArgs.make(
            user="alice", public_key=new_key.public_key.to_bytes(),
            srp_salt=b"s" * 16, srp_verifier=b"\x05", srp_cost=2,
            encrypted_privkey=b"ek", unix_password="",
        )
    ))
    assert authserver.register(args)
    updated = authserver.local_db.lookup_user("alice")
    assert updated.public_key_bytes == new_key.public_key.to_bytes()
    assert updated.uid == 1000  # credentials preserved


def test_srp_session_flow(authserver):
    rng = random.Random(73)
    verifier = Verifier.from_password("alice", b"pw", rng, cost=2)
    record = UserRecord("alice", 1000, 100, (), b"")
    private = PrivateRecord(verifier.salt, verifier.v, verifier.cost,
                            b"sealed-key-blob")
    authserver.local_db.add_user(record, private)

    client = SRPClient("alice", b"pw", rng)
    session = SrpSession(authserver)
    challenge = session.init("alice", client.start())
    assert challenge is not None
    salt, B, cost = challenge
    m1 = client.process_challenge(salt, B, cost)
    outcome = session.confirm(m1)
    assert outcome is not None
    m2, sealed = outcome
    client.verify_server(m2)
    payload = proto.SrpPayload.unpack(
        unseal(client.session_key, sealed, label=b"srp-payload")
    )
    assert payload.pathname == authserver.pathname
    assert payload.encrypted_privkey == b"sealed-key-blob"


def test_srp_session_unknown_user(authserver):
    session = SrpSession(authserver)
    assert session.init("ghost", 12345) is None
    assert session.confirm(b"\x00" * 20) is None


def test_srp_session_wrong_password(authserver):
    rng = random.Random(74)
    verifier = Verifier.from_password("alice", b"right", rng, cost=2)
    authserver.local_db.add_user(
        UserRecord("alice", 1000, 100, (), b""),
        PrivateRecord(verifier.salt, verifier.v, verifier.cost, b""),
    )
    client = SRPClient("alice", b"wrong", rng)
    session = SrpSession(authserver)
    salt, B, cost = session.init("alice", client.start())
    m1 = client.process_challenge(salt, B, cost)
    assert session.confirm(m1) is None
