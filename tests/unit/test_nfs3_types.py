"""Codec roundtrip tests for the NFS3 protocol types."""

import pytest
from hypothesis import given, strategies as st

from repro.nfs3 import const, types
from repro.nfs3.types import LinkedList, sattr
from repro.rpc.xdr import Record, Struct, UInt32


def roundtrip(codec, value):
    return codec.unpack(codec.pack(value))


def make_time(seconds=0):
    return types.NfsTime.make(seconds=seconds, nseconds=0)


def make_fattr(**overrides):
    base = dict(
        type=const.NF3REG, mode=0o644, nlink=1, uid=0, gid=0,
        size=123, used=4096,
        rdev=types.SpecData.make(major=0, minor=0),
        fsid=7, fileid=42,
        atime=make_time(1), mtime=make_time(2), ctime=make_time(3),
    )
    base.update(overrides)
    return types.Fattr.make(**base)


def test_fattr_roundtrip():
    attrs = make_fattr()
    decoded = roundtrip(types.Fattr, attrs)
    assert decoded == attrs


def test_sattr_builder():
    record = sattr(mode=0o600, size=10)
    decoded = roundtrip(types.Sattr, record)
    assert decoded.mode == 0o600
    assert decoded.size == 10
    assert decoded.uid is None
    assert decoded.atime == (types.DONT_CHANGE, None)


def test_sattr_time_arms():
    record = sattr(mtime=99)
    decoded = roundtrip(types.Sattr, record)
    disc, value = decoded.mtime
    assert disc == types.SET_TO_CLIENT_TIME
    assert value.seconds == 99


def test_linked_list_roundtrip():
    item = Struct("item", [("n", UInt32)])
    codec = LinkedList(item)
    values = [item.make(n=i) for i in range(5)]
    assert roundtrip(codec, values) == values
    assert roundtrip(codec, []) == []


def test_readdir_result_roundtrip():
    ok_body = Record(
        dir_attributes=make_fattr(type=const.NF3DIR),
        cookieverf=b"\x00" * 8,
        entries=[
            types.DirEntry.make(fileid=1, name=".", cookie=1),
            types.DirEntry.make(fileid=5, name="file", cookie=2),
        ],
        eof=True,
    )
    disc, decoded = roundtrip(types.ReaddirRes, (const.NFS3_OK, ok_body))
    assert disc == const.NFS3_OK
    assert [e.name for e in decoded.entries] == [".", "file"]
    assert decoded.eof is True


def test_result_failure_arm():
    fail_body = Record(dir_attributes=None)
    disc, decoded = roundtrip(
        types.ReaddirRes, (const.NFS3ERR_NOTDIR, fail_body)
    )
    assert disc == const.NFS3ERR_NOTDIR
    assert decoded.dir_attributes is None


def test_write_args_roundtrip():
    args = types.WriteArgs.make(
        file=b"H" * 16, offset=4096, count=3,
        stable=const.FILE_SYNC, data=b"abc",
    )
    decoded = roundtrip(types.WriteArgs, args)
    assert decoded.data == b"abc"
    assert decoded.stable == const.FILE_SYNC


def test_create_how_arms():
    unchecked = (const.UNCHECKED, sattr(mode=0o644))
    exclusive = (const.EXCLUSIVE, b"\x01" * 8)
    args1 = types.CreateArgs.make(
        where=types.DirOpArgs.make(dir=b"D" * 16, name="f"), how=unchecked
    )
    args2 = types.CreateArgs.make(
        where=types.DirOpArgs.make(dir=b"D" * 16, name="f"), how=exclusive
    )
    decoded1 = roundtrip(types.CreateArgs, args1)
    decoded2 = roundtrip(types.CreateArgs, args2)
    assert decoded1.how[0] == const.UNCHECKED
    assert decoded2.how == exclusive


def test_every_proc_has_codecs():
    # All NFS3 procedures except MKNOD (11), which this stack does not
    # implement (device nodes have no meaning on the simulated machines),
    # plus the vectored READV/WRITEV extension procs (22/23).
    expected = (set(range(22)) - {const.NFSPROC3_MKNOD}) | {
        const.NFSPROC3_READV, const.NFSPROC3_WRITEV,
    }
    assert set(types.PROC_CODECS) == expected
    for proc, (arg_codec, res_codec) in types.PROC_CODECS.items():
        assert arg_codec is not None and res_codec is not None


@given(st.integers(min_value=0, max_value=2**64 - 1),
       st.text(min_size=1, max_size=20).filter(lambda s: "\x00" not in s))
def test_direntry_roundtrip_property(fileid, name):
    entry = types.DirEntry.make(fileid=fileid, name=name, cookie=1)
    assert roundtrip(types.DirEntry, entry) == entry


def test_wcc_data_roundtrip():
    wcc = types.WccData.make(
        before=types.WccAttr.make(size=1, mtime=make_time(1), ctime=make_time(2)),
        after=make_fattr(),
    )
    decoded = roundtrip(types.WccData, wcc)
    assert decoded.before.size == 1
    assert decoded.after.fileid == 42
    empty = types.WccData.make(before=None, after=None)
    assert roundtrip(types.WccData, empty) == empty
