"""Tests for SFS key negotiation (repro.core.keyneg)."""

import random

import pytest

from repro.core.keyneg import (
    EphemeralKeyCache,
    KeyNegotiationError,
    decrypt_key_halves,
    derive_session_keys,
    encrypt_key_halves,
    make_key_halves,
)
from repro.crypto.rabin import generate_key


@pytest.fixture(scope="module")
def server_key():
    return generate_key(768, random.Random(50))


@pytest.fixture(scope="module")
def client_key():
    return generate_key(640, random.Random(51))


def test_full_negotiation_both_sides_agree(server_key, client_key):
    rng = random.Random(1)
    kc1, kc2 = make_key_halves(rng)
    ks1, ks2 = make_key_halves(rng)
    # client -> server
    sealed_c = encrypt_key_halves(server_key.public_key, kc1, kc2, rng)
    got_kc1, got_kc2 = decrypt_key_halves(server_key, sealed_c)
    assert (got_kc1, got_kc2) == (kc1, kc2)
    # server -> client
    sealed_s = encrypt_key_halves(client_key.public_key, ks1, ks2, rng)
    got_ks1, got_ks2 = decrypt_key_halves(client_key, sealed_s)
    assert (got_ks1, got_ks2) == (ks1, ks2)
    client_view = derive_session_keys(
        server_key.public_key, client_key.public_key, kc1, kc2, ks1, ks2
    )
    server_view = derive_session_keys(
        server_key.public_key, client_key.public_key,
        got_kc1, got_kc2, ks1, ks2,
    )
    assert client_view == server_view
    assert len(client_view.kcs) == 20
    assert client_view.kcs != client_view.ksc


def test_session_id_binds_both_directions(server_key, client_key):
    rng = random.Random(2)
    kc1, kc2 = make_key_halves(rng)
    ks1, ks2 = make_key_halves(rng)
    keys = derive_session_keys(
        server_key.public_key, client_key.public_key, kc1, kc2, ks1, ks2
    )
    other = derive_session_keys(
        server_key.public_key, client_key.public_key, kc2, kc1, ks1, ks2
    )
    assert keys.session_id != other.session_id
    assert len(keys.session_id) == 20


def test_any_half_changes_keys(server_key, client_key):
    rng = random.Random(3)
    halves = [make_key_halves(rng)[0] for _ in range(4)]
    base = derive_session_keys(
        server_key.public_key, client_key.public_key, *halves
    )
    for index in range(4):
        mutated = list(halves)
        mutated[index] = bytes(20 - 4)[:16] or b"\x00" * 16
        mutated[index] = bytes(b ^ 1 for b in halves[index])
        changed = derive_session_keys(
            server_key.public_key, client_key.public_key, *mutated
        )
        assert (changed.kcs, changed.ksc) != (base.kcs, base.ksc)


def test_bad_ciphertext_rejected(server_key):
    with pytest.raises(KeyNegotiationError):
        decrypt_key_halves(server_key, bytes(server_key.public_key.size))


def test_wrong_length_plaintext_rejected(server_key):
    rng = random.Random(4)
    sealed = server_key.public_key.encrypt(b"too short", rng)
    with pytest.raises(KeyNegotiationError):
        decrypt_key_halves(server_key, sealed)


def test_key_halves_are_16_bytes_and_random():
    rng = random.Random(5)
    h1, h2 = make_key_halves(rng)
    assert len(h1) == len(h2) == 16
    assert h1 != h2


def test_ephemeral_cache_rotates():
    rng = random.Random(6)
    cache = EphemeralKeyCache(rng, max_uses=3, bits=640)
    first = cache.current()
    assert cache.current() is first
    assert cache.current() is first
    rotated = cache.current()  # 4th use triggers regeneration
    assert rotated is not first
    assert rotated.n != first.n
