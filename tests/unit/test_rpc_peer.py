"""Tests for the symmetric RPC peer (repro.rpc.peer)."""

import pytest

from repro.rpc.peer import Program, RpcPeer, RpcRejected, RpcTimeout
from repro.rpc.xdr import String, Struct, UInt32, VOID
from repro.sim.clock import Clock
from repro.sim.network import DropAdversary, NetworkParameters, link_pair

ADD_ARGS = Struct("AddArgs", [("x", UInt32), ("y", UInt32)])


def make_pair(adversary=None):
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    return RpcPeer(a, "client"), RpcPeer(b, "server"), clock


def demo_program():
    program = Program("demo", 400000, 2)

    @program.proc(1, "ADD", ADD_ARGS, UInt32)
    def add(args, ctx):
        return (args.x + args.y) & 0xFFFFFFFF

    @program.proc(2, "FAIL", VOID, VOID)
    def fail(args, ctx):
        raise RuntimeError("handler exploded")

    return program


def test_basic_call():
    client, server, _clock = make_pair()
    server.register(demo_program())
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 2, "y": 3}, UInt32) == 5
    assert client.calls_sent == 1
    assert server.calls_served == 1


def test_null_procedure_automatic():
    client, server, _clock = make_pair()
    server.register(demo_program())
    assert client.call(400000, 2, 0, VOID, None, VOID) is None


def test_unknown_program_rejected():
    client, server, _clock = make_pair()
    with pytest.raises(RpcRejected) as excinfo:
        client.call(999999, 1, 1, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 1  # PROG_UNAVAIL


def test_version_mismatch_reports_range():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 9, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)
    assert excinfo.value.header.accept_stat == 2  # PROG_MISMATCH
    assert excinfo.value.header.mismatch_low == 2
    assert excinfo.value.header.mismatch_high == 2


def test_unknown_procedure_rejected():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 77, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 3  # PROC_UNAVAIL


def test_garbage_args_rejected():
    client, server, _clock = make_pair()
    server.register(demo_program())
    # Send a string where a struct of two uint32s is expected.
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 1, String(), "not numbers", UInt32)
    assert excinfo.value.header.accept_stat == 4  # GARBAGE_ARGS


def test_handler_exception_becomes_system_err():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 2, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 5  # SYSTEM_ERR


def test_dropped_record_times_out():
    client, server, _clock = make_pair(DropAdversary(target_index=0))
    server.register(demo_program())
    with pytest.raises(RpcTimeout):
        client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32)
    # The connection still works for the next call.
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32) == 3


def test_bidirectional_calls():
    client, server, _clock = make_pair()
    server.register(demo_program())
    notifications = []
    callback = Program("cb", 500000, 1)

    @callback.proc(1, "NOTIFY", String(), VOID)
    def notify(args, ctx):
        notifications.append(args)

    client.register(callback)
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32) == 2
    server.call(500000, 1, 1, String(), "cache invalid", VOID)
    assert notifications == ["cache invalid"]


def test_callback_during_handler():
    """A server handler can call back into the client mid-request."""
    client, server, _clock = make_pair()
    program = Program("nested", 600000, 1)
    callback = Program("cb", 600001, 1)
    events = []

    @callback.proc(1, "PING", VOID, VOID)
    def ping(args, ctx):
        events.append("ping")

    client.register(callback)

    @program.proc(1, "TRIGGER", VOID, VOID)
    def trigger(args, ctx):
        ctx.peer.call(600001, 1, 1, VOID, None, VOID)
        events.append("handled")

    server.register(program)
    client.call(600000, 1, 1, VOID, None, VOID)
    assert events == ["ping", "handled"]


def test_unparseable_record_dropped():
    client, server, _clock = make_pair()
    server.register(demo_program())
    traces = []
    server.trace = traces.append
    # Inject raw garbage directly at the server's receive handler.
    server._on_record(b"\x00garbage")
    assert any("unparseable" in t for t in traces)
    # Still serves normal calls.
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 4, "y": 4}, UInt32) == 8


def test_trace_pretty_prints_traffic():
    client, server, _clock = make_pair()
    server.register(demo_program())
    log = []
    client.trace = log.append
    server.trace = log.append
    client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32)
    assert any("ADD" in line for line in log)
    assert any("call" in line for line in log)


def test_unregister():
    client, server, _clock = make_pair()
    server.register(demo_program())
    server.unregister(400000, 2)
    with pytest.raises(RpcRejected):
        client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)


# --- retransmission and at-most-once semantics --------------------------------

def test_retry_policy_recovers_dropped_call():
    from repro.rpc.peer import RetryPolicy

    client, server, clock = make_pair(DropAdversary(target_index=0))
    server.register(demo_program())
    client.retry_policy = RetryPolicy()
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32) == 3
    assert client.retransmissions == 1
    assert clock.now > 0  # backoff charged to the virtual clock


def test_retry_policy_recovers_dropped_reply_without_reexecution():
    from repro.rpc.peer import RetryPolicy

    # Drop the server's first reply: the retransmitted call must be
    # answered from the duplicate cache, not executed twice.
    executions = []
    client, server, _clock = make_pair(
        DropAdversary(target_index=0, direction="b->a")
    )
    program = Program("count", 410000, 1)

    @program.proc(1, "BUMP", UInt32, UInt32)
    def bump(args, ctx):
        executions.append(args)
        return len(executions)

    server.register(program)
    client.retry_policy = RetryPolicy()
    assert client.call(410000, 1, 1, UInt32, 7, UInt32) == 1
    assert executions == [7]  # exactly once
    assert server.duplicates_served == 1


def test_duplicate_cache_is_keyed_by_request_bytes():
    # An xid collision with *different* request bytes is a new call, not
    # a retransmission: it must execute, not replay a stale reply.
    client, server, _clock = make_pair()
    server.register(demo_program())
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32) == 2
    client._xid = 0  # force the next call to reuse xid 1
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 5, "y": 5}, UInt32) == 10
    assert server.duplicates_served == 0


def test_reply_cache_evicts_oldest():
    client, server, _clock = make_pair()
    server.register(demo_program())
    server.reply_cache_size = 4
    for value in range(8):
        client.call(400000, 2, 1, ADD_ARGS, {"x": value, "y": 0}, UInt32)
    assert len(server._reply_cache) == 4


def test_eviction_degrades_at_most_once_to_at_least_once():
    """Once a reply-cache entry is evicted, a replayed request is
    indistinguishable from a new call and re-executes — the documented
    degradation of NFS-style duplicate caches.  The eviction counter is
    what makes the silent part of that trade-off observable."""
    from repro.obs.registry import MetricsRegistry

    class RecordingAdversary:
        def __init__(self):
            self.sent = []

        def process(self, data, direction):
            if direction == "a->b":
                self.sent.append(data)
            return [data]

    clock = Clock()
    registry = MetricsRegistry(clock)
    recorder = RecordingAdversary()
    a, b = link_pair(clock, NetworkParameters.instant(), recorder,
                     metrics=registry)
    client, server = RpcPeer(a, "client"), RpcPeer(b, "server")
    executions = []
    program = Program("count", 410000, 1)

    @program.proc(1, "BUMP", UInt32, UInt32)
    def bump(args, ctx):
        executions.append(args)
        return len(executions)

    server.register(program)
    server.reply_cache_size = 2
    assert client.call(410000, 1, 1, UInt32, 7, UInt32) == 1
    first_request = recorder.sent[-1]
    # Replay while the entry is still cached: served without execution.
    server._on_record(first_request)
    assert executions == [7]
    assert server.duplicates_served == 1
    # Two newer calls push the first entry out of the size-2 cache.
    for value in range(2):
        client.call(410000, 1, 1, UInt32, value, UInt32)
    assert server.reply_cache_evictions >= 1
    snapshot = registry.snapshot()["metrics"]
    assert (snapshot["rpc.reply_cache_evictions"]
            == server.reply_cache_evictions)
    # Replay after eviction: the server has forgotten it and runs the
    # handler again (the reply goes to an unknown xid and is dropped).
    before = len(executions)
    server._on_record(first_request)
    assert len(executions) == before + 1
    assert server.duplicates_served == 1  # not a cache hit this time


def test_recovery_hook_runs_from_second_retry():
    from repro.rpc.peer import RetryPolicy

    hook_calls = []

    class DropFirstThree(DropAdversary):
        def __init__(self):
            super().__init__(target_index=-1)
            self._count = 0

        def process(self, data, direction):
            if direction == "a->b":
                self._count += 1
                if self._count <= 3:
                    return []
            return [data]

    client, server, _clock = make_pair(DropFirstThree())
    server.register(demo_program())
    client.retry_policy = RetryPolicy()
    client.recovery_hook = lambda: hook_calls.append(True) or True
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 2, "y": 2}, UInt32) == 4
    # attempt 0 dropped, attempt 1 (plain retransmit) dropped, attempts
    # 2 and 3 run the hook first:
    assert len(hook_calls) >= 1
    assert client.recoveries >= 1


def test_no_waiter_distinguished_from_timeout():
    from repro.rpc.peer import RpcNoWaiter

    class DeafPipe:
        """A transport that never delivers anything."""

        def send(self, data): ...

        def on_receive(self, handler): ...

    client = RpcPeer(DeafPipe(), "client")
    with pytest.raises(RpcNoWaiter):
        client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)
    # Deliberately NOT an RpcTimeout: retry/redial logic that treats
    # timeouts as packet loss must never mask a wiring bug by retrying
    # on a transport that can never deliver a reply.
    assert not issubclass(RpcNoWaiter, RpcTimeout)
    from repro.rpc.peer import RpcError
    assert issubclass(RpcNoWaiter, RpcError)


# -- one-way calls ----------------------------------------------------------


def test_call_oneway_executes_and_drops_the_reply():
    """Fire-and-forget: the handler runs, the reply comes back to an
    xid nobody is waiting for, and the peer drops it silently."""
    client, server, _clock = make_pair()
    server.register(demo_program())
    client.call_oneway(400000, 2, 1, ADD_ARGS, {"x": 2, "y": 3})
    assert client.calls_sent == 1
    assert server.calls_served == 1
    # The stray reply poisoned nothing: a real call still works.
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 4, "y": 4},
                       UInt32) == 8


def test_call_oneway_never_blocks_on_an_unresponsive_peer():
    """The lease-fanout regression: a peer that swallows the call (an
    adversary drops it) must cost the sender nothing — no pumping, no
    retransmission, no timeout to sit through."""
    client, server, _clock = make_pair(DropAdversary(target_index=0))
    server.register(demo_program())
    client.call_oneway(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1})
    assert client.calls_sent == 1
    assert server.calls_served == 0      # dropped on the wire, so be it
    assert client.retransmissions == 0


def test_call_oneway_dead_link_raises_transport_down():
    from repro.rpc.peer import RpcTransportDown

    client, _server, _clock = make_pair()
    client._pipe.close()
    with pytest.raises(RpcTransportDown):
        client.call_oneway(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1})
