"""Tests for the symmetric RPC peer (repro.rpc.peer)."""

import pytest

from repro.rpc.peer import Program, RpcPeer, RpcRejected, RpcTimeout
from repro.rpc.xdr import String, Struct, UInt32, VOID
from repro.sim.clock import Clock
from repro.sim.network import DropAdversary, NetworkParameters, link_pair

ADD_ARGS = Struct("AddArgs", [("x", UInt32), ("y", UInt32)])


def make_pair(adversary=None):
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    return RpcPeer(a, "client"), RpcPeer(b, "server"), clock


def demo_program():
    program = Program("demo", 400000, 2)

    @program.proc(1, "ADD", ADD_ARGS, UInt32)
    def add(args, ctx):
        return (args.x + args.y) & 0xFFFFFFFF

    @program.proc(2, "FAIL", VOID, VOID)
    def fail(args, ctx):
        raise RuntimeError("handler exploded")

    return program


def test_basic_call():
    client, server, _clock = make_pair()
    server.register(demo_program())
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 2, "y": 3}, UInt32) == 5
    assert client.calls_sent == 1
    assert server.calls_served == 1


def test_null_procedure_automatic():
    client, server, _clock = make_pair()
    server.register(demo_program())
    assert client.call(400000, 2, 0, VOID, None, VOID) is None


def test_unknown_program_rejected():
    client, server, _clock = make_pair()
    with pytest.raises(RpcRejected) as excinfo:
        client.call(999999, 1, 1, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 1  # PROG_UNAVAIL


def test_version_mismatch_reports_range():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 9, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)
    assert excinfo.value.header.accept_stat == 2  # PROG_MISMATCH
    assert excinfo.value.header.mismatch_low == 2
    assert excinfo.value.header.mismatch_high == 2


def test_unknown_procedure_rejected():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 77, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 3  # PROC_UNAVAIL


def test_garbage_args_rejected():
    client, server, _clock = make_pair()
    server.register(demo_program())
    # Send a string where a struct of two uint32s is expected.
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 1, String(), "not numbers", UInt32)
    assert excinfo.value.header.accept_stat == 4  # GARBAGE_ARGS


def test_handler_exception_becomes_system_err():
    client, server, _clock = make_pair()
    server.register(demo_program())
    with pytest.raises(RpcRejected) as excinfo:
        client.call(400000, 2, 2, VOID, None, VOID)
    assert excinfo.value.header.accept_stat == 5  # SYSTEM_ERR


def test_dropped_record_times_out():
    client, server, _clock = make_pair(DropAdversary(target_index=0))
    server.register(demo_program())
    with pytest.raises(RpcTimeout):
        client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32)
    # The connection still works for the next call.
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32) == 3


def test_bidirectional_calls():
    client, server, _clock = make_pair()
    server.register(demo_program())
    notifications = []
    callback = Program("cb", 500000, 1)

    @callback.proc(1, "NOTIFY", String(), VOID)
    def notify(args, ctx):
        notifications.append(args)

    client.register(callback)
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32) == 2
    server.call(500000, 1, 1, String(), "cache invalid", VOID)
    assert notifications == ["cache invalid"]


def test_callback_during_handler():
    """A server handler can call back into the client mid-request."""
    client, server, _clock = make_pair()
    program = Program("nested", 600000, 1)
    callback = Program("cb", 600001, 1)
    events = []

    @callback.proc(1, "PING", VOID, VOID)
    def ping(args, ctx):
        events.append("ping")

    client.register(callback)

    @program.proc(1, "TRIGGER", VOID, VOID)
    def trigger(args, ctx):
        ctx.peer.call(600001, 1, 1, VOID, None, VOID)
        events.append("handled")

    server.register(program)
    client.call(600000, 1, 1, VOID, None, VOID)
    assert events == ["ping", "handled"]


def test_unparseable_record_dropped():
    client, server, _clock = make_pair()
    server.register(demo_program())
    traces = []
    server.trace = traces.append
    # Inject raw garbage directly at the server's receive handler.
    server._on_record(b"\x00garbage")
    assert any("unparseable" in t for t in traces)
    # Still serves normal calls.
    assert client.call(400000, 2, 1, ADD_ARGS, {"x": 4, "y": 4}, UInt32) == 8


def test_trace_pretty_prints_traffic():
    client, server, _clock = make_pair()
    server.register(demo_program())
    log = []
    client.trace = log.append
    server.trace = log.append
    client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 2}, UInt32)
    assert any("ADD" in line for line in log)
    assert any("call" in line for line in log)


def test_unregister():
    client, server, _clock = make_pair()
    server.register(demo_program())
    server.unregister(400000, 2)
    with pytest.raises(RpcRejected):
        client.call(400000, 2, 1, ADD_ARGS, {"x": 1, "y": 1}, UInt32)
