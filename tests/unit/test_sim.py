"""Tests for the simulation substrate (repro.sim)."""

import pytest

from repro.sim.clock import Clock, Stopwatch
from repro.sim.disk import Disk, DiskParameters
from repro.sim.network import (
    DropAdversary,
    LinkDown,
    NetworkParameters,
    RecordingAdversary,
    ReplayAdversary,
    TamperAdversary,
    link_pair,
)


# --- clock ---------------------------------------------------------------

def test_clock_accumulates():
    clock = Clock()
    clock.advance(0.5)
    clock.advance(0.25)
    assert clock.now == pytest.approx(0.75)
    clock.reset()
    assert clock.now == 0.0


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        Clock().advance(-1)


def test_stopwatch():
    clock = Clock()
    watch = Stopwatch(clock)
    clock.advance(1.0)
    assert watch.elapsed() == pytest.approx(1.0)
    watch.restart()
    assert watch.elapsed() == 0.0


# --- disk ---------------------------------------------------------------

def test_sequential_reads_cheaper_than_random():
    params = DiskParameters()
    clock_seq = Clock()
    disk_seq = Disk(clock_seq, params)
    disk_seq.read(0, 8192)
    for block in range(1, 20):
        disk_seq.read(block, 8192)

    clock_rand = Clock()
    disk_rand = Disk(clock_rand, params)
    for block in range(0, 200, 10):
        disk_rand.read(block, 8192)
    assert clock_seq.now < clock_rand.now


def test_async_writes_free_sync_writes_cost():
    clock = Clock()
    disk = Disk(clock)
    disk.write(0, 8192, sync=False)
    assert clock.now == 0.0
    disk.write(1, 8192, sync=True)
    assert clock.now > 0.0
    assert disk.writes == 2
    assert disk.syncs == 1


def test_explicit_sync_charges_seek():
    clock = Clock()
    disk = Disk(clock)
    disk.sync(65536)
    assert clock.now > 0.0
    assert disk.syncs == 1


def test_transfer_time_scales_with_size():
    clock = Clock()
    disk = Disk(clock)
    disk.read(0, 8192)
    small = clock.now
    clock2 = Clock()
    disk2 = Disk(clock2)
    disk2.read(0, 8192 * 100)
    assert clock2.now > small


# --- network --------------------------------------------------------------

def test_link_delivers_and_charges():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.lan_100mbit())
    inbox = []
    b.on_receive(inbox.append)
    a.on_receive(lambda data: None)
    a.send(b"hello")
    assert inbox == [b"hello"]
    assert clock.now > 0.0
    assert a.link.messages == 1


def test_instant_network_is_free():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    b.on_receive(lambda data: None)
    a.send(b"x" * 10000)
    assert clock.now == 0.0


def test_closed_link_raises():
    clock = Clock()
    a, b = link_pair(clock)
    b.on_receive(lambda data: None)
    a.close()
    with pytest.raises(LinkDown):
        a.send(b"data")


def test_missing_handler_raises():
    clock = Clock()
    a, _b = link_pair(clock)
    with pytest.raises(LinkDown):
        a.send(b"data")


def test_tamper_adversary_flips_one_bit():
    clock = Clock()
    adversary = TamperAdversary(target_index=1)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"\x00\x00")
    a.send(b"\x00\x00")
    a.send(b"\x00\x00")
    assert inbox[0] == b"\x00\x00"
    assert inbox[1] != b"\x00\x00"
    assert inbox[2] == b"\x00\x00"
    assert adversary.tampered == 1


def test_tamper_adversary_direction_filter():
    clock = Clock()
    adversary = TamperAdversary(target_index=0, direction="b->a")
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    a_in, b_in = [], []
    a.on_receive(a_in.append)
    b.on_receive(b_in.append)
    a.send(b"\x00")          # a->b untouched
    b.send(b"\x00")          # b->a tampered
    assert b_in == [b"\x00"]
    assert a_in[0] != b"\x00"


def test_replay_adversary_duplicates():
    clock = Clock()
    adversary = ReplayAdversary(replay_after=1, replay_index=0)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"one")
    a.send(b"two")
    assert inbox == [b"one", b"two", b"one"]
    assert adversary.replayed == 1


def test_drop_adversary():
    clock = Clock()
    adversary = DropAdversary(target_index=0)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"lost")
    a.send(b"kept")
    assert inbox == [b"kept"]
    assert adversary.dropped == 1


def test_recording_adversary_transcript():
    clock = Clock()
    adversary = RecordingAdversary()
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    b.on_receive(lambda d: None)
    a.on_receive(lambda d: None)
    a.send(b"request")
    b.send(b"response")
    assert adversary.transcript == [
        ("a->b", b"request"), ("b->a", b"response"),
    ]


def test_random_drop_adversary_is_seeded():
    import random

    from repro.sim.network import RandomDropAdversary

    def run(seed):
        adversary = RandomDropAdversary(rate=0.3, rng=random.Random(seed))
        survived = []
        for index in range(50):
            survived.extend(adversary.process(bytes([index]), "a->b"))
        return survived, adversary.dropped

    first, dropped_first = run(42)
    second, dropped_second = run(42)
    assert first == second  # same seed, same loss pattern
    assert dropped_first == dropped_second > 0
    third, _ = run(43)
    assert third != first


def test_burst_loss_adversary_drops_in_runs():
    import random

    from repro.sim.network import BurstLossAdversary

    adversary = BurstLossAdversary(
        enter_rate=0.2, exit_rate=0.3, rng=random.Random(7)
    )
    for index in range(200):
        adversary.process(bytes([index % 256]), "a->b")
    assert adversary.bursts > 0
    # Gilbert-Elliott: more drops than entries into the bad state means
    # losses arrive in runs, not independently.
    assert adversary.dropped > adversary.bursts


def test_bitflip_adversary_corrupts_without_resizing():
    import random

    from repro.sim.network import BitFlipAdversary

    adversary = BitFlipAdversary(rate=1.0, rng=random.Random(3))
    original = b"payload bytes"
    (result,) = adversary.process(original, "a->b")
    assert len(result) == len(original)
    assert result != original
    assert adversary.corrupted == 1


def test_duplicate_adversary_repeats_record():
    import random

    from repro.sim.network import DuplicateAdversary

    adversary = DuplicateAdversary(rate=1.0, rng=random.Random(5))
    assert adversary.process(b"once", "a->b") == [b"once", b"once"]
    assert adversary.duplicated == 1


def test_chaos_adversary_mixes_faults():
    import random

    from repro.sim.network import ChaosAdversary

    adversary = ChaosAdversary(
        random.Random(9), drop_rate=0.2, corrupt_rate=0.2,
        duplicate_rate=0.2,
    )
    out = 0
    for index in range(300):
        out += len(adversary.process(bytes([index % 256]) * 8, "a->b"))
    assert adversary.dropped > 0
    assert adversary.corrupted > 0
    assert adversary.duplicated > 0
    assert adversary.faults == (
        adversary.dropped + adversary.corrupted + adversary.duplicated
    )
    assert out == 300 - adversary.dropped + adversary.duplicated


# --- timer re-entrancy ---------------------------------------------------

def test_callback_advancing_clock_fires_later_timer_exactly_once():
    """A timer callback that itself advances the clock (a device charge
    inside a restart handler) must not re-enter ``_fire_due``: the
    now-due later timer fires once, from the outer drain loop."""
    clock = Clock()
    fired = []

    def first():
        fired.append("first")
        clock.advance(1.0)          # re-entrant advance crosses t=2

    clock.call_at(1.0, first)
    clock.call_at(2.0, lambda: fired.append("second"))
    clock.advance(1.0)
    assert fired == ["first", "second"]
    assert clock.now == pytest.approx(2.0)


def test_callback_registering_already_due_timer_fires_in_same_drain():
    """A callback that registers a timer whose deadline has already
    passed must see it fire during the same advance, not get dropped."""
    clock = Clock()
    fired = []

    def first():
        fired.append("first")
        clock.call_at(clock.now - 0.5, lambda: fired.append("past-due"))

    clock.call_at(1.0, first)
    clock.advance(2.0)
    assert fired == ["first", "past-due"]


def test_chained_reentrant_callbacks_never_double_fire():
    clock = Clock()
    count = {"n": 0}

    def tick():
        count["n"] += 1
        if count["n"] < 5:
            # Each firing both advances (re-entrantly, a no-op drain)
            # and schedules the next tick at an already-passed instant.
            clock.advance(0.0)
            clock.call_at(clock.now, tick)

    clock.call_at(0.5, tick)
    clock.advance(1.0)
    assert count["n"] == 5


def test_ties_fire_in_registration_order_under_reentrancy():
    clock = Clock()
    fired = []
    clock.call_at(1.0, lambda: (fired.append("a"), clock.advance(0.0)))
    clock.call_at(1.0, lambda: fired.append("b"))
    clock.call_at(1.0, lambda: fired.append("c"))
    clock.advance(1.0)
    assert fired == ["a", "b", "c"]


# --- shared-medium contention --------------------------------------------

def test_medium_occupy_accumulates_queueing_delay():
    from repro.sim.network import Medium

    medium = Medium("nic")
    assert medium.occupy(0.0, 0.010) == pytest.approx(0.0)
    # Second record sent at t=0.002 queues behind the first.
    assert medium.occupy(0.002, 0.010) == pytest.approx(0.008)
    assert medium.busy_until == pytest.approx(0.020)
    # After the medium drains, no wait.
    assert medium.occupy(0.5, 0.010) == pytest.approx(0.0)
    assert medium.busy_until == pytest.approx(0.510)


def test_links_sharing_a_medium_contend_for_bandwidth():
    """Two links into the same server NIC: the second sender pays the
    first sender's residual transmission time."""
    from repro.sim.network import Medium, NetworkParameters, link_pair

    clock = Clock()
    params = NetworkParameters(latency=0.001, bandwidth=1000.0,
                               per_message_overhead=0)
    rx = Medium("server:rx")
    seen = []
    a1, b1 = link_pair(clock, params, media={"a->b": rx})
    a2, b2 = link_pair(clock, params, media={"a->b": rx})
    b1.on_receive(seen.append)
    b2.on_receive(seen.append)

    a1.send(b"x" * 100)             # tx = 0.1s, charged as occupancy
    first_done = clock.now
    a2.send(b"y" * 100)             # queues behind link 1's record
    assert first_done == pytest.approx(0.001)       # latency only
    # Second sender: latency + 0.1s residual wait for the medium.
    assert clock.now == pytest.approx(0.001 + 0.001 + 0.1 - 0.001)
    assert len(seen) == 2


def test_link_without_medium_keeps_original_charge():
    """Cut-through equivalence: no medium means the original
    independent latency + serialization charge, bit for bit."""
    from repro.sim.network import NetworkParameters, link_pair

    params = NetworkParameters(latency=0.001, bandwidth=1000.0,
                               per_message_overhead=0)
    plain_clock = Clock()
    a, b = link_pair(plain_clock, params)
    b.on_receive(lambda data: None)
    a.send(b"x" * 100)
    assert plain_clock.now == pytest.approx(0.001 + 0.1)


def test_medium_wait_metrics():
    from repro.obs.registry import MetricsRegistry
    from repro.sim.network import Medium, NetworkParameters, link_pair

    clock = Clock()
    registry = MetricsRegistry()
    params = NetworkParameters(latency=0.0, bandwidth=1000.0,
                               per_message_overhead=0)
    rx = Medium("rx")
    a, b = link_pair(clock, params, metrics=registry, media={"a->b": rx})
    b.on_receive(lambda data: None)
    a.send(b"x" * 100)
    a.send(b"y" * 100)
    assert registry.counter("net.medium_waits").value == 1
    snapshot = registry.histogram("net.medium_wait_seconds").snapshot()
    assert snapshot["count"] == 1
    assert snapshot["sum"] == pytest.approx(0.1)
