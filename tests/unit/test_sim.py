"""Tests for the simulation substrate (repro.sim)."""

import pytest

from repro.sim.clock import Clock, Stopwatch
from repro.sim.disk import Disk, DiskParameters
from repro.sim.network import (
    DropAdversary,
    LinkDown,
    NetworkParameters,
    RecordingAdversary,
    ReplayAdversary,
    TamperAdversary,
    link_pair,
)


# --- clock ---------------------------------------------------------------

def test_clock_accumulates():
    clock = Clock()
    clock.advance(0.5)
    clock.advance(0.25)
    assert clock.now == pytest.approx(0.75)
    clock.reset()
    assert clock.now == 0.0


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        Clock().advance(-1)


def test_stopwatch():
    clock = Clock()
    watch = Stopwatch(clock)
    clock.advance(1.0)
    assert watch.elapsed() == pytest.approx(1.0)
    watch.restart()
    assert watch.elapsed() == 0.0


# --- disk ---------------------------------------------------------------

def test_sequential_reads_cheaper_than_random():
    params = DiskParameters()
    clock_seq = Clock()
    disk_seq = Disk(clock_seq, params)
    disk_seq.read(0, 8192)
    for block in range(1, 20):
        disk_seq.read(block, 8192)

    clock_rand = Clock()
    disk_rand = Disk(clock_rand, params)
    for block in range(0, 200, 10):
        disk_rand.read(block, 8192)
    assert clock_seq.now < clock_rand.now


def test_async_writes_free_sync_writes_cost():
    clock = Clock()
    disk = Disk(clock)
    disk.write(0, 8192, sync=False)
    assert clock.now == 0.0
    disk.write(1, 8192, sync=True)
    assert clock.now > 0.0
    assert disk.writes == 2
    assert disk.syncs == 1


def test_explicit_sync_charges_seek():
    clock = Clock()
    disk = Disk(clock)
    disk.sync(65536)
    assert clock.now > 0.0
    assert disk.syncs == 1


def test_transfer_time_scales_with_size():
    clock = Clock()
    disk = Disk(clock)
    disk.read(0, 8192)
    small = clock.now
    clock2 = Clock()
    disk2 = Disk(clock2)
    disk2.read(0, 8192 * 100)
    assert clock2.now > small


# --- network --------------------------------------------------------------

def test_link_delivers_and_charges():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.lan_100mbit())
    inbox = []
    b.on_receive(inbox.append)
    a.on_receive(lambda data: None)
    a.send(b"hello")
    assert inbox == [b"hello"]
    assert clock.now > 0.0
    assert a.link.messages == 1


def test_instant_network_is_free():
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    b.on_receive(lambda data: None)
    a.send(b"x" * 10000)
    assert clock.now == 0.0


def test_closed_link_raises():
    clock = Clock()
    a, b = link_pair(clock)
    b.on_receive(lambda data: None)
    a.close()
    with pytest.raises(LinkDown):
        a.send(b"data")


def test_missing_handler_raises():
    clock = Clock()
    a, _b = link_pair(clock)
    with pytest.raises(LinkDown):
        a.send(b"data")


def test_tamper_adversary_flips_one_bit():
    clock = Clock()
    adversary = TamperAdversary(target_index=1)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"\x00\x00")
    a.send(b"\x00\x00")
    a.send(b"\x00\x00")
    assert inbox[0] == b"\x00\x00"
    assert inbox[1] != b"\x00\x00"
    assert inbox[2] == b"\x00\x00"
    assert adversary.tampered == 1


def test_tamper_adversary_direction_filter():
    clock = Clock()
    adversary = TamperAdversary(target_index=0, direction="b->a")
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    a_in, b_in = [], []
    a.on_receive(a_in.append)
    b.on_receive(b_in.append)
    a.send(b"\x00")          # a->b untouched
    b.send(b"\x00")          # b->a tampered
    assert b_in == [b"\x00"]
    assert a_in[0] != b"\x00"


def test_replay_adversary_duplicates():
    clock = Clock()
    adversary = ReplayAdversary(replay_after=1, replay_index=0)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"one")
    a.send(b"two")
    assert inbox == [b"one", b"two", b"one"]
    assert adversary.replayed == 1


def test_drop_adversary():
    clock = Clock()
    adversary = DropAdversary(target_index=0)
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    inbox = []
    b.on_receive(inbox.append)
    a.send(b"lost")
    a.send(b"kept")
    assert inbox == [b"kept"]
    assert adversary.dropped == 1


def test_recording_adversary_transcript():
    clock = Clock()
    adversary = RecordingAdversary()
    a, b = link_pair(clock, NetworkParameters.instant(), adversary)
    b.on_receive(lambda d: None)
    a.on_receive(lambda d: None)
    a.send(b"request")
    b.send(b"response")
    assert adversary.transcript == [
        ("a->b", b"request"), ("b->a", b"response"),
    ]


def test_random_drop_adversary_is_seeded():
    import random

    from repro.sim.network import RandomDropAdversary

    def run(seed):
        adversary = RandomDropAdversary(rate=0.3, rng=random.Random(seed))
        survived = []
        for index in range(50):
            survived.extend(adversary.process(bytes([index]), "a->b"))
        return survived, adversary.dropped

    first, dropped_first = run(42)
    second, dropped_second = run(42)
    assert first == second  # same seed, same loss pattern
    assert dropped_first == dropped_second > 0
    third, _ = run(43)
    assert third != first


def test_burst_loss_adversary_drops_in_runs():
    import random

    from repro.sim.network import BurstLossAdversary

    adversary = BurstLossAdversary(
        enter_rate=0.2, exit_rate=0.3, rng=random.Random(7)
    )
    for index in range(200):
        adversary.process(bytes([index % 256]), "a->b")
    assert adversary.bursts > 0
    # Gilbert-Elliott: more drops than entries into the bad state means
    # losses arrive in runs, not independently.
    assert adversary.dropped > adversary.bursts


def test_bitflip_adversary_corrupts_without_resizing():
    import random

    from repro.sim.network import BitFlipAdversary

    adversary = BitFlipAdversary(rate=1.0, rng=random.Random(3))
    original = b"payload bytes"
    (result,) = adversary.process(original, "a->b")
    assert len(result) == len(original)
    assert result != original
    assert adversary.corrupted == 1


def test_duplicate_adversary_repeats_record():
    import random

    from repro.sim.network import DuplicateAdversary

    adversary = DuplicateAdversary(rate=1.0, rng=random.Random(5))
    assert adversary.process(b"once", "a->b") == [b"once", b"once"]
    assert adversary.duplicated == 1


def test_chaos_adversary_mixes_faults():
    import random

    from repro.sim.network import ChaosAdversary

    adversary = ChaosAdversary(
        random.Random(9), drop_rate=0.2, corrupt_rate=0.2,
        duplicate_rate=0.2,
    )
    out = 0
    for index in range(300):
        out += len(adversary.process(bytes([index % 256]) * 8, "a->b"))
    assert adversary.dropped > 0
    assert adversary.corrupted > 0
    assert adversary.duplicated > 0
    assert adversary.faults == (
        adversary.dropped + adversary.corrupted + adversary.duplicated
    )
    assert out == 300 - adversary.dropped + adversary.duplicated
