"""Control-plane unit tests: collector, SLO engine, policy actuators.

All sources here are scripted dicts — no Worlds, no RPC — so these
tests pin the *control* behaviour: heartbeat liveness transitions,
windowed SLO arithmetic, and which breach turns into which actuation.
"""

import pytest

from repro.control.collector import Collector
from repro.control.policy import (
    AimdAdmission,
    LoadShedder,
    PolicyEngine,
    ReplicaSteerer,
)
from repro.control.slo import SloEngine, SloSpec
from repro.obs.registry import Histogram, MetricsRegistry
from repro.sim.clock import Clock


def snapshot_of(**metrics):
    """A minimal registry-snapshot dict from keyword instruments."""
    return {"metrics": dict(metrics), "layers": {}}


def hist_snapshot(values):
    histogram = Histogram("h")
    for value in values:
        histogram.observe(value)
    return histogram.snapshot()


class ScriptedSource:
    """A reporter whose snapshots (or Nones) are played back in order;
    the last entry repeats forever."""

    def __init__(self, *snapshots):
        self.snapshots = list(snapshots)
        self.pulls = 0

    def __call__(self):
        index = min(self.pulls, len(self.snapshots) - 1)
        self.pulls += 1
        return self.snapshots[index]


# -- collector --------------------------------------------------------------


def test_collector_pulls_sources_into_rings():
    clock = Clock()
    collector = Collector(clock, ring_size=4)
    source = ScriptedSource(snapshot_of(ops=1), snapshot_of(ops=3))
    collector.register("s1", source)
    for _ in range(6):
        clock.advance(0.01)
        collector.tick()
    record = collector.sources["s1"]
    assert len(record.ring) == 4          # bounded, old entries fell off
    assert record.latest["metrics"]["ops"] == 3
    assert record.state == "live"
    assert source.pulls == 6


def test_collector_merges_counters_across_sources():
    clock = Clock()
    collector = Collector(clock)
    collector.register("a", ScriptedSource(snapshot_of(ops=2)))
    collector.register("b", ScriptedSource(snapshot_of(ops=5)))
    clock.advance(0.01)
    merged = collector.tick()
    assert merged["metrics"]["ops"] == 7
    assert merged["meta"]["merged_from"] == 2


def test_missed_heartbeats_mark_stale_then_dead():
    clock = Clock()
    collector = Collector(clock, stale_after=2, dead_after=4)
    source = ScriptedSource(snapshot_of(ops=1), None)
    collector.register("s1", source)
    states = []
    for _ in range(5):
        clock.advance(0.01)
        collector.tick()
        states.append(collector.sources["s1"].state)
    assert states == ["live", "live", "stale", "stale", "dead"]
    # While stale the source still contributed its last snapshot; once
    # it is dead (and it is the only source) nothing contributes.
    assert collector.merged is not None      # the stale-era fleet view
    clock.advance(0.01)
    assert collector.tick() is None


def test_dead_source_excluded_until_it_reports_again():
    clock = Clock()
    collector = Collector(clock, stale_after=1, dead_after=2)
    live = ScriptedSource(snapshot_of(live_ops=1))
    flaky = ScriptedSource(snapshot_of(flaky_ops=9), None, None, None,
                           snapshot_of(flaky_ops=10))
    collector.register("live", live)
    collector.register("flaky", flaky)
    merged_history = []
    for _ in range(5):
        clock.advance(0.01)
        merged_history.append(collector.tick())
    # Ticks 3-4 (indices 2,3): flaky is dead, merged view drops it.
    assert "flaky_ops" in merged_history[1]["metrics"]
    assert "flaky_ops" not in merged_history[3]["metrics"]
    # Tick 5: it reported again — live immediately, back in the view.
    assert collector.sources["flaky"].state == "live"
    assert merged_history[4]["metrics"]["flaky_ops"] == 10


def test_crashing_reporter_counts_as_missed_heartbeat():
    clock = Clock()
    registry = MetricsRegistry()
    collector = Collector(clock, metrics=registry, stale_after=2,
                          dead_after=9)

    def exploding():
        raise RuntimeError("reporter bug")

    collector.register("bad", exploding)
    clock.advance(0.01)
    assert collector.tick() is None       # nothing contributed
    assert collector.sources["bad"].state == "live"   # one miss, not stale
    clock.advance(0.01)
    collector.tick()
    assert collector.sources["bad"].state == "stale"
    assert registry.counter("control.collector.missed_beats").value == 2


def test_duplicate_registration_rejected():
    collector = Collector(Clock())
    collector.register("s1", ScriptedSource(snapshot_of()))
    with pytest.raises(ValueError):
        collector.register("s1", ScriptedSource(snapshot_of()))


def test_boot_during_outage_is_a_flap_not_a_death():
    """A crash+restart between heartbeat pulls is alive-with-reset:
    the boot beacon forgives the missed debt and counts a flap, and the
    collector never marches the source toward dead."""
    clock = Clock()
    collector = Collector(clock, stale_after=2, dead_after=4)
    source = ScriptedSource(snapshot_of(ops=1), None)
    collector.register("s1", source)
    clock.advance(0.01)
    collector.tick()                      # one good pull
    for _ in range(2):                    # down at two pull instants
        clock.advance(0.01)
        collector.tick()
    record = collector.sources["s1"]
    assert record.state == "stale"
    assert record.missed == 2
    collector.notify_boot("s1")           # the machine came back
    assert record.state == "live"
    assert record.missed == 0
    assert record.boots == 1
    assert record.flaps == 1
    # The next good pull keeps it live; no further flap is invented.
    source.snapshots[-1] = snapshot_of(ops=2)
    clock.advance(0.01)
    collector.tick()
    assert record.state == "live"
    assert record.flaps == 1


def test_boot_revives_a_source_already_declared_dead():
    clock = Clock()
    collector = Collector(clock, stale_after=1, dead_after=2)
    source = ScriptedSource(snapshot_of(ops=1), None)
    collector.register("s1", source)
    clock.advance(0.01)
    collector.tick()
    for _ in range(3):
        clock.advance(0.01)
        collector.tick()
    record = collector.sources["s1"]
    assert record.state == "dead"
    collector.notify_boot("s1")
    assert record.state == "live"
    assert record.flaps == 1


def test_boot_with_no_missed_debt_is_not_a_flap():
    """A restart the pull schedule never even noticed — boot arrives
    while the source is live with zero misses — counts as a boot but
    not a flap: there was no outage episode to report."""
    clock = Clock()
    collector = Collector(clock)
    collector.register("s1", ScriptedSource(snapshot_of(ops=1)))
    clock.advance(0.01)
    collector.tick()
    collector.notify_boot("s1")
    record = collector.sources["s1"]
    assert record.boots == 1
    assert record.flaps == 0
    assert record.state == "live"


def test_repeated_flaps_accumulate():
    clock = Clock()
    registry = MetricsRegistry()
    collector = Collector(clock, metrics=registry,
                          stale_after=2, dead_after=4)
    source = ScriptedSource(snapshot_of(ops=1), None)
    collector.register("s1", source)
    clock.advance(0.01)
    collector.tick()
    for _ in range(3):                    # flap / flap / flap
        clock.advance(0.01)
        collector.tick()                  # a missed pull each episode
        collector.notify_boot("s1")
    record = collector.sources["s1"]
    assert record.boots == 3
    assert record.flaps == 3
    assert record.state == "live"
    assert registry.counter("control.collector.boots").value == 3
    assert registry.counter("control.collector.flaps").value == 3


def test_boot_for_unknown_source_is_ignored():
    collector = Collector(Clock())
    collector.notify_boot("never-registered")   # must not raise
    assert "never-registered" not in collector.sources


def test_window_spans_multiple_ticks():
    clock = Clock()
    collector = Collector(clock)
    source = ScriptedSource(*[snapshot_of(ops=n) for n in (10, 20, 40, 80)])
    collector.register("s1", source)
    for _ in range(4):
        clock.advance(1.0)
        collector.tick()
    dt, diff = collector.sources["s1"].window()
    assert dt == pytest.approx(1.0)
    assert diff["metrics"]["ops"] == 40          # 80 - 40
    dt, diff = collector.sources["s1"].window(span=3)
    assert dt == pytest.approx(3.0)
    assert diff["metrics"]["ops"] == 70          # 80 - 10
    # Asking for a longer span than the ring holds uses what exists.
    dt, _diff = collector.sources["s1"].window(span=99)
    assert dt == pytest.approx(3.0)


# -- SLO engine -------------------------------------------------------------


def make_collector(clock, **sources):
    collector = Collector(clock)
    for name, source in sources.items():
        collector.register(name, source)
    return collector


def test_slo_spec_validation():
    with pytest.raises(ValueError):
        SloSpec("bad", metric="x", reduce="p42")
    with pytest.raises(ValueError):
        SloSpec("bad", metric="x", op="<")
    with pytest.raises(ValueError):
        SloSpec("bad", metric="x", scope="galaxy")
    with pytest.raises(ValueError):
        SloSpec("bad", metric="x", window=0)


def test_windowed_p99_tracks_current_not_cumulative_behaviour():
    clock = Clock()
    slow_then_fast = ScriptedSource(
        snapshot_of(wait=hist_snapshot([0.5] * 100)),
        snapshot_of(wait=hist_snapshot([0.5] * 100 + [0.001] * 100)),
    )
    collector = make_collector(clock, shard=slow_then_fast)
    engine = SloEngine([SloSpec("wait-p99", metric="wait", reduce="p99",
                                threshold=0.1, scope="sources")])
    clock.advance(1.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["wait-p99"]
    assert status.breached                 # only slow ops so far
    clock.advance(1.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["wait-p99"]
    # The window holds only the 100 fast ops; cumulative p99 would
    # still be ~0.5 (half the observations are the old slow ones).
    assert status.observed < 0.1
    assert not status.breached


def test_sources_scope_reports_worst_and_per_source():
    clock = Clock()
    collector = make_collector(
        clock,
        a=ScriptedSource(snapshot_of(depth=2.0)),
        b=ScriptedSource(snapshot_of(depth=9.0)),
    )
    engine = SloEngine([SloSpec("depth", metric="depth", reduce="value",
                                threshold=5.0, scope="sources")])
    clock.advance(1.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["depth"]
    assert status.observed == 9.0
    assert status.worst_source == "b"
    assert status.per_source == {"a": 2.0, "b": 9.0}
    assert status.breached


def test_rate_reduction_divides_by_window():
    clock = Clock()
    collector = make_collector(
        clock, s=ScriptedSource(snapshot_of(rejected=0),
                                snapshot_of(rejected=50)))
    engine = SloEngine([SloSpec("reject-rate", metric="rejected",
                                reduce="rate", threshold=10.0,
                                scope="merged")])
    clock.advance(2.0)
    collector.tick()
    clock.advance(2.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["reject-rate"]
    assert status.observed == pytest.approx(25.0)   # 50 rejects / 2 s
    assert status.breached


def test_gauge_peak_reduction_and_glob_matching():
    clock = Clock()
    collector = make_collector(clock, s=ScriptedSource(snapshot_of(**{
        "q.a.depth": {"type": "gauge", "value": 1.0, "peak": 7.0},
        "q.b.depth": {"type": "gauge", "value": 2.0, "peak": 3.0},
    })))
    engine = SloEngine([SloSpec("peak-depth", metric="q.*.depth",
                                reduce="peak", threshold=5.0,
                                scope="merged")])
    clock.advance(1.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["peak-depth"]
    assert status.observed == 7.0          # worst across the glob
    assert status.breached


def test_events_record_transitions_not_every_tick():
    clock = Clock()
    source = ScriptedSource(
        snapshot_of(depth=9.0), snapshot_of(depth=9.0),
        snapshot_of(depth=1.0), snapshot_of(depth=1.0),
    )
    collector = make_collector(clock, s=source)
    registry = MetricsRegistry()
    engine = SloEngine([SloSpec("depth", metric="depth", reduce="value",
                                threshold=5.0)], metrics=registry)
    for _ in range(4):
        clock.advance(1.0)
        collector.tick()
        engine.evaluate(collector, clock.now)
    events = [(event["event"], event["slo"]) for event in engine.events]
    assert events == [("breach", "depth"), ("recovered", "depth")]
    assert registry.family(
        "control.slo.breach_ticks").labels("depth").value == 2
    assert registry.gauge("control.slo.depth.healthy").value == 1.0


def test_no_data_is_vacuously_healthy():
    clock = Clock()
    collector = make_collector(clock, s=ScriptedSource(snapshot_of()))
    engine = SloEngine([SloSpec("missing", metric="nope", reduce="value",
                                threshold=1.0)])
    clock.advance(1.0)
    collector.tick()
    status = engine.evaluate(collector, clock.now)["missing"]
    assert status.observed is None
    assert status.healthy and not status.breached


def test_duplicate_slo_name_rejected():
    engine = SloEngine([SloSpec("x", metric="m")])
    with pytest.raises(ValueError):
        engine.add(SloSpec("x", metric="other"))


# -- policy actuators -------------------------------------------------------


class FakeQueue:
    def __init__(self, max_depth):
        self.max_depth = max_depth

    def set_max_depth(self, depth):
        self.max_depth = max(1, int(depth))
        return self.max_depth


def evaluate(specs, collector, clock):
    return SloEngine(specs).evaluate(collector, clock.now)


def breach_statuses(clock, latency_by_source, rejects_by_source):
    """Statuses for one tick from scripted per-source values."""
    sources = {
        name: ScriptedSource(snapshot_of(
            lat=latency_by_source.get(name, 0.0),
            rej={"type": "gauge", "value": rejects_by_source.get(name, 0.0),
                 "peak": rejects_by_source.get(name, 0.0)},
        ))
        for name in set(latency_by_source) | set(rejects_by_source)
    }
    collector = make_collector(clock, **sources)
    clock.advance(1.0)
    collector.tick()
    specs = [
        SloSpec("lat", metric="lat", reduce="value", threshold=0.05,
                scope="sources"),
        SloSpec("rej", metric="rej", reduce="value", threshold=0.5,
                scope="sources"),
    ]
    return evaluate(specs, collector, clock), collector


def test_aimd_additive_increase_on_rejects():
    clock = Clock()
    statuses, collector = breach_statuses(
        clock, latency_by_source={"s1": 0.2}, rejects_by_source={"s1": 5.0})
    queue = FakeQueue(max_depth=4)
    aimd = AimdAdmission({"s1": queue}, latency_slo="lat", reject_slo="rej",
                         increase=2)
    actions = aimd.actuate(clock.now, statuses, collector)
    # Rejecting outranks the latency breach: grow, don't shrink.
    assert queue.max_depth == 6
    assert actions[0].action == "max_depth" and actions[0].value == 6
    # Ceiling (4x initial) caps the growth.
    for _ in range(20):
        aimd.actuate(clock.now, statuses, collector)
    assert queue.max_depth == 16


def test_aimd_multiplicative_decrease_on_latency_only():
    clock = Clock()
    statuses, collector = breach_statuses(
        clock, latency_by_source={"s1": 0.2}, rejects_by_source={"s1": 0.0})
    queue = FakeQueue(max_depth=16)
    aimd = AimdAdmission({"s1": queue}, latency_slo="lat", reject_slo="rej",
                         decrease=0.5, floor=3)
    aimd.actuate(clock.now, statuses, collector)
    assert queue.max_depth == 8
    for _ in range(5):
        aimd.actuate(clock.now, statuses, collector)
    assert queue.max_depth == 3            # floored, not zero


def test_aimd_healthy_shard_untouched():
    clock = Clock()
    statuses, collector = breach_statuses(
        clock, latency_by_source={"s1": 0.01}, rejects_by_source={"s1": 0.0})
    queue = FakeQueue(max_depth=8)
    aimd = AimdAdmission({"s1": queue}, latency_slo="lat", reject_slo="rej")
    assert aimd.actuate(clock.now, statuses, collector) == []
    assert queue.max_depth == 8


def test_load_shedder_fast_attack_slow_release():
    clock = Clock()
    breach, collector = breach_statuses(
        clock, latency_by_source={"s1": 0.2}, rejects_by_source={})
    healthy, _ = breach_statuses(
        Clock(), latency_by_source={"s1": 0.01}, rejects_by_source={})

    class Target:
        scale = 1.0

        def set_think_scale(self, scale):
            self.scale = scale

    target = Target()
    shedder = LoadShedder([target], slo="lat", step=2.0, max_scale=8.0)
    for _ in range(5):
        shedder.actuate(clock.now, breach, collector)
    assert target.scale == 8.0             # clamped at max
    shedder.actuate(clock.now, healthy, collector)
    assert 1.0 < target.scale < 8.0        # eased, but gently
    assert shedder.ease < shedder.step
    # Fully healthy for long enough returns to exactly 1.0.
    for _ in range(50):
        shedder.actuate(clock.now, healthy, collector)
    assert target.scale == 1.0


def test_load_shedder_no_signal_no_action():
    shedder = LoadShedder([], slo="lat")
    assert shedder.actuate(0.0, {}, None) == []


def test_replica_steerer_biases_and_clears():
    clock = Clock()

    class FakeSet:
        def __init__(self, members):
            self.members = members
            self.biases = {}

        def set_steering_bias(self, name, bias):
            if name not in self.members:
                raise KeyError(name)
            self.biases[name] = bias

    replica_set = FakeSet({"m0", "m1"})
    steerer = ReplicaSteerer([replica_set], slo="lat", bias=0.1)
    breach, collector = breach_statuses(
        clock, latency_by_source={"m0": 0.2, "m1": 0.01},
        rejects_by_source={})
    actions = steerer.actuate(clock.now, breach, collector)
    assert replica_set.biases == {"m0": 0.1}
    assert [a.target for a in actions] == ["m0"]
    # Same state next tick: no repeat actions (edge-triggered).
    assert steerer.actuate(clock.now, breach, collector) == []
    healthy, _ = breach_statuses(
        Clock(), latency_by_source={"m0": 0.01, "m1": 0.01},
        rejects_by_source={})
    steerer.actuate(clock.now, healthy, collector)
    assert replica_set.biases == {"m0": 0.0}
    # A source that is not a member of any set is ignored.
    stranger, _ = breach_statuses(
        Clock(), latency_by_source={"elsewhere": 0.9}, rejects_by_source={})
    assert steerer.actuate(clock.now, stranger, collector) == []


def test_policy_engine_logs_actions_and_counts_by_actuator():
    clock = Clock()
    statuses, collector = breach_statuses(
        clock, latency_by_source={"s1": 0.2}, rejects_by_source={"s1": 5.0})
    registry = MetricsRegistry()
    queue = FakeQueue(max_depth=4)
    engine = PolicyEngine(
        [AimdAdmission({"s1": queue}, latency_slo="lat", reject_slo="rej")],
        metrics=registry,
    )
    actions = engine.actuate(clock.now, statuses, collector)
    assert len(actions) == 1 and len(engine.actions) == 1
    assert registry.family("control.policy.actions").labels(
        "aimd-admission").value == 1
    assert engine.artifact()[0]["actuator"] == "aimd-admission"
