"""Tests for the DSS PRG and entropy pool (repro.crypto.prg)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.prg import DSSRandom, EntropyPool, system_random


def test_deterministic_for_same_seed():
    assert DSSRandom(b"seed").bytes(64) == DSSRandom(b"seed").bytes(64)


def test_different_seeds_diverge():
    assert DSSRandom(b"seed-a").bytes(64) != DSSRandom(b"seed-b").bytes(64)


def test_empty_seed_rejected():
    with pytest.raises(ValueError):
        DSSRandom(b"")


def test_bytes_chunking_invariance():
    whole = DSSRandom(b"s").bytes(100)
    rng = DSSRandom(b"s")
    pieces = rng.bytes(33) + rng.bytes(33) + rng.bytes(34)
    assert pieces == whole


def test_forward_security_structure():
    # The state advances via one-way hashing: consecutive outputs differ
    # and revisiting is impossible without the seed.
    rng = DSSRandom(b"s")
    outputs = [rng.bytes(20) for _ in range(10)]
    assert len(set(outputs)) == 10


@given(st.integers(min_value=1, max_value=10**9))
def test_randrange_bounds(stop):
    rng = DSSRandom(b"bounds")
    value = rng.randrange(stop)
    assert 0 <= value < stop


def test_randrange_with_start():
    rng = DSSRandom(b"r")
    for _ in range(100):
        value = rng.randrange(10, 20)
        assert 10 <= value < 20


def test_randrange_empty_range():
    with pytest.raises(ValueError):
        DSSRandom(b"r").randrange(5, 5)


def test_getrandbits_width():
    rng = DSSRandom(b"g")
    assert rng.getrandbits(0) == 0
    for bits in (1, 7, 8, 33, 256):
        assert 0 <= rng.getrandbits(bits) < (1 << bits)


def test_random_unit_interval():
    rng = DSSRandom(b"f")
    values = [rng.random() for _ in range(100)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert len(set(values)) > 90


def test_getrandbits_distribution_rough():
    rng = DSSRandom(b"dist")
    ones = sum(rng.getrandbits(1) for _ in range(2000))
    assert 800 < ones < 1200


def test_entropy_pool_mixing():
    pool1 = EntropyPool()
    pool1.add("source", b"data")
    pool2 = EntropyPool()
    pool2.add("source", b"data")
    assert pool1.seed() == pool2.seed()
    pool2.add("more", b"entropy")
    assert pool1.seed() != pool2.seed()
    assert len(pool1.seed()) == 64


def test_entropy_pool_label_separation():
    # ("ab", "c") must differ from ("a", "bc") — labels are framed.
    pool1 = EntropyPool()
    pool1.add("ab", b"c")
    pool2 = EntropyPool()
    pool2.add("a", b"bc")
    assert pool1.seed() != pool2.seed()


def test_system_random_usable():
    rng = system_random()
    assert len(rng.bytes(32)) == 32
    rng2 = system_random()
    assert rng.bytes(16) != rng2.bytes(16)
