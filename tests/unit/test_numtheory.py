"""Tests for repro.crypto.numtheory."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.crypto.numtheory import (
    crt_pair,
    egcd,
    gen_prime,
    is_probable_prime,
    jacobi,
    modinv,
    small_primes,
    sqrt_mod_blum_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 2**127 - 1, 2**521 - 1]
KNOWN_COMPOSITES = [
    0, 1, 4, 100, 561, 41041, 2**127, 3215031751,  # incl. Carmichael numbers
]


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites(n):
    assert not is_probable_prime(n)


def test_small_primes_sieve():
    primes = small_primes()
    assert primes[:5] == [2, 3, 5, 7, 11]
    assert all(is_probable_prime(p) for p in primes[:50])


@given(st.integers(min_value=1, max_value=10**12),
       st.integers(min_value=1, max_value=10**12))
def test_egcd_bezout(a, b):
    g, x, y = egcd(a, b)
    assert a * x + b * y == g
    assert a % g == 0 and b % g == 0


@given(st.integers(min_value=2, max_value=10**9))
def test_modinv_inverse(a):
    m = 1_000_000_007  # prime modulus
    inv = modinv(a, m)
    assert a * inv % m == 1


def test_modinv_requires_coprime():
    with pytest.raises(ValueError):
        modinv(6, 9)


def test_gen_prime_congruence_conditions():
    rng = random.Random(1)
    p = gen_prime(128, rng, condition=lambda c: c % 8 == 3)
    q = gen_prime(128, rng, condition=lambda c: c % 8 == 7)
    assert is_probable_prime(p) and p % 8 == 3
    assert is_probable_prime(q) and q % 8 == 7
    assert p.bit_length() == 128 and q.bit_length() == 128


def test_gen_prime_rejects_tiny():
    with pytest.raises(ValueError):
        gen_prime(4, random.Random(0))


def test_jacobi_known_values():
    # (a/p) for p prime equals the Legendre symbol.
    p = 7919
    squares = {pow(x, 2, p) for x in range(1, p)}
    for a in (2, 3, 5, 10, 1234):
        expected = 1 if a % p in squares else -1
        assert jacobi(a, p) == expected
    assert jacobi(p, p) == 0


def test_jacobi_requires_odd_positive():
    with pytest.raises(ValueError):
        jacobi(3, 4)
    with pytest.raises(ValueError):
        jacobi(3, -5)


@given(st.integers(min_value=1, max_value=10**6))
def test_jacobi_multiplicative(a):
    n1, n2 = 1009, 2003  # odd primes
    assert jacobi(a, n1 * n2) == jacobi(a, n1) * jacobi(a, n2)


def test_sqrt_mod_blum_prime():
    p = 1000003  # p % 4 == 3
    for x in (2, 17, 500000):
        square = x * x % p
        root = sqrt_mod_blum_prime(square, p)
        assert root * root % p == square


def test_sqrt_mod_requires_3_mod_4():
    with pytest.raises(ValueError):
        sqrt_mod_blum_prime(4, 13)  # 13 % 4 == 1


@given(st.integers(min_value=0, max_value=1008),
       st.integers(min_value=0, max_value=2002))
def test_crt_pair(rp, rq):
    p, q = 1009, 2003
    combined = crt_pair(rp, p, rq, q)
    assert combined % p == rp
    assert combined % q == rq
    assert 0 <= combined < p * q
