"""Tests for the auth-plane caches (repro.auth.cache) and the bounded
SRP session factory: decision-cache hit/miss/LRU/epoch semantics, the
revocation-safety ordering in *both* arrival orders, SRP negative paths
at scale, and batched validation."""

import random

import pytest

from repro.auth.cache import DecisionCache, ParseCache
from repro.core import proto
from repro.core.authserv import (
    AuthServer,
    KeyDatabase,
    PrivateRecord,
    SrpSessionFactory,
    UserRecord,
)
from repro.crypto.rabin import generate_key
from repro.crypto.sha1 import sha1
from repro.crypto.srp import SRPClient, SRPError, Verifier
from repro.obs.registry import MetricsRegistry


@pytest.fixture(scope="module")
def user_key():
    return generate_key(768, random.Random(80))


@pytest.fixture(scope="module")
def other_key():
    return generate_key(768, random.Random(81))


@pytest.fixture
def metrics():
    return MetricsRegistry()


@pytest.fixture
def authserver(metrics):
    return AuthServer(random.Random(82), pathname="/sfs/host:" + "3" * 32,
                      metrics=metrics)


def make_authmsg(key, authid: bytes, seqno: int) -> bytes:
    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SignedAuthReq", authid=authid, seqno=seqno,
    ))
    return proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=key.public_key.to_bytes(),
        signature=key.sign(signed),
    ))


def register_user(authserver, key, user="alice", uid=1000):
    record = UserRecord(user, uid, 100, (), key.public_key.to_bytes())
    authserver.local_db.add_user(record)
    return record


# --- DecisionCache mechanics ----------------------------------------------


def test_decision_cache_hit_and_miss():
    cache = DecisionCache(capacity=4)
    assert cache.lookup(b"a") is None
    assert cache.misses == 1
    cache.store(b"a", b"k1", "record-a")
    entry = cache.lookup(b"a")
    assert entry is not None and entry.record == "record-a"
    assert cache.hits == 1


def test_decision_cache_lru_bound():
    cache = DecisionCache(capacity=2)
    cache.store(b"a", b"k1", 1)
    cache.store(b"b", b"k2", 2)
    assert cache.lookup(b"a") is not None    # "a" is now most recent
    cache.store(b"c", b"k3", 3)              # evicts "b", the LRU entry
    assert len(cache) == 2
    assert cache.evictions == 1
    assert cache.lookup(b"b") is None
    assert cache.lookup(b"a") is not None
    assert cache.lookup(b"c") is not None


def test_decision_cache_epoch_bump_lazily_invalidates():
    cache = DecisionCache(capacity=4)
    cache.store(b"a", b"k1", 1)
    cache.bump_epoch()
    assert cache.lookup(b"a") is None        # old-epoch entry dropped
    assert cache.evictions == 1
    cache.store(b"a", b"k1", 1)
    assert cache.lookup(b"a") is not None    # new-epoch entry lives


def test_decision_cache_evict_key_hash_kills_all_decisions():
    cache = DecisionCache(capacity=8)
    cache.store(b"a", b"k1", 1)
    cache.store(b"b", b"k1", 1)
    cache.store(b"c", b"k2", 2)
    assert cache.evict_key_hash(b"k1") == 2
    assert cache.lookup(b"a") is None and cache.lookup(b"b") is None
    assert cache.lookup(b"c") is not None
    assert cache.evict_key_hash(b"k1") == 0  # idempotent


def test_decision_cache_rejects_bad_capacity():
    with pytest.raises(ValueError):
        DecisionCache(capacity=0)


def test_parse_cache_memoizes_and_keeps_failing_loudly():
    calls = []

    def parse(raw):
        calls.append(raw)
        if raw == b"bad":
            raise ValueError("malformed")
        return raw.decode()

    cache = ParseCache(parse, capacity=2)
    assert cache.get(b"one") == "one"
    assert cache.get(b"one") == "one"
    assert len(calls) == 1 and cache.hits == 1
    with pytest.raises(ValueError):
        cache.get(b"bad")
    with pytest.raises(ValueError):
        cache.get(b"bad")                    # failures are never cached
    assert calls.count(b"bad") == 2


# --- revocation safety, both arrival orders -------------------------------


def test_cached_decision_dies_when_user_revoked_after_validate(
        authserver, user_key, metrics):
    """Order A: validate (decision cached) -> revoke -> validate again.

    The eviction hook fires synchronously inside ``revoke_user``, so the
    second validate can never be vouched for by the stale decision."""
    register_user(authserver, user_key)
    authid = sha1(b"session-info")
    msg = make_authmsg(user_key, authid, 1)
    assert authserver.validate(authid, 1, msg) is not None
    # Warm: second validate on the same session is a cache hit.
    msg2 = make_authmsg(user_key, authid, 2)
    assert authserver.validate(authid, 2, msg2) is not None
    assert metrics.counter("auth.cache.hits").value == 1

    assert authserver.revoke_user("alice")
    assert metrics.counter("auth.cache.evictions").value >= 1
    msg3 = make_authmsg(user_key, authid, 3)
    assert authserver.validate(authid, 3, msg3) is None
    assert metrics.counter("auth.users_revoked").value == 1


def test_revocation_before_first_validate_denies(authserver, user_key):
    """Order B: revoke before the key ever authenticated — nothing is
    cached, nothing sneaks in, and the denial does not pollute the
    cache either."""
    register_user(authserver, user_key)
    assert authserver.revoke_user("alice")
    authid = sha1(b"late-session")
    msg = make_authmsg(user_key, authid, 1)
    assert authserver.validate(authid, 1, msg) is None
    assert len(authserver.decision_cache) == 0


def test_key_rotation_evicts_only_the_replaced_key(
        authserver, user_key, other_key, metrics):
    register_user(authserver, user_key, user="alice", uid=1000)
    register_user(authserver, other_key, user="bob", uid=1001)
    alice_id, bob_id = sha1(b"alice-sess"), sha1(b"bob-sess")
    assert authserver.validate(alice_id, 1,
                               make_authmsg(user_key, alice_id, 1))
    assert authserver.validate(bob_id, 1, make_authmsg(other_key, bob_id, 1))

    rotated = generate_key(768, random.Random(83))
    authserver.local_db.add_user(UserRecord(
        "alice", 1000, 100, (), rotated.public_key.to_bytes()))
    # The old key must stop authenticating even on the warmed session...
    assert authserver.validate(alice_id, 2,
                               make_authmsg(user_key, alice_id, 2)) is None
    # ...the new key works, and bob's cached decision survived.
    assert authserver.validate(alice_id, 3,
                               make_authmsg(rotated, alice_id, 3))
    hits_before = metrics.counter("auth.cache.hits").value
    assert authserver.validate(bob_id, 2, make_authmsg(other_key, bob_id, 2))
    assert metrics.counter("auth.cache.hits").value == hits_before + 1


def test_epoch_bump_forces_reverification(authserver, user_key, metrics):
    register_user(authserver, user_key)
    authid = sha1(b"info")
    assert authserver.validate(authid, 1, make_authmsg(user_key, authid, 1))
    authserver.bump_epoch()
    assert metrics.counter("auth.cache.epoch_bumps").value == 1
    # Still a valid user: the login succeeds, but through a full
    # re-verification (a miss), not the stale pre-bump decision.
    misses_before = metrics.counter("auth.cache.misses").value
    assert authserver.validate(authid, 2, make_authmsg(user_key, authid, 2))
    assert metrics.counter("auth.cache.misses").value == misses_before + 1


def test_cache_hit_still_requires_a_valid_signature(
        authserver, user_key, metrics):
    """A warmed decision must not stand in for proof of possession.

    Public keys are public: after alice logs in on a session, anyone
    able to send on that session can embed her key bytes in an AuthMsg
    with a garbage signature.  The cached decision may only shortcut
    the database resolution — the signature check runs every time, so
    the forgery is denied and alice's own next login still hits."""
    register_user(authserver, user_key)
    authid = sha1(b"shared-client-session")
    assert authserver.validate(authid, 1, make_authmsg(user_key, authid, 1))

    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SignedAuthReq", authid=authid, seqno=2,
    ))
    forged = proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=user_key.public_key.to_bytes(),   # alice's PUBLIC key
        signature=bytes(user_key.public_key.size + 1),
    ))
    hits_before = metrics.counter("auth.cache.hits").value
    assert authserver.validate(authid, 2, forged) is None
    assert metrics.counter("auth.cache.hits").value == hits_before
    assert metrics.counter("auth.failed_validations").value == 1
    # The honest agent, holding the private key, still gets the hit.
    assert authserver.validate(authid, 3, make_authmsg(user_key, authid, 3))
    assert metrics.counter("auth.cache.hits").value == hits_before + 1


def test_credential_change_without_key_change_evicts_decision(
        authserver, user_key, metrics):
    """Replacing a record with the same key but different credentials
    (uid/gid/groups) must kill the cached decision: a hit may never
    serve the stale credentials until LRU happens to evict."""
    register_user(authserver, user_key, user="alice", uid=1000)
    authid = sha1(b"promotion-session")
    record = authserver.validate(authid, 1, make_authmsg(user_key, authid, 1))
    assert record is not None and record.uid == 1000

    authserver.local_db.add_user(UserRecord(
        "alice", 1000, 100, (0,), user_key.public_key.to_bytes()))
    assert metrics.counter("auth.cache.evictions").value >= 1
    fresh = authserver.validate(authid, 2, make_authmsg(user_key, authid, 2))
    assert fresh is not None and fresh.groups == (0,)


def test_identical_record_rewrite_does_not_evict(authserver, user_key):
    """Re-adding a byte-identical record (an import refresh that found
    nothing changed) is not a mutation and must not shed decisions."""
    record = register_user(authserver, user_key)
    authid = sha1(b"steady-session")
    assert authserver.validate(authid, 1, make_authmsg(user_key, authid, 1))
    authserver.local_db.add_user(UserRecord(
        record.user, record.uid, record.gid, record.groups,
        record.public_key_bytes))
    assert len(authserver.decision_cache) == 1


def test_revoke_user_skips_read_only_databases(authserver, user_key):
    """revoke_user only mutates writable databases: a read-only import
    mirrors a signed published image shared by every importer, so
    removing the user locally would silently diverge from the image."""
    shared = KeyDatabase("fleet-import", writable=False)
    shared.add_user(UserRecord(
        "carol", 1002, 100, (), user_key.public_key.to_bytes()))
    authserver.attach_database(shared)
    assert not authserver.revoke_user("carol")
    assert shared.lookup_user("carol") is not None
    carol_id = sha1(b"carol-session")
    assert authserver.validate(carol_id, 1,
                               make_authmsg(user_key, carol_id, 1))


def test_failed_validate_does_not_pollute_cache(authserver, user_key):
    register_user(authserver, user_key)
    authid = sha1(b"info")
    signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
        req_type="SignedAuthReq", authid=authid, seqno=1,
    ))
    forged = proto.AuthMsg.pack(proto.AuthMsg.make(
        signed_req=signed,
        public_key=user_key.public_key.to_bytes(),
        signature=bytes(user_key.public_key.size + 1),
    ))
    assert authserver.validate(authid, 1, forged) is None
    assert len(authserver.decision_cache) == 0
    # A cache hit requires the *same* key hash: a different key claiming
    # a cached authid goes through full verification and fails.
    assert authserver.validate(authid, 2, make_authmsg(user_key, authid, 2))
    other = generate_key(768, random.Random(84))
    assert authserver.validate(authid, 3,
                               make_authmsg(other, authid, 3)) is None


# --- validate_batch -------------------------------------------------------


def test_validate_batch_matches_individual_validates(
        authserver, user_key, other_key, metrics):
    register_user(authserver, user_key, user="alice", uid=1000)
    register_user(authserver, other_key, user="bob", uid=1001)
    alice_id, bob_id = sha1(b"a-sess"), sha1(b"b-sess")
    alice_msg = make_authmsg(user_key, alice_id, 1)
    requests = [
        (alice_id, 1, alice_msg),
        (bob_id, 1, make_authmsg(other_key, bob_id, 1)),
        (alice_id, 1, alice_msg),            # verbatim retransmit
        (sha1(b"ghost"), 1, b"garbage"),
    ]
    results = authserver.validate_batch(requests)
    assert [r.user if r else None for r in results] == \
        ["alice", "bob", "alice", None]
    assert metrics.counter("auth.batch.requests").value == 1
    assert metrics.counter("auth.batch.deduped").value == 1
    # The dedup fan-out counts one validation, not two.
    assert authserver.validations == 3


# --- SrpSessionFactory bounding -------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0


def make_srp_user(authserver, user="alice", password=b"pw", cost=2,
                  rng=None):
    rng = rng or random.Random(85)
    verifier = Verifier.from_password(user, password, rng, cost=cost)
    authserver.local_db.add_user(
        UserRecord(user, 1000, 100, (), b""),
        PrivateRecord(verifier.salt, verifier.v, verifier.cost,
                      b"sealed-blob"),
    )
    return verifier


def test_srp_factory_bounds_live_sessions(authserver, metrics):
    factory = SrpSessionFactory(authserver, capacity=3, ttl=None)
    sessions = [factory.new_session() for _ in range(5)]
    assert factory.live_sessions == 3
    assert factory.evicted == 2
    assert metrics.counter("auth.srp.sessions_evicted").value == 2
    # The two oldest were closed: any protocol step answers None.
    make_srp_user(authserver)
    client = SRPClient("alice", b"pw", random.Random(86))
    assert sessions[0].closed and sessions[1].closed
    assert sessions[0].init("alice", client.start()) is None
    assert not sessions[4].closed


def test_srp_factory_ttl_expires_abandoned_handshakes(authserver, metrics):
    clock = FakeClock()
    factory = SrpSessionFactory(authserver, capacity=8, ttl=10.0,
                                clock=clock)
    stale = factory.new_session()
    clock.now = 11.0
    fresh = factory.new_session()            # new_session() sweeps expired
    assert stale.closed and not fresh.closed
    assert factory.live_sessions == 1
    assert metrics.counter("auth.srp.sessions_evicted").value == 1


def test_srp_factory_finished_sessions_free_their_slot(authserver):
    make_srp_user(authserver)
    factory = SrpSessionFactory(authserver, capacity=2, ttl=None)
    rng = random.Random(87)
    for _ in range(4):
        client = SRPClient("alice", b"pw", rng)
        session = factory.new_session()
        salt, B, cost = session.init("alice", client.start())
        assert session.confirm(client.process_challenge(salt, B, cost))
    # Completed handshakes discarded themselves; nothing was evicted.
    assert factory.live_sessions == 0
    assert factory.evicted == 0


def test_srp_factory_rejects_bad_capacity(authserver):
    with pytest.raises(ValueError):
        SrpSessionFactory(authserver, capacity=0)


# --- SRP negative paths ---------------------------------------------------


def test_srp_wrong_password_fails_without_credential(authserver):
    make_srp_user(authserver, password=b"right")
    client = SRPClient("alice", b"wrong", random.Random(88))
    session = authserver.srp_sessions().new_session()
    salt, B, cost = session.init("alice", client.start())
    m1 = client.process_challenge(salt, B, cost)
    assert session.confirm(m1) is None
    assert any("alice" in line for line in authserver.security_log)
    assert len(authserver.decision_cache) == 0


def test_srp_replayed_confirm_on_stale_session_fails(authserver):
    make_srp_user(authserver)
    client = SRPClient("alice", b"pw", random.Random(89))
    session = authserver.srp_sessions().new_session()
    salt, B, cost = session.init("alice", client.start())
    m1 = client.process_challenge(salt, B, cost)
    assert session.confirm(m1) is not None
    # Single-shot: replaying the (correct!) proof on the used session
    # must answer None — the handshake state is gone.
    assert session.confirm(m1) is None


def test_srp_tampered_verifier_breaks_the_proof(authserver):
    verifier = make_srp_user(authserver, password=b"pw")
    # An attacker who corrupted the private database flips bits in v:
    # the honest client's proof can no longer verify.
    authserver.local_db.add_user(
        UserRecord("alice", 1000, 100, (), b""),
        PrivateRecord(verifier.salt, verifier.v ^ 0b1010, verifier.cost,
                      b"sealed-blob"),
    )
    client = SRPClient("alice", b"pw", random.Random(90))
    session = authserver.srp_sessions().new_session()
    salt, B, cost = session.init("alice", client.start())
    m1 = client.process_challenge(salt, B, cost)
    assert session.confirm(m1) is None
    assert any("alice" in line for line in authserver.security_log)


def test_srp_client_rejects_illegal_challenge():
    client = SRPClient("alice", b"pw", random.Random(91))
    client.start()
    with pytest.raises(SRPError):
        client.process_challenge(b"salt", 0, 2)   # B == 0 mod N


def test_srp_client_rejects_tampered_server_proof(authserver):
    make_srp_user(authserver)
    client = SRPClient("alice", b"pw", random.Random(92))
    session = authserver.srp_sessions().new_session()
    salt, B, cost = session.init("alice", client.start())
    m2, _sealed = session.confirm(client.process_challenge(salt, B, cost))
    with pytest.raises(SRPError):
        client.verify_server(bytes(20))
    client.verify_server(m2)                 # the real proof still passes


def test_srp_storm_of_abandoned_inits_is_bounded(authserver, metrics):
    """The abandoned-login storm the factory exists for: hundreds of
    SRP_INITs, no confirms.  State stays at the cap, the overflow is
    counted, and a genuine login still succeeds afterwards."""
    make_srp_user(authserver)
    factory = SrpSessionFactory(authserver, capacity=16, ttl=None)
    rng = random.Random(93)
    for _ in range(200):
        session = factory.new_session()
        client = SRPClient("alice", b"pw", rng)
        session.init("alice", client.start())
    assert factory.live_sessions == 16
    assert factory.evicted == 200 - 16
    client = SRPClient("alice", b"pw", rng)
    session = factory.new_session()
    salt, B, cost = session.init("alice", client.start())
    assert session.confirm(client.process_challenge(salt, B, cost))
