"""Unit tests for the keymgmt schemes (CA internals, SSL bridge)."""

import random

import pytest

from repro.core.pathnames import make_path
from repro.core.revocation import (
    CertificateError,
    make_forwarding_pointer,
    make_revocation_certificate,
)
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.keymgmt.ca import CertificationAuthority
from repro.keymgmt.extpki import (
    SslBridgeResolver,
    SslDirectory,
)


@pytest.fixture
def rng():
    return random.Random(121)


def test_ca_certify_creates_symlink(rng):
    ca = CertificationAuthority("ca.example.net", rng)
    target_key = generate_key(768, rng)
    target = make_path("acme.com", target_key.public_key)
    ca.certify("acme", target)
    inode = pathops.resolve(ca.fs, "/acme", follow=False)
    assert inode.target == str(target)


def test_ca_decertify(rng):
    ca = CertificationAuthority("ca.example.net", rng)
    target_key = generate_key(768, rng)
    ca.certify("x", make_path("x.com", target_key.public_key))
    ca.decertify("x")
    assert "x" not in pathops.listdir(ca.fs, "/")


def test_ca_publish_serial_increments(rng):
    ca = CertificationAuthority("ca.example.net", rng)
    image1 = ca.publish_image()
    image2 = ca.publish_image()
    assert image1.serial == 1
    assert image2.serial == 2


def test_ca_path_is_self_certifying(rng):
    ca = CertificationAuthority("ca.example.net", rng)
    path = ca.path
    assert path.location == "ca.example.net"
    assert path.matches_key(ca.key.public_key)


def test_ca_rejects_forwarding_pointer_as_revocation(rng):
    ca = CertificationAuthority("ca.example.net", rng)
    key = generate_key(768, rng)
    pointer = make_forwarding_pointer(key, "moved.com", "/sfs/x:" + "2" * 32)
    with pytest.raises(CertificateError):
        ca.publish_revocation(pointer)


def test_ca_files_revocation_by_hostid(rng):
    from repro.core.pathnames import compute_hostid, hostid_to_text

    ca = CertificationAuthority("ca.example.net", rng)
    key = generate_key(768, rng)
    cert = make_revocation_certificate(key, "dead.com")
    where = ca.publish_revocation(cert)
    expected = hostid_to_text(compute_hostid("dead.com", key.public_key))
    assert where == f"/revocations/{expected}"


# --- SSL bridge --------------------------------------------------------------

def test_ssl_directory_issue_and_fetch(rng):
    ca_key = generate_key(768, rng)
    directory = SslDirectory(ca_key)
    host_key = generate_key(768, rng)
    directory.issue("web.example.com", host_key.public_key)
    assert directory.fetch("web.example.com") is not None
    assert directory.fetch("other.example.com") is None


def test_ssl_resolver_only_handles_ssl_suffix(rng):
    ca_key = generate_key(768, rng)
    resolver = SslBridgeResolver(SslDirectory(ca_key), ca_key.public_key)
    assert resolver("plain-name") is None
    assert resolver("missing.example.com.ssl") is None


def test_ssl_resolver_builds_correct_path(rng):
    ca_key = generate_key(768, rng)
    directory = SslDirectory(ca_key)
    host_key = generate_key(768, rng)
    directory.issue("web.example.com", host_key.public_key)
    resolver = SslBridgeResolver(directory, ca_key.public_key)
    target = resolver("web.example.com.ssl")
    assert target == str(make_path("web.example.com", host_key.public_key))


def test_ssl_resolver_rejects_hostname_mismatch(rng):
    """A valid certificate for host A must not authenticate host B."""
    ca_key = generate_key(768, rng)
    directory = SslDirectory(ca_key)
    host_key = generate_key(768, rng)
    cert = directory.issue("real.example.com", host_key.public_key)
    # splice the real cert under a different name
    directory._certs["fake.example.com.ssl"[: -len(".ssl")]] = cert
    resolver = SslBridgeResolver(directory, ca_key.public_key)
    assert resolver("fake.example.com.ssl") is None
    assert resolver.rejected == 1


def test_ssl_resolver_rejects_tampered_cert(rng):
    from repro.keymgmt.extpki import IssuedCert

    ca_key = generate_key(768, rng)
    directory = SslDirectory(ca_key)
    host_key = generate_key(768, rng)
    cert = directory.issue("web.example.com", host_key.public_key)
    corrupted = bytearray(cert.blob)
    corrupted[10] ^= 1
    directory._certs["web.example.com"] = IssuedCert(bytes(corrupted))
    resolver = SslBridgeResolver(directory, ca_key.public_key)
    assert resolver("web.example.com.ssl") is None
