"""Tests for sealing, lease caches, handle translation, and dispatch
config — the small SFS core modules."""

import pytest

from repro.core import proto
from repro.core.cache import ClientCaches, LeaseCache
from repro.core.config import DispatchConfig
from repro.core.handlemap import translate_args, translate_result
from repro.core.sealing import SealError, seal, unseal
from repro.nfs3 import const as nfs_const
from repro.nfs3 import types as nfs_types
from repro.rpc.xdr import Record
from repro.sim.clock import Clock


# --- sealing ----------------------------------------------------------------

def test_seal_roundtrip():
    blob = seal(b"key", b"payload", label=b"test")
    assert unseal(b"key", blob, label=b"test") == b"payload"


def test_seal_hides_plaintext():
    assert b"payload" not in seal(b"key", b"payload")


def test_seal_tamper_detected():
    blob = bytearray(seal(b"key", b"payload"))
    blob[0] ^= 1
    with pytest.raises(SealError):
        unseal(b"key", bytes(blob))


def test_seal_wrong_key_detected():
    blob = seal(b"key", b"payload")
    with pytest.raises(SealError):
        unseal(b"other", blob)


def test_seal_label_separation():
    blob = seal(b"key", b"payload", label=b"a")
    with pytest.raises(SealError):
        unseal(b"key", blob, label=b"b")


def test_seal_short_blob():
    with pytest.raises(SealError):
        unseal(b"key", b"tiny")


# --- lease cache -------------------------------------------------------------

def test_lease_cache_hit_and_expiry():
    clock = Clock()
    cache = LeaseCache(clock, lease_duration=10.0)
    cache.put(b"handle", "value")
    assert cache.get(b"handle") == "value"
    clock.advance(9.0)
    assert cache.get(b"handle") == "value"
    clock.advance(2.0)
    assert cache.get(b"handle") is None
    assert cache.hits == 2
    assert cache.misses == 1


def test_lease_cache_extra_key():
    clock = Clock()
    cache = LeaseCache(clock, 10.0)
    cache.put(b"h", 7, key=("uid", 1))
    assert cache.get(b"h", ("uid", 1)) == 7
    assert cache.get(b"h", ("uid", 2)) is None


def test_lease_cache_invalidation():
    clock = Clock()
    cache = LeaseCache(clock, 10.0)
    cache.put(b"h", 1)
    cache.put(b"h", 2, key="other")
    cache.invalidate(b"h")
    assert cache.get(b"h") is None
    assert cache.get(b"h", "other") is None
    assert cache.invalidations == 1


def test_lease_cache_disabled():
    clock = Clock()
    cache = LeaseCache(clock, 10.0, enabled=False)
    cache.put(b"h", 1)
    assert cache.get(b"h") is None


def test_client_caches_aggregate():
    clock = Clock()
    caches = ClientCaches.create(clock, 10.0)
    caches.attrs.put(b"h", "attrs")
    caches.access.put(b"h", 7, key=(1, 7))
    caches.lookups.put(b"dir", (b"h", "attrs"), key="name")
    caches.invalidate(b"h")
    assert caches.attrs.get(b"h") is None
    assert caches.access.get(b"h", (1, 7)) is None
    assert caches.lookups.get(b"dir", "name") is not None  # different handle
    stats = caches.stats()
    assert stats["attr_misses"] == 1


# --- handle translation ---------------------------------------------------------

def _tag(handle: bytes) -> bytes:
    return b"T" + handle


def test_translate_lookup_args():
    args = Record(what=Record(dir=b"D", name="x"))
    translate_args(nfs_const.NFSPROC3_LOOKUP, args, _tag)
    assert args.what.dir == b"TD"


def test_translate_rename_args_two_handles():
    args = Record(from_=Record(dir=b"A", name="x"),
                  to=Record(dir=b"B", name="y"))
    translate_args(nfs_const.NFSPROC3_RENAME, args, _tag)
    assert args.from_.dir == b"TA"
    assert args.to.dir == b"TB"


def test_translate_link_args():
    args = Record(file=b"F", link=Record(dir=b"D", name="n"))
    translate_args(nfs_const.NFSPROC3_LINK, args, _tag)
    assert args.file == b"TF"
    assert args.link.dir == b"TD"


def test_translate_lookup_result():
    body = Record(object=b"O", obj_attributes=None, dir_attributes=None)
    translate_result(nfs_const.NFSPROC3_LOOKUP, nfs_const.NFS3_OK, body, _tag)
    assert body.object == b"TO"


def test_translate_optional_result_handle():
    body = Record(obj=None, obj_attributes=None, dir_wcc=None)
    translate_result(nfs_const.NFSPROC3_CREATE, nfs_const.NFS3_OK, body, _tag)
    assert body.obj is None
    body2 = Record(obj=b"N", obj_attributes=None, dir_wcc=None)
    translate_result(nfs_const.NFSPROC3_CREATE, nfs_const.NFS3_OK, body2, _tag)
    assert body2.obj == b"TN"


def test_translate_readdirplus_entries():
    entries = [
        Record(fileid=1, name="a", cookie=1, name_attributes=None,
               name_handle=b"H1"),
        Record(fileid=2, name="b", cookie=2, name_attributes=None,
               name_handle=None),
    ]
    body = Record(dir_attributes=None, cookieverf=b"\x00" * 8,
                  entries=entries, eof=True)
    translate_result(nfs_const.NFSPROC3_READDIRPLUS, nfs_const.NFS3_OK,
                     body, _tag)
    assert entries[0].name_handle == b"TH1"
    assert entries[1].name_handle is None


def test_translate_failure_result_untouched():
    body = Record(dir_attributes=None)
    out = translate_result(nfs_const.NFSPROC3_LOOKUP,
                           nfs_const.NFS3ERR_NOENT, body, _tag)
    assert out is body  # unchanged


# --- dispatch config ---------------------------------------------------------------

def test_dispatch_default_export_rule():
    config = DispatchConfig()
    config.add_export("main", b"H" * 20, proto.DIALECT_RW)
    assert config.dispatch(proto.SERVICE_FILESERVER, b"H" * 20, []) == "main"
    assert config.dispatch(proto.SERVICE_FILESERVER, b"X" * 20, []) is None


def test_dispatch_first_match_wins():
    config = DispatchConfig()
    config.add_export("main", b"H" * 20, proto.DIALECT_RW)
    config.prepend_rule("experimental", "exp",
                        lambda s, h, e: "v2" in e)
    assert config.dispatch(1, b"H" * 20, ["v2"]) == "exp"
    assert config.dispatch(1, b"H" * 20, []) == "main"


def test_dispatch_rules_listing():
    config = DispatchConfig()
    config.add_export("main", b"H" * 20, proto.DIALECT_RW)
    listing = config.rules()
    assert any("main" in line for line in listing)
