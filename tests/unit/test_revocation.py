"""Tests for revocation certificates and forwarding pointers."""

import random

import pytest

from repro.core import proto
from repro.core.pathnames import compute_hostid
from repro.core.revocation import (
    CertificateError,
    REVOKED_LINK_TARGET,
    make_forwarding_pointer,
    make_revocation_certificate,
    verify_certificate,
)
from repro.crypto.rabin import generate_key
from repro.rpc.xdr import Record


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(60))


@pytest.fixture(scope="module")
def other_key():
    return generate_key(768, random.Random(61))


def test_revocation_certificate_verifies(key):
    cert = make_revocation_certificate(key, "example.com")
    verified = verify_certificate(cert)
    assert verified.is_revocation
    assert not verified.is_forwarding_pointer
    assert verified.location == "example.com"
    assert verified.hostid == compute_hostid("example.com", key.public_key)


def test_forwarding_pointer_verifies(key):
    cert = make_forwarding_pointer(key, "old.com", "/sfs/new.com:abc")
    verified = verify_certificate(cert)
    assert verified.is_forwarding_pointer
    assert verified.redirect == "/sfs/new.com:abc"


def test_certificates_are_self_authenticating(key, other_key):
    """Only the key owner can produce a cert for their HostID: a cert
    signed by a different key yields a *different* HostID, never the
    victim's."""
    victim_hostid = compute_hostid("victim.com", key.public_key)
    forged = make_revocation_certificate(other_key, "victim.com")
    verified = verify_certificate(forged)  # verifies as other_key's cert
    assert verified.hostid != victim_hostid


def test_tampered_signature_rejected(key):
    cert = make_revocation_certificate(key, "example.com")
    bad = Record(
        body=cert.body,
        public_key=cert.public_key,
        signature=bytes(len(cert.signature)),
    )
    with pytest.raises(CertificateError):
        verify_certificate(bad)


def test_tampered_body_rejected(key):
    cert = make_revocation_certificate(key, "example.com")
    body = bytearray(cert.body)
    body[-1] ^= 1
    bad = Record(body=bytes(body), public_key=cert.public_key,
                 signature=cert.signature)
    with pytest.raises(CertificateError):
        verify_certificate(bad)


def test_swapped_key_rejected(key, other_key):
    cert = make_revocation_certificate(key, "example.com")
    bad = Record(body=cert.body,
                 public_key=other_key.public_key.to_bytes(),
                 signature=cert.signature)
    with pytest.raises(CertificateError):
        verify_certificate(bad)


def test_malformed_body_rejected(key):
    bad = Record(body=b"garbage", public_key=key.public_key.to_bytes(),
                 signature=key.sign(b"garbage"))
    with pytest.raises(CertificateError):
        verify_certificate(bad)


def test_wrong_message_type_rejected(key):
    body = proto.RevokeBody.pack(proto.RevokeBody.make(
        msg_type="SomethingElse", location="example.com", redirect=None,
    ))
    bad = Record(body=body, public_key=key.public_key.to_bytes(),
                 signature=key.sign(body))
    with pytest.raises(CertificateError):
        verify_certificate(bad)


def test_certificate_serializes_through_xdr(key):
    cert = make_revocation_certificate(key, "example.com")
    blob = proto.SignedCertificate.pack(cert)
    restored = proto.SignedCertificate.unpack(blob)
    assert verify_certificate(restored).is_revocation


def test_revoked_link_target_is_not_a_valid_name():
    assert "/" not in REVOKED_LINK_TARGET
    assert REVOKED_LINK_TARGET.startswith(":")
