"""Tests for the simulated kernel VFS and POSIX facade (repro.kernel.vfs)."""

import errno

import pytest

from repro.fs.memfs import MemFs
from repro.kernel.mounter import NfsMounter
from repro.kernel.vfs import Kernel, KernelError, Process
from repro.nfs3.server import Nfs3Server
from repro.sim.clock import Clock


@pytest.fixture
def kernel():
    kernel = Kernel(Clock(), "testhost")
    fs = MemFs(fsid=1)
    server = Nfs3Server(fs)
    kernel.mount_root(server.program, server.root_handle())
    return kernel


@pytest.fixture
def root(kernel):
    return Process(kernel, uid=0, gid=0)


@pytest.fixture
def alice(kernel):
    return Process(kernel, uid=1000, gid=100)


def test_basic_file_io(root):
    root.write_file("/hello.txt", b"hello world")
    assert root.read_file("/hello.txt") == b"hello world"
    st = root.stat("/hello.txt")
    assert st.is_file and st.size == 11


def test_open_flags(root):
    fd = root.open("/f", "w")
    root.write(fd, b"version 1")
    root.close(fd)
    # "w" truncates
    fd = root.open("/f", "w")
    root.close(fd)
    assert root.read_file("/f") == b""
    # "a" appends
    root.write_file("/f", b"start")
    fd = root.open("/f", "a")
    root.write(fd, b"-end")
    root.close(fd)
    assert root.read_file("/f") == b"start-end"
    # "x" exclusive
    with pytest.raises(KernelError) as excinfo:
        root.open("/f", "x")
    assert excinfo.value.errno == errno.EEXIST


def test_open_missing_file(root):
    with pytest.raises(KernelError) as excinfo:
        root.open("/missing", "r")
    assert excinfo.value.errno == errno.ENOENT


def test_open_directory_for_read_rejected(root):
    root.mkdir("/d")
    with pytest.raises(KernelError) as excinfo:
        root.open("/d", "r")
    assert excinfo.value.errno == errno.EISDIR


def test_bad_fd(root):
    with pytest.raises(KernelError) as excinfo:
        root.read(999, 1)
    assert excinfo.value.errno == errno.EBADF


def test_lseek_and_partial_reads(root):
    root.write_file("/f", b"0123456789")
    fd = root.open("/f", "r")
    root.lseek(fd, 4)
    assert root.read(fd, 3) == b"456"
    assert root.read(fd, 100) == b"789"
    root.close(fd)


def test_large_io_chunks(root):
    blob = bytes(range(256)) * 200  # > 8 KB, forces chunked read/write
    root.write_file("/big", blob)
    assert root.read_file("/big") == blob


def test_directories_and_readdir(root):
    root.makedirs("/a/b/c")
    root.write_file("/a/b/x", b"1")
    assert root.readdir("/a/b") == ["c", "x"]
    root.rmdir("/a/b/c")
    assert root.readdir("/a/b") == ["x"]


def test_rename_unlink(root):
    root.write_file("/old", b"data")
    root.rename("/old", "/new")
    assert root.read_file("/new") == b"data"
    with pytest.raises(KernelError):
        root.stat("/old")
    root.unlink("/new")
    with pytest.raises(KernelError):
        root.stat("/new")


def test_symlink_following(root):
    root.makedirs("/target/dir")
    root.write_file("/target/dir/file", b"content")
    root.symlink("/target/dir", "/abs-link")
    root.symlink("target/dir", "/rel-link")
    assert root.read_file("/abs-link/file") == b"content"
    assert root.read_file("/rel-link/file") == b"content"
    assert root.readlink("/abs-link") == "/target/dir"
    st = root.lstat("/abs-link")
    assert st.is_symlink
    assert root.stat("/abs-link").is_dir


def test_symlink_loop_detected(root):
    root.symlink("/loop-b", "/loop-a")
    root.symlink("/loop-a", "/loop-b")
    with pytest.raises(KernelError) as excinfo:
        root.read_file("/loop-a")
    assert excinfo.value.errno == errno.ELOOP


def test_dotdot_resolution(root):
    root.makedirs("/x/y")
    root.write_file("/top", b"up here")
    assert root.read_file("/x/y/../../top") == b"up here"
    assert root.read_file("/x/../x/y/../y/../../top") == b"up here"


def test_chdir_getcwd_relative_paths(root):
    root.makedirs("/home/user")
    root.write_file("/home/user/f", b"x")
    root.chdir("/home/user")
    assert root.getcwd() == "/home/user"
    assert root.read_file("f") == b"x"
    root.chdir("..")
    assert root.getcwd() == "/home"
    with pytest.raises(KernelError):
        root.chdir("/home/user/f")  # not a directory


def test_realpath_resolves_links(root):
    root.makedirs("/real/dir")
    root.symlink("/real/dir", "/shortcut")
    assert root.realpath("/shortcut") == "/real/dir"
    root.chdir("/shortcut")
    assert root.getcwd() == "/real/dir"


def test_permissions_enforced(root, alice):
    root.write_file("/rootfile", b"secret", mode=0o600)
    with pytest.raises(KernelError) as excinfo:
        alice.read_file("/rootfile")
    assert excinfo.value.errno == errno.EACCES
    root.makedirs("/home/alice")
    root.chown("/home/alice", 1000, 100)
    alice.write_file("/home/alice/mine", b"ok")
    assert alice.stat("/home/alice/mine").uid == 1000


def test_chmod_chown_truncate_utimes(root):
    root.write_file("/f", b"0123456789")
    root.chmod("/f", 0o640)
    assert root.stat("/f").mode == 0o640
    root.chown("/f", 5, 6)
    st = root.stat("/f")
    assert (st.uid, st.gid) == (5, 6)
    root.truncate("/f", 3)
    assert root.read_file("/f") == b"012"
    root.utimes("/f", 111, 222)
    st = root.stat("/f")
    assert (st.atime, st.mtime) == (111, 222)


def test_link_and_fstat(root):
    root.write_file("/a", b"linked")
    root.link("/a", "/b")
    assert root.stat("/b").nlink == 2
    fd = root.open("/a", "r")
    assert root.fstat_fd(fd).size == 6
    root.close(fd)


def test_walk(root):
    root.makedirs("/tree/sub")
    root.write_file("/tree/f1", b"")
    root.write_file("/tree/sub/f2", b"")
    walked = list(root.walk("/tree"))
    assert walked[0] == ("/tree", ["sub"], ["f1"])
    assert walked[1] == ("/tree/sub", [], ["f2"])


def test_fsync_and_fchown(root, alice):
    root.write_file("/f", b"x", sync=False)
    fd = root.open("/f", "r")
    root.fsync(fd)
    with pytest.raises(KernelError) as excinfo:
        # alice does not own /f: changing its owner must fail with EPERM
        afd = alice.open("/f", "r")
        alice.fchown(afd, 1000)
    assert excinfo.value.errno in (errno.EPERM, errno.EACCES)


def test_mounts_get_own_device_numbers(kernel, root):
    other_fs = MemFs(fsid=77)
    other_server = Nfs3Server(other_fs)
    root.makedirs("/mnt")
    kernel.add_mount("/mnt", other_server.program, other_server.root_handle())
    root.write_file("/mnt/file", b"on the other fs")
    assert root.stat("/mnt/file").fsid == 77
    assert root.stat("/").fsid == 1
    # ".." out of a mount returns to the parent fs
    assert root.stat("/mnt/..").fsid == 1


def test_mounter_mount_unmount(kernel, root):
    mounter = NfsMounter(kernel)
    other = Nfs3Server(MemFs(fsid=5))
    root.makedirs("/m")
    mounter.mount("/m", other.program, other.root_handle())
    assert "/m" in mounter.mounted_paths()
    root.write_file("/m/f", b"1")
    assert root.stat("/m/f").fsid == 5
    assert mounter.unmount("/m")
    # after unmount the underlying (empty) directory is visible again
    assert root.readdir("/m") == []


def test_mounter_takeover_serves_stale(kernel, root):
    mounter = NfsMounter(kernel)
    other = Nfs3Server(MemFs(fsid=5))
    root.makedirs("/crashy")
    mount = mounter.mount("/crashy", other.program, other.root_handle())
    root.write_file("/crashy/f", b"1")
    # The daemon "crashes"; nfsmounter takes over and unmounts.
    assert mounter.takeover("/crashy")
    assert "/crashy" not in mounter.mounted_paths()
    assert root.readdir("/crashy") == []
    assert not mounter.takeover("/never-mounted")
