"""Tests for SRP (repro.crypto.srp)."""

import random

import pytest

from repro.crypto.srp import (
    GROUP_N,
    SRPClient,
    SRPError,
    SRPServer,
    Verifier,
    private_exponent,
)

COST = 2  # keep eksblowfish cheap in tests


def _handshake(password_client: bytes, password_server: bytes,
               seed: int = 7):
    rng = random.Random(seed)
    verifier = Verifier.from_password("alice", password_server, rng, COST)
    client = SRPClient("alice", password_client, rng)
    server = SRPServer(verifier, rng)
    A = client.start()
    salt, B, cost = server.challenge(A)
    m1 = client.process_challenge(salt, B, cost)
    m2 = server.verify_client(m1)
    client.verify_server(m2)
    return client, server


def test_successful_agreement():
    client, server = _handshake(b"pw", b"pw")
    assert client.session_key == server.session_key
    assert len(client.session_key) == 20


def test_wrong_password_rejected():
    rng = random.Random(8)
    verifier = Verifier.from_password("alice", b"right", rng, COST)
    client = SRPClient("alice", b"wrong", rng)
    server = SRPServer(verifier, rng)
    A = client.start()
    salt, B, cost = server.challenge(A)
    m1 = client.process_challenge(salt, B, cost)
    with pytest.raises(SRPError):
        server.verify_client(m1)
    with pytest.raises(SRPError):
        _ = server.session_key


def test_client_detects_fake_server():
    # A server without the verifier cannot produce a valid M2.
    rng = random.Random(9)
    client = SRPClient("alice", b"pw", rng)
    client.start()
    fake_verifier = Verifier.from_password("alice", b"not-the-password",
                                           rng, COST)
    fake = SRPServer(fake_verifier, rng)
    salt, B, cost = fake.challenge(client._A)
    client.process_challenge(salt, B, cost)
    with pytest.raises(SRPError):
        client.verify_server(b"\x00" * 20)


def test_illegal_public_values_rejected():
    rng = random.Random(10)
    verifier = Verifier.from_password("alice", b"pw", rng, COST)
    server = SRPServer(verifier, rng)
    with pytest.raises(SRPError):
        server.challenge(0)
    with pytest.raises(SRPError):
        server.challenge(GROUP_N)
    client = SRPClient("alice", b"pw", rng)
    client.start()
    with pytest.raises(SRPError):
        client.process_challenge(b"salt", 0, COST)


def test_protocol_ordering_enforced():
    rng = random.Random(11)
    client = SRPClient("alice", b"pw", rng)
    with pytest.raises(SRPError):
        client.process_challenge(b"s", 12345, COST)
    with pytest.raises(SRPError):
        client.verify_server(b"\x00" * 20)
    with pytest.raises(SRPError):
        _ = client.session_key
    verifier = Verifier.from_password("alice", b"pw", rng, COST)
    server = SRPServer(verifier, rng)
    with pytest.raises(SRPError):
        server.verify_client(b"\x00" * 20)


def test_session_keys_differ_per_run():
    c1, _ = _handshake(b"pw", b"pw", seed=1)
    c2, _ = _handshake(b"pw", b"pw", seed=2)
    assert c1.session_key != c2.session_key


def test_verifier_not_password_equivalent():
    # The verifier is g^x; recovering x (the hardened password) needs a
    # discrete log.  At minimum, different salts give unrelated verifiers.
    rng = random.Random(12)
    v1 = Verifier.from_password("alice", b"pw", rng, COST)
    v2 = Verifier.from_password("alice", b"pw", rng, COST)
    assert v1.salt != v2.salt
    assert v1.v != v2.v


def test_private_exponent_depends_on_all_inputs():
    x = private_exponent("alice", b"pw", b"salt", COST)
    assert x != private_exponent("bob", b"pw", b"salt", COST)
    assert x != private_exponent("alice", b"qw", b"salt", COST)
    assert x != private_exponent("alice", b"pw", b"flat", COST)
    assert x == private_exponent("alice", b"pw", b"salt", COST)
