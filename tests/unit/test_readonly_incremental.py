"""Incremental publication and rollback protection for the read-only
dialect."""

import random

import pytest

from repro.core.pathnames import make_path
from repro.core.readonly import (
    ReadOnlyClient,
    ReadOnlyError,
    ReadOnlyStore,
    publish,
)
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs


@pytest.fixture(scope="module")
def key():
    return generate_key(768, random.Random(141))


def build_tree(n_files=32):
    fs = MemFs()
    for index in range(n_files):
        pathops.write_file(
            fs, f"/dir{index % 4}/file{index}",
            (f"contents of file {index} ").encode() * 40,
        )
    return fs


def _client_for(image, key, **kwargs):
    store = ReadOnlyStore(image)

    def fetch_root():
        res = store.get_root()
        res.public_key = key.public_key.to_bytes()
        return res

    return ReadOnlyClient(
        make_path(image.location, key.public_key),
        fetch_root, store.get_data, **kwargs,
    )


def test_incremental_republish_small_delta(key):
    """Changing one file creates O(path depth) new blobs, not O(tree).

    This is the paper's 'proportional to ... rate of change' claim made
    quantitative.
    """
    fs = build_tree()
    image1 = publish(fs, key, "inc.example.com", serial=1)
    baseline = len(image1.store)
    pathops.write_file(fs, "/dir0/file0", b"changed!")
    image2 = publish(fs, key, "inc.example.com", serial=2,
                     previous=image1)
    # New blobs: the changed chunk, the file node, dir0's node, the root.
    assert 0 < image2.new_blobs <= 4
    assert image2.new_blobs < baseline // 4
    # The unchanged content is shared between the images byte for byte.
    shared = set(image1.store) & set(image2.store)
    assert len(shared) >= baseline - 4


def test_incremental_publish_serves_correctly(key):
    fs = build_tree(8)
    image1 = publish(fs, key, "inc.example.com", serial=1)
    pathops.write_file(fs, "/dir1/file1", b"v2")
    image2 = publish(fs, key, "inc.example.com", serial=2, previous=image1)
    client = _client_for(image2, key)
    assert client.read_file(client.resolve_path("dir1/file1")) == b"v2"
    # untouched file still reads
    assert b"contents of file 0" in client.read_file(
        client.resolve_path("dir0/file0")
    )


def test_noop_republish_creates_one_root_blob_at_most(key):
    fs = build_tree(8)
    image1 = publish(fs, key, "inc.example.com", serial=1)
    image2 = publish(fs, key, "inc.example.com", serial=2, previous=image1)
    # Nothing changed below the root; only the signed root differs
    # (serial bumped), which lives outside the blob store.
    assert image2.new_blobs == 0
    assert image2.root_digest == image1.root_digest
    assert image2.root_bytes != image1.root_bytes


def test_rollback_detected_with_min_serial(key):
    fs = build_tree(4)
    image_v1 = publish(fs, key, "inc.example.com", serial=1)
    pathops.write_file(fs, "/dir0/new", b"v2 content")
    image_v2 = publish(fs, key, "inc.example.com", serial=2,
                       previous=image_v1)
    # A client that knows v2 exists refuses a replayed v1.
    client = _client_for(image_v2, key, min_serial=2)
    assert client.serial == 2
    with pytest.raises(ReadOnlyError):
        _client_for(image_v1, key, min_serial=2)
    # Without the freshness hint the stale image still verifies
    # (signatures don't expire by themselves).
    assert _client_for(image_v1, key).serial == 1
